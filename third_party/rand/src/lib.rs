//! Vendored offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no registry access, so the real `rand`
//! crate cannot be fetched; this crate provides the same surface
//! (`SeedableRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`,
//! `rngs::{StdRng, SmallRng}`) backed by a deterministic SplitMix64
//! generator. Streams differ from upstream `rand`, but every simulation
//! in this repository only requires *deterministic, well-mixed* streams,
//! not upstream-compatible ones.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    // Generators are pure functions of their 64-bit state, so a
    // recorded simulation can checkpoint and restore them exactly.
    // (Upstream `rand` leaves serialization to a serde feature; the
    // stand-in wires it to the vendored `serde` directly.)
    impl serde::Serialize for StdRng {
        fn to_value(&self) -> serde::Value {
            serde::Value::U64(self.state)
        }
    }

    impl serde::Deserialize for StdRng {
        fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
            Ok(StdRng {
                state: <u64 as serde::Deserialize>::from_value(v)?,
            })
        }
    }

    impl serde::Serialize for SmallRng {
        fn to_value(&self) -> serde::Value {
            serde::Serialize::to_value(&self.0)
        }
    }

    impl serde::Deserialize for SmallRng {
        fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
            Ok(SmallRng(StdRng::from_value(v)?))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that nearby seeds give unrelated streams.
            let mut state = seed ^ 0x5851_F42D_4C95_7F2D;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    /// A small fast generator; here identical to [`StdRng`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(StdRng::seed_from_u64(seed))
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    // 53 random bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Includes both endpoints (up to rounding).
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        (core::ops::Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_from(rng) as f32
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng) as f32
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<G: RngCore> Rng for G {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u16..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..=1.0);
            assert!((0.25..=1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }
}
