//! Vendored offline stand-in for the subset of `serde` this workspace
//! uses: `#[derive(Serialize, Deserialize)]` plus JSON round-trips via
//! the sibling `serde_json` stand-in.
//!
//! The build environment has no registry access, so the real `serde`
//! cannot be fetched. Instead of the full serde data model this crate
//! routes everything through a single self-describing [`Value`] tree;
//! the derive macros (in `serde_derive`) generate `to_value`/`from_value`
//! conversions shaped like serde's externally-tagged defaults, and
//! `serde_json` renders/parses that tree. Round-trips through this pair
//! are lossless for every type the workspace derives.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate tree all (de)serialization passes
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; keys kept in insertion order.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map entry by string key.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k.as_str() == Some(name))
            .map(|(_, v)| v)
    }

    /// Looks up a sequence element by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_seq()?.get(idx)
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A failure with a free-form message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A "wrong shape" failure.
    pub fn expected(what: &str, for_type: &str) -> Self {
        DeError::new(format!("expected {what} while deserializing {for_type}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the intermediate [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion back out of the intermediate [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // Map keys arrive as strings; accept numeric text.
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::expected("integer", stringify!($t)))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i128 = match v {
                    Value::U64(n) => *n as i128,
                    Value::I64(n) => *n as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    Value::Str(s) => s
                        .parse::<i128>()
                        .map_err(|_| DeError::expected("integer", stringify!($t)))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats render as null in JSON.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(|s| {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| DeError::expected("single-char string", "char"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` requires promoting the decoded
    /// string to the `'static` lifetime, which is only possible by
    /// leaking it. The workspace deserializes such fields exclusively in
    /// short-lived tests, so the leak is bounded and acceptable.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some(s) => Ok(Box::leak(s.to_string().into_boxed_str())),
            None => Err(DeError::expected("string", "&'static str")),
        }
    }
}

// Identity impls: a `Value` serializes to itself, so types with
// hand-written (de)serialization can embed pre-built trees, and
// arbitrary JSON can be parsed structurally with
// `serde_json::from_str::<Value>`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::expected("fixed-length array", "array"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                Ok(($($name::from_value(
                    seq.get($idx).ok_or_else(|| DeError::expected("tuple element", "tuple"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "VecDeque"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "BTreeSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Map(vec![(Value::Str("Ok".to_string()), v.to_value())]),
            Err(e) => Value::Map(vec![(Value::Str("Err".to_string()), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::expected("object", "Result"))?;
        match map.first() {
            Some((Value::Str(tag), inner)) if tag == "Ok" => Ok(Ok(T::from_value(inner)?)),
            Some((Value::Str(tag), inner)) if tag == "Err" => Ok(Err(E::from_value(inner)?)),
            _ => Err(DeError::expected("{\"Ok\": ..} or {\"Err\": ..}", "Result")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&2.25f64.to_value()), Ok(2.25));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".into()));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            <[u8; 3]>::from_value(&[1u8, 2, 3].to_value()),
            Ok([1, 2, 3])
        );
    }

    #[test]
    fn collections_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), -2.0);
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
        let v = vec![(1u16, "x".to_string()), (2, "y".to_string())];
        assert_eq!(Vec::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn deque_set_and_result_round_trip() {
        let d: VecDeque<u16> = [3u16, 1, 2].into_iter().collect();
        assert_eq!(VecDeque::from_value(&d.to_value()), Ok(d));
        let s: BTreeSet<u8> = [9u8, 4].into_iter().collect();
        assert_eq!(BTreeSet::from_value(&s.to_value()), Ok(s));
        let ok: Result<u16, String> = Ok(7);
        assert_eq!(Result::from_value(&ok.to_value()), Ok(ok));
        let err: Result<u16, String> = Err("boom".to_string());
        assert_eq!(Result::from_value(&err.to_value()), Ok(err));
    }

    #[test]
    fn integer_map_keys_survive_stringification() {
        // JSON object keys are strings; numeric keys parse back.
        let mut m = BTreeMap::new();
        m.insert(7u16, 1u8);
        let v = m.to_value();
        assert_eq!(BTreeMap::<u16, u8>::from_value(&v), Ok(m));
        assert_eq!(u16::from_value(&Value::Str("7".into())), Ok(7));
    }
}
