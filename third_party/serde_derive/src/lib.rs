//! Derive macros for the vendored `serde` stand-in.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; this crate parses the item's `TokenStream` by hand and
//! emits the generated impl as source text, which is then re-parsed
//! into a `TokenStream`. Only the shapes actually present in this
//! workspace are supported: non-generic structs (named, tuple, unit)
//! and non-generic enums (unit, tuple, and struct variants, with
//! optional explicit discriminants). Generic types produce a
//! `compile_error!` rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives `serde::Serialize` (the stand-in's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` (the stand-in's `from_value` form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

/// The shapes we know how to generate code for.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let src = match dir {
                Direction::Serialize => gen_serialize(&name, &shape),
                Direction::Deserialize => gen_deserialize(&name, &shape),
            };
            src.parse().unwrap_or_else(|e| {
                error(&format!(
                    "serde_derive internal error: generated code failed to parse: {e}"
                ))
            })
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses the derive input down to a type name plus [`Shape`].
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stand-in cannot derive for generic type `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Skips leading attributes (`#[...]`, including doc comments) and any
/// visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                // Optional restriction: `pub(crate)` and friends.
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a `{ ... }` struct body. Field types may
/// contain generic arguments (`BTreeMap<String, f64>`), so commas only
/// split fields at angle-bracket depth zero.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        skip_type(&mut toks);
    }
}

/// Consumes a type, stopping after the `,` that ends it (or at end of
/// stream). Tracks `<`/`>` nesting; `->` cannot appear at depth zero in
/// a field type, and `>>` arrives as two separate '>' puncts.
fn skip_type(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0usize;
    for tok in toks.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
    }
}

/// Counts the fields of a `( ... )` tuple body (top-level commas plus
/// one, ignoring a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut saw_any = false;
    let mut trailing_comma = false;
    for tok in stream {
        saw_any = true;
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !saw_any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream())?);
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => VariantFields::Unit,
        };
        // Optional explicit discriminant (`Add = 0`): consume to the
        // variant-separating comma.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            skip_type(&mut toks);
        } else if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, fields });
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn named_fields_to_map(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from("::serde::Value::Map(::std::vec![");
    for f in fields {
        let _ = write!(
            out,
            "(::serde::Value::Str(::std::string::String::from({f:?})), \
             ::serde::Serialize::to_value({})),",
            accessor(f)
        );
    }
    out.push_str("])");
    out
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => named_fields_to_map(fields, |f| format!("&self.{f}")),
        Shape::TupleStruct(n) => {
            let mut out = String::from("::serde::Value::Seq(::std::vec![");
            for i in 0..*n {
                let _ = write!(out, "::serde::Serialize::to_value(&self.{i}),");
            }
            out.push_str("])");
            out
        }
        Shape::UnitStruct => String::from("::serde::Value::Null"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut seq = String::from("::serde::Value::Seq(::std::vec![");
                        for b in &binders {
                            let _ = write!(seq, "::serde::Serialize::to_value({b}),");
                        }
                        seq.push_str("])");
                        let _ = write!(
                            arms,
                            "{name}::{vn}({binders}) => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from({vn:?})), {seq})]),",
                            binders = binders.join(", ")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let inner = named_fields_to_map(fields, str::to_string);
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {fields} }} => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from({vn:?})), {inner})]),",
                            fields = fields.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn named_fields_from_map(fields: &[String], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let _ = write!(
            out,
            "{f}: ::serde::Deserialize::from_value(\
             {source}.get_field({f:?}).unwrap_or(&::serde::Value::Null))?,"
        );
    }
    out
}

fn tuple_fields_from_seq(n: usize, source: &str) -> String {
    let mut out = String::new();
    for i in 0..n {
        let _ = write!(
            out,
            "::serde::Deserialize::from_value(\
             {source}.get_index({i}).unwrap_or(&::serde::Value::Null))?,"
        );
    }
    out
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => format!(
            "if v.as_map().is_none() {{ \
                 return ::std::result::Result::Err(::serde::DeError::expected(\"map\", {name:?})); \
             }} \
             ::std::result::Result::Ok({name} {{ {fields} }})",
            fields = named_fields_from_map(fields, "v")
        ),
        Shape::TupleStruct(n) => format!(
            "if v.as_seq().is_none() {{ \
                 return ::std::result::Result::Err(::serde::DeError::expected(\"sequence\", {name:?})); \
             }} \
             ::std::result::Result::Ok({name}({fields}))",
            fields = tuple_fields_from_seq(*n, "v")
        ),
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            // Externally tagged: unit variants are a bare string, data
            // variants a single-entry map keyed by the variant name.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            unit_arms,
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let _ = write!(
                            data_arms,
                            "{vn:?} => return ::std::result::Result::Ok(\
                             {name}::{vn}({fields})),",
                            fields = tuple_fields_from_seq(*n, "__payload")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let _ = write!(
                            data_arms,
                            "{vn:?} => return ::std::result::Result::Ok(\
                             {name}::{vn} {{ {fields} }}),",
                            fields = named_fields_from_map(fields, "__payload")
                        );
                    }
                }
            }
            // Emit only the blocks that have arms, so enums with (say)
            // no unit variants don't generate unused bindings.
            let str_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(__s) = v.as_str() {{ \
                         match __s {{ {unit_arms} _ => {{}} }} \
                     }} "
                )
            };
            let map_block = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(__entries) = v.as_map() {{ \
                         if __entries.len() == 1 {{ \
                             let (__tag, __payload) = &__entries[0]; \
                             match __tag.as_str().unwrap_or(\"\") {{ {data_arms} _ => {{}} }} \
                         }} \
                     }} "
                )
            };
            format!(
                "{str_block}{map_block}\
                 ::std::result::Result::Err(::serde::DeError::expected(\"variant\", {name:?}))"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
         {body} }} }}"
    )
}
