//! Vendored offline stand-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched. This crate keeps the same *testing semantics* —
//! deterministic pseudo-random case generation, `prop_assume!`
//! rejection, configurable case counts — but does not implement
//! shrinking: a failing case panics immediately with the attempt/seed
//! information needed to reproduce it (generation is a pure function of
//! the test name and attempt index, so reruns hit the same inputs).
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`_eq!`/`_ne!`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, integer and
//! float ranges as strategies, tuples of strategies, `.prop_map`,
//! `.boxed()`, `prop::collection::vec`, and `&str` character-class
//! patterns like `"[a-z]{1,10}"`.

pub mod test_runner {
    //! Deterministic case generation and the per-test driver loop.

    /// The per-case random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from raw seed material.
        pub fn from_seed(seed: u64) -> Self {
            let mut rng = TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            };
            let _ = rng.next_u64();
            rng
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)` with 53-bit resolution.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Marker returned by a case rejected via `prop_assume!`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TestCaseSkip;

    /// Runner knobs; only `cases` is honoured by the stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of *valid* (non-rejected) cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` valid cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one `proptest!` test: runs `case` until `config.cases`
    /// valid cases pass, skipping `prop_assume!` rejections (with a cap
    /// so an always-rejecting test terminates).
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseSkip>,
    {
        let base = fnv1a(name.as_bytes());
        let max_attempts = (config.cases as u64) * 20 + 100;
        let mut valid = 0u32;
        let mut attempt = 0u64;
        while valid < config.cases {
            assert!(
                attempt < max_attempts,
                "proptest stand-in: `{name}` rejected too many cases \
                 ({valid}/{} passed after {attempt} attempts)",
                config.cases,
            );
            let mut rng = TestRng::from_seed(base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            match outcome {
                Ok(Ok(())) => valid += 1,
                Ok(Err(TestCaseSkip)) => {}
                Err(payload) => {
                    eprintln!(
                        "proptest stand-in: `{name}` failed on attempt {attempt} \
                         (after {valid} passing cases); \
                         generation is deterministic in the test name, so rerunning \
                         reproduces this input"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
            attempt += 1;
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` character-class patterns (`"[a-z]{1,10}"`) as strategies.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::pattern::sample_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub(crate) mod pattern {
    //! A tiny interpreter for the character-class string patterns the
    //! workspace uses as strategies: sequences of `[class]` or literal
    //! characters, each optionally quantified with `{n}`, `{m,n}`, `?`,
    //! `*`, or `+` (the unbounded quantifiers cap at 8 repetitions).

    use crate::test_runner::TestRng;

    pub fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1, pat);
                    i = next;
                    class
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pat:?}"));
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i, pat);
            let n = lo + rng.below((hi - lo) as u64 + 1) as usize;
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }

    /// Parses a `[...]` body starting just past the `[`; returns the
    /// expanded member set and the index just past the `]`.
    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
        let mut class = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            // A `-` between two members is a range; first/last `-` is
            // literal.
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "inverted range in pattern {pat:?}");
                for c in lo..=hi {
                    class.push(c);
                }
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
        assert!(!class.is_empty(), "empty class in pattern {pat:?}");
        (class, i + 1)
    }

    /// Parses an optional quantifier at `*i`, advancing past it.
    /// Returns the inclusive repetition band (default `(1, 1)`).
    fn parse_quantifier(chars: &[char], i: &mut usize, pat: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pat:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse = |s: &str| -> usize {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in pattern {pat:?}"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => {
                        let n = parse(&body);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::{vec, SizeRange, VecStrategy};
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseSkip, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each function's arguments are drawn from
/// the strategies after `in`; the optional leading
/// `#![proptest_config(...)]` sets the case count for every function in
/// the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run($cfg, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts within a property; failure fails the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { ::std::assert_ne!($($args)+) };
}

/// Rejects the current case (it doesn't count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseSkip);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_sampler_respects_class_and_len() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::sample(&"[a-zA-Z0-9._-]{0,8}", &mut rng);
            assert!(t.chars().count() <= 8);
            assert!(
                t.chars()
                    .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)),
                "{t:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            (a, b) in (0u8..16, 1usize..50),
            v in prop::collection::vec(any::<u16>(), 1..20),
            f in -0.5f64..0.5,
        ) {
            prop_assert!(a < 16);
            prop_assert!((1..50).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!((-0.5..0.5).contains(&f));
        }

        #[test]
        fn oneof_and_assume_work(x in prop_oneof![Just(1u8), Just(2), 5u8..7]) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || x == 5 || x == 6);
            prop_assert_ne!(x, 2);
        }
    }
}
