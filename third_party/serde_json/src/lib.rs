//! Vendored offline stand-in for the subset of `serde_json` this
//! workspace uses: `to_string`, `to_string_pretty`, and `from_str`
//! over the vendored `serde::Value` model.
//!
//! Encoding notes, chosen to match real `serde_json` behaviour where it
//! matters for round-trips:
//! - non-finite floats serialize as `null`, and `null` deserializes
//!   into `f64` as NaN (our `serde` stand-in's float rule);
//! - map keys are emitted as strings; non-string scalar keys use their
//!   plain text form (`42`, `true`) so numeric-keyed maps round-trip
//!   through the stand-in's string-tolerant integer parsing;
//! - floats print via Rust's shortest round-trip formatting, with a
//!   `.0` suffix forced onto integral values so they re-parse as `F64`.

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` out of a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, level, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(out, &key_text(k));
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{x}");
    out.push_str(&text);
    // Keep the float/integer distinction through a round-trip.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// The string form used for a map key.
fn key_text(k: &Value) -> String {
    match k {
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => format!("{x}"),
        Value::Null => "null".to_string(),
        other => {
            // Structured keys can't be represented in JSON; fall back to
            // their compact JSON text (they won't round-trip).
            let mut s = String::new();
            write_value(&mut s, other, None, 0);
            s
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path over unescaped runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut s)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, s: &mut String) -> Result<(), Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{08}'),
            b'f' => s.push('\u{0C}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if !self.eat_literal("\\u") {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                s.push(char::from_u32(code).ok_or_else(|| Error::new("invalid codepoint"))?);
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integral: keep as I64 when it fits.
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::I64(n)),
                Err(_) => stripped
                    .parse::<f64>()
                    .map(|x| Value::F64(-x))
                    .map_err(|_| Error::new(format!("bad number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::new(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\u00e9\\n\"").unwrap(), "a\u{e9}\n");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u16, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u16>>(&json).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), 0.5f64);
        m.insert("beta".to_string(), -2.0);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, f64>>(&json).unwrap(), m);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        assert!(from_str::<f64>(&json).unwrap().is_nan());
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u8, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n    1,\n    2\n  ]"));
        assert_eq!(from_str::<BTreeMap<String, Vec<u8>>>(&pretty).unwrap(), m);
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "seven".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":\"seven\"}");
        assert_eq!(from_str::<BTreeMap<u32, String>>(&json).unwrap(), m);
    }
}
