//! Vendored offline stand-in for the subset of `criterion` this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups with throughput annotations, `Bencher::iter`, and
//! `Bencher::iter_batched`.
//!
//! The real criterion performs warm-up calibration, outlier rejection,
//! and HTML reporting; this stand-in just times a bounded number of
//! iterations and prints median per-iteration latency (plus derived
//! throughput when declared). That is enough to keep `cargo bench`
//! compiling and producing comparable numbers in an offline build.

use std::time::{Duration, Instant};

/// How long each benchmark aims to spend measuring.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Iteration bounds per benchmark.
const MIN_ITERS: usize = 5;
const MAX_ITERS: usize = 1000;

/// Declared units of work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`]; ignored by the
/// stand-in (every batch is a single routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let start = Instant::now();
            let out = routine();
            let dt = start.elapsed();
            std::hint::black_box(out);
            dt
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let dt = start.elapsed();
            std::hint::black_box(out);
            dt
        });
    }

    fn run(&mut self, mut timed_once: impl FnMut() -> Duration) {
        // Warm-up: one untimed call.
        let first = timed_once();
        let budget = TARGET_MEASURE;
        let mut spent = Duration::ZERO;
        while self.samples.len() < MIN_ITERS || (spent < budget && self.samples.len() < MAX_ITERS) {
            let dt = timed_once();
            spent += dt;
            self.samples.push(dt);
        }
        // Keep the warm-up sample if it's all we can afford.
        if self.samples.is_empty() {
            self.samples.push(first);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2]
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, f);
        self
    }

    /// Ends the group (formatting no-op in the stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    let median = bencher.median();
    let rate = |units: u64| {
        let secs = median.as_secs_f64().max(1e-12);
        units as f64 / secs
    };
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "bench: {label:<40} {median:>12?}/iter  {:>12.0} elem/s",
            rate(n)
        ),
        Some(Throughput::Bytes(n)) => println!(
            "bench: {label:<40} {median:>12?}/iter  {:>12.0} B/s",
            rate(n)
        ),
        None => println!("bench: {label:<40} {median:>12?}/iter"),
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_record_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3, 4], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
