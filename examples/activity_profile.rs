//! §5.3.3 — "Tracing events and profiling energy cost": EDB's printf and
//! watchpoints peek under the hood of the activity-recognition app with
//! minimal impact on its behaviour.
//!
//! ```sh
//! cargo run --release --example activity_profile
//! ```

use edb_suite::apps::activity::{self, Variant};
use edb_suite::core::{DebugEvent, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};

fn main() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 5))
        .build();
    sys.flash(&activity::image(Variant::EdbPrintf));
    sys.run_for(SimTime::from_secs(4));

    let edb = sys.edb().expect("attached");
    println!("-- the printf stream (feature, iteration) --");
    for line in edb.log().printf_lines().iter().take(10) {
        println!("  target> {line}");
    }

    // Pair WP1 (iteration start) with WP2/WP3 (classified) to build the
    // time & energy profile of Figure 10's instrumentation.
    println!("\n-- per-iteration profile from watchpoints 1/2/3 --");
    let mut open: Option<(SimTime, f64)> = None;
    let mut times = Vec::new();
    let mut energies = Vec::new();
    let (mut stationary, mut moving) = (0u32, 0u32);
    for ev in edb.log().with_tag("watchpoint") {
        if let DebugEvent::Watchpoint { id, v_cap } = ev.event {
            match id {
                1 => open = Some((ev.at, v_cap)),
                2 | 3 => {
                    if let Some((t0, v0)) = open.take() {
                        times.push(ev.at.since(t0).as_secs_f64() * 1e3);
                        energies.push(0.5 * 47e-6 * (v0 * v0 - v_cap * v_cap) * 1e6);
                        if id == 2 {
                            stationary += 1;
                        } else {
                            moving += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("  completed iterations : {}", times.len());
    println!("  mean iteration time  : {:.2} ms", mean(&times));
    println!("  mean iteration energy: {:.2} µJ", mean(&energies));

    // Watchpoints 2 and 3 give EDB an independent copy of the stats.
    let nv = activity::read_stats(sys.device().mem());
    println!("\n-- cross-check: EDB's watchpoint tally vs the target's NV counters --");
    println!("  EDB saw   : {stationary} stationary / {moving} moving");
    println!(
        "  target NV : {} stationary / {} moving ({} total)",
        nv.stationary, nv.moving, nv.total
    );
    println!("\n(the counts differ only by iterations cut short by power failures —");
    println!(" exactly the discrepancy §5.3.3 uses the watchpoints to quantify)");
}
