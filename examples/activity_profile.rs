//! §5.3.3 — "Tracing events and profiling energy cost": EDB's printf and
//! watchpoints peek under the hood of the activity-recognition app with
//! minimal impact on its behaviour.
//!
//! ```sh
//! cargo run --release --example activity_profile
//! ```

use edb_suite::apps::activity::{self, Variant};
use edb_suite::core::{DebugEvent, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};
use edb_suite::obs::RecorderConfig;

fn main() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 5))
        .with_recorder(RecorderConfig::default())
        .build();
    sys.flash(&activity::image(Variant::EdbPrintf));
    sys.run_for(SimTime::from_secs(4));

    let edb = sys.edb().expect("attached");
    println!("-- the printf stream (feature, iteration) --");
    for line in edb.log().printf_lines().iter().take(10) {
        println!("  target> {line}");
    }

    // Pair WP1 (iteration start) with WP2/WP3 (classified) to build the
    // time & energy profile of Figure 10's instrumentation.
    println!("\n-- per-iteration profile from watchpoints 1/2/3 --");
    let mut open: Option<(SimTime, f64)> = None;
    let mut times = Vec::new();
    let mut energies = Vec::new();
    let (mut stationary, mut moving) = (0u32, 0u32);
    for ev in edb.log().with_tag("watchpoint") {
        if let DebugEvent::Watchpoint { id, v_cap } = ev.event {
            match id {
                1 => open = Some((ev.at, v_cap)),
                2 | 3 => {
                    if let Some((t0, v0)) = open.take() {
                        times.push(ev.at.since(t0).as_secs_f64() * 1e3);
                        energies.push(0.5 * 47e-6 * (v0 * v0 - v_cap * v_cap) * 1e6);
                        if id == 2 {
                            stationary += 1;
                        } else {
                            moving += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("  completed iterations : {}", times.len());
    println!("  mean iteration time  : {:.2} ms", mean(&times));
    println!("  mean iteration energy: {:.2} µJ", mean(&energies));

    // Watchpoints 2 and 3 give EDB an independent copy of the stats.
    let nv = activity::read_stats(sys.device().mem());
    println!("\n-- cross-check: EDB's watchpoint tally vs the target's NV counters --");
    println!("  EDB saw   : {stationary} stationary / {moving} moving");
    println!(
        "  target NV : {} stationary / {} moving ({} total)",
        nv.stationary, nv.moving, nv.total
    );
    println!("\n(the counts differ only by iterations cut short by power failures —");
    println!(" exactly the discrepancy §5.3.3 uses the watchpoints to quantify)");

    // The observability bus recorded the whole run passively; export it
    // for the standard viewers. Open the Perfetto trace at
    // https://ui.perfetto.dev, the VCD in GTKWave.
    let rec = sys.take_recorder().expect("recorder attached above");
    let dir = std::path::Path::new("target").join("experiments");
    let _ = std::fs::create_dir_all(&dir);
    for (name, content) in [
        ("activity.perfetto.json", rec.perfetto_json()),
        ("activity.vcd", rec.vcd()),
        ("activity.profile.json", rec.profile_json()),
    ] {
        let path = dir.join(name);
        match std::fs::write(&path, content) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => println!("could not write {}: {e}", path.display()),
        }
    }
    let samples = rec.profiler().samples();
    println!("\n-- sampling energy profiler --");
    println!(
        "  {} PC samples; hottest buckets (addr, samples, mean Vcap):",
        samples
    );
    // A quick console rendering of the profile JSON's top rows.
    let json = rec.profile_json();
    let v: serde::Value = serde_json::from_str(&json).expect("own output parses");
    let mut buckets: Vec<(String, u64, f64)> = v
        .get_field("buckets")
        .and_then(|b| b.as_seq())
        .unwrap_or(&[])
        .iter()
        .map(|b| {
            let addr = b.get_field("addr").and_then(|a| a.as_str()).unwrap_or("?");
            let n = match b.get_field("samples") {
                Some(serde::Value::U64(n)) => *n,
                _ => 0,
            };
            let vm = match b.get_field("v_mean") {
                Some(serde::Value::F64(x)) => *x,
                _ => 0.0,
            };
            (addr.to_string(), n, vm)
        })
        .collect();
    buckets.sort_by_key(|b| std::cmp::Reverse(b.1));
    for (addr, n, vm) in buckets.iter().take(5) {
        println!("  {addr}  {n:>6}  {vm:.3} V");
    }
}
