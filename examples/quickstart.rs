//! Quickstart: write an intermittent program, run it on harvested power,
//! and watch it through EDB.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edb_suite::core::{libedb, DebugEvent, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};
use edb_suite::mcu::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A target program in the device's assembly: count in FRAM, pulse
    //    a watchpoint each lap, and print the counter via EDB printf
    //    every 256 laps. `wrap_program` links in the libEDB routines.
    let image = assemble(&libedb::wrap_program(
        r#"
        .equ COUNTER, 0x6000
        .org 0x4400
        main:
            movi sp, 0x2400
        loop:
            movi r0, 1
            out  CODE_MARKER, r0        ; watchpoint 1: loop heartbeat
            movi r1, COUNTER
            ld   r0, [r1]
            add  r0, 1
            st   [r1], r0               ; progress survives power failures
            and  r0, 0xFF
            cmpi r0, 0
            jnz  loop
            movi r1, COUNTER
            ld   r0, [r1]
            call __edb_print_hex16      ; energy-interference-free printf
            jmp  loop
        .org 0xFFFE
        .word main
        "#,
    ))?;

    // 2. The bench: a WISP-like target on an RF-like harvested supply,
    //    with EDB on its header.
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 1))
        .build();
    sys.flash(&image);

    // 3. Run two seconds of wall-clock time on harvested power.
    sys.run_for(SimTime::from_secs(2));

    // 4. What happened?
    let dev = sys.device();
    println!(
        "powered {} times, browned out {} times",
        dev.turn_ons(),
        dev.reboots()
    );
    println!(
        "counter reached {} across all those reboots (FRAM persists!)",
        dev.mem().peek_word(0x6000)
    );

    let edb = sys.edb().expect("attached");
    println!(
        "EDB logged {} watchpoint pulses and {} energy samples",
        edb.log().with_tag("watchpoint").count(),
        edb.log().with_tag("energy").count(),
    );
    println!("printf lines (cost the target almost nothing):");
    for line in edb.log().printf_lines().iter().take(8) {
        println!("  target> {line}");
    }

    // A brief energy-trace excerpt: the sawtooth of intermittent life.
    println!("energy trace excerpt:");
    let mut shown = 0;
    for ev in edb.log().with_tag("energy") {
        if let DebugEvent::EnergySample { v_cap, .. } = ev.event {
            if shown % 40 == 0 {
                let bar = "#".repeat((v_cap * 20.0) as usize);
                println!("  {:>10} {v_cap:.2} V |{bar}", ev.at.to_string());
            }
            shown += 1;
        }
        if shown > 400 {
            break;
        }
    }
    Ok(())
}
