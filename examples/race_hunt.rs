//! Exhaustive intermittence-race hunting: enumerate *every* instruction
//! boundary where a power failure corrupts the linked-list app, inspect
//! the culprits with the disassembler, and prove the task-atomic fix.
//!
//! (The T-Check/KleeNet-style complement to EDB that §6.3 of the paper
//! calls for.)
//!
//! ```sh
//! cargo run --release --example race_hunt
//! ```

use edb_suite::apps::linked_list as ll;
use edb_suite::apps::oracle::{self, Outcome};
use edb_suite::mcu::asm::disassemble;

fn main() {
    println!("exploring every power-failure point in one append/remove pair...");
    let results = oracle::explore_linked_list(ll::Variant::Plain);
    let total = results.len();
    let recovered = results
        .iter()
        .filter(|r| r.outcome == Outcome::Recovered)
        .count();
    let races = oracle::sites_with(&results, Outcome::Bricked);
    println!(
        "{total} cut points: {recovered} recover cleanly, {} brick the device",
        total - recovered
    );
    println!("distinct race sites: {races:04x?}\n");

    // Show the culprit instructions in context.
    let image = ll::image(ll::Variant::Plain);
    for &site in &races {
        // Disassemble a few words around the site.
        let seg = image
            .segments()
            .iter()
            .find(|(start, bytes)| {
                site >= *start && (site as usize) < *start as usize + bytes.len()
            })
            .expect("site is in the image");
        let from = site.saturating_sub(8).max(seg.0);
        let offset = (from - seg.0) as usize;
        let window = &seg.1[offset..(offset + 20).min(seg.1.len())];
        println!("race site {site:#06x} — power failing right after this store corrupts the list:");
        for (addr, text) in disassemble(window, from) {
            let marker = if addr == site { "  <-- RACE" } else { "" };
            println!("  {addr:#06x}  {text}{marker}");
        }
        println!();
    }

    println!("same exploration against the DINO-style task-atomic build:");
    let atomic = oracle::explore_linked_list(ll::Variant::TaskAtomic);
    let survived = atomic.iter().all(|r| r.outcome == Outcome::Recovered);
    println!(
        "{} cut points, all recovered: {survived} — per-iteration task boundaries make the races unreachable.",
        atomic.len()
    );
}
