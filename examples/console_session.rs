//! A scripted tour of the debug console (Table 1): charge, discharge,
//! breakpoints, traces, and memory access from the command line.
//!
//! ```sh
//! cargo run --release --example console_session
//! ```

use edb_suite::core::{libedb, Console, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};
use edb_suite::mcu::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with an internal breakpoint in its loop: `break en 2`
    // arms it from the console; the energy condition makes it combined.
    let image = assemble(&libedb::wrap_program(
        r#"
        .equ COUNTER, 0x6000
        .org 0x4400
        main:
            movi sp, 0x2400
            ei
        loop:
            movi r1, COUNTER
            ld   r0, [r1]
            add  r0, 1
            st   [r1], r0
            movi r0, 2
            call __edb_breakpoint      ; site id 2
            jmp  loop
        .org 0xFFFC
        .word __edb_isr
        .org 0xFFFE
        .word main
        "#,
    ))?;
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 3))
        .build();
    sys.flash(&image);

    let mut console = Console::new();
    let mut exec = |cmd: &str, sys: &mut System| {
        println!("(edb) {cmd}");
        match console.execute(cmd, sys) {
            Ok(out) => {
                for line in out.lines().take(6) {
                    println!("      {line}");
                }
            }
            Err(e) => println!("      error: {e}"),
        }
    };

    exec("status", &mut sys);
    exec("charge 2.4", &mut sys);
    exec("run 50", &mut sys);
    exec("status", &mut sys);
    exec("trace energy", &mut sys);
    // Arm the combined breakpoint: code point 2, but only below 2.0 V.
    exec("break en 2 2.0", &mut sys);
    println!("(edb) ; running until the breakpoint triggers in a low-energy iteration...");
    let hit = sys.run_until(SimTime::from_secs(2), |s| {
        s.edb().is_some_and(|e| e.session_active())
    });
    println!(
        "      breakpoint hit: {hit} (Vcap {:.2} V)",
        sys.device().v_cap()
    );
    exec("read 0x6000", &mut sys);
    exec("write 0x6000 0x0000", &mut sys);
    exec("read 0x6000", &mut sys);
    exec("break dis 2", &mut sys);
    exec("resume", &mut sys);
    exec("run 20", &mut sys);
    exec("read 0x6000", &mut sys); // fails: no session — shows the guard rails
    exec("status", &mut sys);
    Ok(())
}
