//! §5.3.2 — "Instrumenting code with consistency checks": energy guards
//! hide the cost of arbitrarily expensive debug instrumentation.
//!
//! ```sh
//! cargo run --release --example energy_guards
//! ```

use edb_suite::apps::fib;
use edb_suite::core::System;
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};

fn run(variant: fib::Variant, label: &str) {
    // The hungrier config from the paper-scale calibration (see
    // DESIGN.md): the starvation point lands near the paper's ~555.
    let config = DeviceConfig {
        i_active: 4.4e-3,
        ..DeviceConfig::wisp5()
    };
    let mut sys = System::builder(config)
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 9))
        .build();
    sys.flash(&fib::image(variant));

    let mut last = (0u16, SimTime::ZERO);
    let mut stalled_at = None;
    let end = SimTime::from_secs(40);
    while sys.now() < end {
        sys.step();
        let count = sys.device().mem().peek_word(fib::COUNT);
        if count != last.0 {
            last = (count, sys.now());
        } else if sys.now().since(last.1) > SimTime::from_secs(2) {
            stalled_at = Some(count);
            break;
        }
    }
    let count = sys.device().mem().peek_word(fib::COUNT);
    let violations = sys.device().mem().peek_word(fib::VIOLATIONS);
    let guards = sys
        .edb()
        .map(|e| e.log().with_tag("guard-enter").count())
        .unwrap_or(0);
    match stalled_at {
        Some(n) => println!(
            "{label}: HUNG after {n} items — the O(n) check ate the whole energy budget \
             ({} reboots; {violations} violations caught en route)",
            sys.device().reboots()
        ),
        None => println!(
            "{label}: still going strong at {count} items ({guards} guard episodes ran the \
             check on tethered power; {violations} violations caught)",
        ),
    }
}

fn main() {
    println!("the Fibonacci app appends to a non-volatile linked list; its debug build");
    println!("traverses the entire list checking linkage + the recurrence every pass.\n");
    run(fib::Variant::Checked, "debug build, no guards   ");
    run(fib::Variant::Guarded, "debug build, energy guards");
    println!();
    println!("wrap the expensive check in __edb_guard_begin/__edb_guard_end and EDB");
    println!("tethers the target for exactly that region, then restores the saved energy");
    println!("level — instrumentation of arbitrary cost becomes non-disruptive (§5.3.2).");
}
