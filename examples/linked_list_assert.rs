//! §5.3.1 — "Detecting memory corruption early": the paper's linked-list
//! intermittence bug, diagnosed live with EDB's keep-alive assertion and
//! the interactive console.
//!
//! ```sh
//! cargo run --release --example linked_list_assert
//! ```

use edb_suite::apps::linked_list as ll;
use edb_suite::core::System;
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};
use edb_suite::mcu::RESET_VECTOR;

fn harvested(seed: u64) -> Box<Fading<TheveninSource>> {
    Box::new(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed))
}

fn main() {
    println!("--- act 1: the release build fails mysteriously ---");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(1))
        .build();
    sys.flash(&ll::image(ll::Variant::Plain));
    let bricked = sys.run_until(SimTime::from_secs(30), |s| {
        s.device().mem().peek_word(RESET_VECTOR) != 0x4400
    });
    assert!(bricked, "the intermittence bug always strikes eventually");
    println!(
        "after {} and {} reboots on harvested power, the app corrupted its own reset vector.",
        sys.now(),
        sys.device().reboots()
    );
    println!("the main loop will never run again; only a reflash recovers. why?\n");

    println!("--- act 2: the same code, with one EDB assert ---");
    println!("ASSERT(list->tail->next == NULL) at the top of remove():\n");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(1))
        .build();
    sys.flash(&ll::image(ll::Variant::Assert));
    let caught = sys.run_until(SimTime::from_secs(60), |s| {
        s.edb().is_some_and(|e| e.session_active())
    });
    assert!(caught);
    println!(
        "[{}] assert FAILED — EDB tethered the target before it could brown out",
        sys.now()
    );
    sys.run_for(SimTime::from_ms(20)); // let the tether settle
    println!(
        "target alive at {:.2} V on tethered power; volatile state intact\n",
        sys.device().v_cap()
    );

    println!("interactive session (reads go through the live debug protocol):");
    let tail = sys.read_word(ll::TAILP).expect("read");
    println!("  (edb) read TAILP          -> {tail:#06x}");
    let head_next = sys.read_word(ll::HEAD + ll::NODE_NEXT).expect("read");
    println!("  (edb) read HEAD.next      -> {head_next:#06x}");
    let tail_next = sys
        .read_word(tail.wrapping_add(ll::NODE_NEXT))
        .expect("read");
    println!("  (edb) read tail->next     -> {tail_next:#06x}");
    let e_prev = sys
        .read_word(head_next.wrapping_add(ll::NODE_PREV))
        .expect("read");
    println!("  (edb) read e->prev        -> {e_prev:#06x}");
    println!();
    println!(
        "diagnosis: tail points at the sentinel ({:#06x}) while the sentinel's",
        ll::HEAD
    );
    println!("next already points at node e ({head_next:#06x}) — append was interrupted between");
    println!("`list->tail->next = e` and `list->tail = e`. One more remove() would have");
    println!("dereferenced e->next == NULL and memset a wild pointer over the reset vector.");
    println!("the assert caught it first; the device is still recoverable.");
}
