//! §6.1 — Ekho-style record/replay plus EDB: make a heisenbug
//! repeatable, *then* debug it.
//!
//! Ekho records a live harvesting environment and replays it; EDB
//! explains what the program did inside it. Together: record the
//! unrepeatable field conditions once, then replay them identically as
//! many times as the investigation needs — adding instrumentation
//! between runs without losing the failure.
//!
//! ```sh
//! cargo run --release --example ekho_replay
//! ```

use edb_suite::apps::linked_list as ll;
use edb_suite::core::System;
use edb_suite::device::{Device, DeviceConfig};
use edb_suite::energy::{ekho, Fading, SimTime, TheveninSource};
use edb_suite::mcu::RESET_VECTOR;

fn main() {
    // 1. The unrepeatable field environment: RF with live fading.
    let mut live = Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 0);
    println!("recording 10 s of the live RF environment at 1 ms resolution...");
    let tape = ekho::record(
        &mut live,
        1500.0,
        2.1,
        SimTime::from_secs(10),
        SimTime::from_ms(1),
    );
    println!(
        "tape: {} samples ({} bytes as CSV)\n",
        tape.len(),
        tape.to_csv().len()
    );

    // 2. Replay against the buggy app — the failure is now a fixture.
    let strike = |tape: &ekho::Tape| {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&ll::image(ll::Variant::Plain));
        let mut src = ekho::replay(tape, 1500.0);
        while dev.now() < SimTime::from_secs(10) {
            dev.step(&mut src, 0.0);
            if dev.mem().peek_word(RESET_VECTOR) != 0x4400 {
                return Some(dev.now());
            }
        }
        None
    };
    let t1 = strike(&tape);
    let t2 = strike(&tape);
    println!("replay 1: bug strikes at {:?}", t1.map(|t| t.to_string()));
    println!(
        "replay 2: bug strikes at {:?}  (identical — that's the point)\n",
        t2.map(|t| t.to_string())
    );
    assert_eq!(t1, t2);

    // 3. Now replay the same tape with the *instrumented* build and EDB
    //    attached: the assert catches the same failure live.
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(ekho::replay(&tape, 1500.0))
        .build();
    sys.flash(&ll::image(ll::Variant::Assert));
    let caught = sys.run_until(SimTime::from_secs(10), |s| {
        s.edb().is_some_and(|e| e.session_active())
    });
    println!(
        "replay 3 (assert build + EDB): caught={caught} at {}",
        sys.now()
    );
    let tail = sys.read_word(ll::TAILP).expect("read");
    println!("  (edb) read TAILP -> {tail:#06x}  — the same stale tail, now on a live device");
    println!("\nworkflow: field failure -> tape -> deterministic replays -> root cause.");
}
