//! §5.3.4 — "Debugging and tuning RFID applications": EDB monitors the
//! RF lines externally and correlates messages with the energy level.
//!
//! ```sh
//! cargo run --release --example rfid_monitor
//! ```

use edb_suite::apps::rfid_fw;
use edb_suite::core::{DebugEvent, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::SimTime;
use edb_suite::rfid::ReaderConfig;

fn main() {
    // The paper's bench: reader at 1 m, continuously inventorying; the
    // tag decodes queries in software and backscatters its EPC.
    let device_config = DeviceConfig {
        i_active: 0.95e-3, // the RFID firmware mostly idles at the demodulator
        ..DeviceConfig::wisp5()
    };
    let reader_config = ReaderConfig {
        query_period: SimTime::from_ms(260),
        rep_gap: SimTime::from_ms(65),
        reps_per_round: 3,
        ..ReaderConfig::paper_setup()
    };
    let mut sys = System::builder(device_config)
        .rfid(1.0)
        .reader_config(reader_config)
        .seed(7)
        .build();
    sys.flash(&rfid_fw::image());
    sys.run_for(SimTime::from_secs(10));

    let edb = sys.edb().expect("attached");
    let (mut cmds, mut rsps, mut corrupt) = (0u32, 0u32, 0u32);
    for ev in edb.log().with_tag("rfid") {
        if let DebugEvent::Rfid {
            downlink, valid, ..
        } = ev.event
        {
            match (downlink, valid) {
                (true, true) => cmds += 1,
                (false, true) => rsps += 1,
                (_, false) => corrupt += 1,
            }
        }
    }
    println!("10 s at 1 m from the reader:");
    println!("  commands reaching the tag : {cmds} ({corrupt} corrupted in flight)");
    println!("  tag replies               : {rsps}");
    println!(
        "  response rate             : {:.0} %  (paper measured 86 %)",
        rsps as f64 / cmds.max(1) as f64 * 100.0
    );
    println!(
        "  replies per second        : {:.1}  (paper: ~13)",
        rsps as f64 / 10.0
    );
    let fw = rfid_fw::read_stats(sys.device().mem());
    println!(
        "  target's own decode tally : {} ok / {} crc-rejected",
        fw.decoded_ok, fw.decoded_bad
    );

    println!("\nmessage/energy timeline (one excerpt):");
    let from = SimTime::from_secs(3);
    let to = SimTime::from_ms(3600);
    let mut last_v = 0.0;
    for ev in edb.log().window(from, to) {
        match &ev.event {
            DebugEvent::EnergySample { v_cap, .. } => last_v = *v_cap,
            DebugEvent::Rfid {
                label, downlink, ..
            } => {
                let arrow = if *downlink { "->" } else { "<-" };
                println!(
                    "  {:>9.1} ms  {arrow} {label:<13} Vcap={last_v:.2} V",
                    ev.at.as_millis_f64()
                );
            }
            _ => {}
        }
    }
    println!("\nEDB decoded every frame on its own power — including any the tag");
    println!("slept through — which is what lets it separate corrupted-in-flight");
    println!("frames from frames the target failed to parse (§5.3.4).");
}
