//! The parallel runner's core guarantee: for a fixed root seed, the
//! experiment reports are **bit-identical at any thread count**. Trial
//! seeds derive from `(root seed, experiment, trial index)` and results
//! are re-ordered by trial index, so scheduling can never leak into the
//! numbers.

use edb_bench::runner::Runner;

fn assert_identical_reports(name: &str, run: impl Fn(&Runner) -> edb_bench::Report) {
    let baseline = run(&Runner::quiet(1, 42));
    for threads in [2, 8] {
        let parallel = run(&Runner::quiet(threads, 42));
        assert_eq!(
            baseline.metrics, parallel.metrics,
            "{name}: metrics diverged between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.lines, parallel.lines,
            "{name}: report text diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn table3_is_bit_identical_across_thread_counts() {
    assert_identical_reports("table3", |r| edb_bench::table3::run(r, false));
}

#[test]
fn claims_are_bit_identical_across_thread_counts() {
    assert_identical_reports("claims", edb_bench::claims::run);
}

#[test]
fn root_seed_actually_steers_the_trials() {
    // Different root seeds must produce different harvested traces in
    // seeded experiments (otherwise the determinism above is vacuous).
    let a = edb_bench::table3::run(&Runner::quiet(4, 42), false);
    let b = edb_bench::table3::run(&Runner::quiet(4, 43), false);
    assert_ne!(
        a.get("dv_truth_mv"),
        b.get("dv_truth_mv"),
        "table3 must respond to the root seed"
    );
}
