//! Cross-crate integration tests of the intermittent execution model —
//! the paper's central premise: there is a class of bugs that exist
//! *only* under intermittent power.

use edb_suite::apps::{activity, fib, linked_list as ll};
use edb_suite::device::{Device, DeviceConfig};
use edb_suite::energy::{Fading, PowerEdge, SimTime, TheveninSource};
use edb_suite::mcu::RESET_VECTOR;

fn harvested(seed: u64) -> Fading<TheveninSource> {
    Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed)
}

#[test]
fn the_headline_claim_bug_needs_intermittence() {
    // Continuous power: the linked-list app is perfectly correct.
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&ll::image(ll::Variant::Plain));
    let mut supply = TheveninSource::new(3.0, 10.0);
    while dev.now() < SimTime::from_secs(5) {
        dev.step(&mut supply, 0.0);
    }
    assert_eq!(dev.reboots(), 0);
    assert_eq!(dev.mem().peek_word(RESET_VECTOR), 0x4400);
    let continuous_iters = dev.mem().peek_word(ll::ITER_COUNT);
    assert!(continuous_iters > 0);

    // Intermittent power: the same binary destroys itself.
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&ll::image(ll::Variant::Plain));
    let mut src = harvested(0); // seed 0 strikes quickly
    let mut struck = false;
    while dev.now() < SimTime::from_secs(30) {
        dev.step(&mut src, 0.0);
        if dev.mem().peek_word(RESET_VECTOR) != 0x4400 {
            struck = true;
            break;
        }
    }
    assert!(
        struck,
        "intermittence must corrupt the same correct-looking code"
    );
}

#[test]
fn reboots_clear_volatile_and_keep_nonvolatile_state() {
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&activity::image(activity::Variant::NoPrint));
    let mut src = harvested(4);
    let mut saw_brownout_with_state = false;
    while dev.now() < SimTime::from_secs(2) {
        let step = dev.step(&mut src, 0.0);
        if step.power_edge == Some(PowerEdge::BrownOut) && dev.mem().peek_word(activity::TOTAL) > 10
        {
            saw_brownout_with_state = true;
            // SRAM cleared...
            for addr in edb_suite::mcu::SRAM_START..edb_suite::mcu::SRAM_END {
                assert_eq!(dev.mem().peek_byte(addr), 0);
            }
            // ...but the FRAM statistics survive.
            assert!(dev.mem().peek_word(activity::TOTAL) > 10);
        }
    }
    assert!(saw_brownout_with_state);
}

#[test]
fn checkpointing_runtime_carries_volatile_progress_across_failures() {
    let src_text = format!(
        r#"
        .equ MIRROR, 0x6000
        .org 0x4400
        init:
            movi sp, 0x2400
            movi r0, 0
        loop:
            add  r0, 1
            movi r1, MIRROR
            st   [r1], r0
            call __cp_checkpoint
            jmp  loop
        {}
        .org 0xFFFE
        .word __cp_boot
        "#,
        edb_suite::runtime::runtime_asm("init")
    );
    let image = edb_suite::mcu::asm::assemble(&src_text).expect("assembles");
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut src = harvested(5);
    let mut prev_max = 0u16;
    while dev.now() < SimTime::from_secs(1) {
        let step = dev.step(&mut src, 0.0);
        if step.power_edge == Some(PowerEdge::TurnOn) && dev.reboots() > 0 {
            let v = dev.mem().peek_word(0x6000);
            assert!(
                v + 2 >= prev_max,
                "checkpoint restore lost progress: {prev_max} -> {v}"
            );
        }
        prev_max = prev_max.max(dev.mem().peek_word(0x6000));
    }
    assert!(dev.reboots() >= 2, "needs real power failures");
    assert!(
        prev_max > 50,
        "the register counter must make real progress"
    );
}

#[test]
fn fibonacci_list_is_correct_whenever_it_is_consistent() {
    // Under intermittence the list occasionally carries a transient
    // violation (the paper saw the same); whenever the host oracle can
    // walk it, the values must obey the recurrence from a consistent
    // prefix.
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&fib::image(fib::Variant::Release));
    let mut src = harvested(6);
    let mut checked = 0;
    while dev.now() < SimTime::from_secs(2) {
        let step = dev.step(&mut src, 0.0);
        if step.power_edge == Some(PowerEdge::TurnOn) {
            if let Some(values) = fib::read_list(dev.mem()) {
                if values.len() >= 3 {
                    checked += 1;
                    assert!(
                        fib::is_fibonacci(&values),
                        "list walkable but wrong at {} items",
                        values.len()
                    );
                }
            }
        }
    }
    assert!(checked >= 2, "need post-reboot list checks, got {checked}");
}

#[test]
fn device_behaviour_is_deterministic_per_seed() {
    let run = || {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&activity::image(activity::Variant::NoPrint));
        let mut src = harvested(8);
        while dev.now() < SimTime::from_ms(800) {
            dev.step(&mut src, 0.0);
        }
        (
            dev.reboots(),
            dev.total_instructions(),
            dev.mem().peek_word(activity::TOTAL),
            dev.v_cap().to_bits(),
        )
    };
    assert_eq!(run(), run(), "bit-identical trajectories per seed");
}
