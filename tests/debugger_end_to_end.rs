//! End-to-end integration tests of the debugger itself: every Table 1
//! primitive exercised against live intermittent targets.

use edb_suite::apps::{activity, linked_list as ll};
use edb_suite::core::{libedb, Console, DebugEvent, System};
use edb_suite::device::DeviceConfig;
use edb_suite::energy::{Fading, SimTime, TheveninSource};

fn harvested(seed: u64) -> Box<Fading<TheveninSource>> {
    Box::new(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed))
}

#[test]
fn keep_alive_assert_preempts_the_crash_and_allows_diagnosis() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(0))
        .build();
    sys.flash(&ll::image(ll::Variant::Assert));
    assert!(
        sys.run_until(SimTime::from_secs(30), |s| {
            s.edb().is_some_and(|e| e.session_active())
        }),
        "assert must fire"
    );
    // Keep-alive: the target rides the tether instead of browning out.
    let reboots_at_assert = sys.device().reboots();
    sys.run_for(SimTime::from_ms(50));
    assert!(sys.device().v_cap() > 2.6);
    assert_eq!(sys.device().reboots(), reboots_at_assert);
    // Live diagnosis through the real debug protocol.
    let tail = sys.read_word(ll::TAILP).expect("read");
    assert_eq!(tail, ll::HEAD, "tail points at the sentinel: the bug state");
    let tail_next = sys
        .read_word(tail.wrapping_add(ll::NODE_NEXT))
        .expect("read");
    assert_ne!(tail_next, 0, "the violated invariant is visible live");
    // And the device can even be repaired in place: restore the tail.
    sys.write_word(ll::TAILP, tail_next).expect("write");
    sys.write_word(tail_next.wrapping_add(ll::NODE_NEXT), 0)
        .expect("write");
    sys.resume();
    let iters_now = sys.device().mem().peek_word(ll::ITER_COUNT);
    sys.run_for(SimTime::from_ms(100));
    assert!(
        sys.device().mem().peek_word(ll::ITER_COUNT) > iters_now,
        "the repaired app keeps running"
    );
}

#[test]
fn energy_breakpoint_fires_at_the_threshold() {
    let image = edb_suite::mcu::asm::assemble(&libedb::wrap_program(
        r#"
        .org 0x4400
        main:
            movi sp, 0x2400
            ei
        loop:
            add r0, 1
            jmp loop
        .org 0xFFFC
        .word __edb_isr
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("assembles");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(2))
        .build();
    sys.flash(&image);
    sys.edb_mut().arm_energy_breakpoint(2.1);
    sys.charge_to(2.4);
    assert!(sys.wait_for_session(SimTime::from_secs(2)));
    // The session opened within the control error of the threshold.
    let v = sys.device().v_cap();
    assert!(
        (2.0..2.25).contains(&v),
        "session opened at {v} V, armed at 2.1 V"
    );
    sys.resume();
    // After resume, execution continues and the breakpoint re-arms: it
    // fires again on the next pass through 2.1 V.
    sys.charge_to(2.4);
    assert!(
        sys.wait_for_session(SimTime::from_secs(2)),
        "re-armed and re-fired"
    );
}

#[test]
fn combined_breakpoint_respects_the_energy_condition() {
    let image = edb_suite::mcu::asm::assemble(&libedb::wrap_program(
        r#"
        .equ LAPS, 0x6000
        .org 0x4400
        main:
            movi sp, 0x2400
        loop:
            movi r1, LAPS
            ld   r0, [r1]
            add  r0, 1
            st   [r1], r0
            movi r0, 1
            call __edb_breakpoint
            jmp  loop
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("assembles");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(3))
        .build();
    sys.flash(&image);
    // Enabled, but only below 2.0 V: iterations above that sail through.
    {
        let (edb, dev) = sys.edb_and_device().expect("attached");
        edb.enable_breakpoint(dev, 1, Some(2.0));
    }
    sys.charge_to(2.4);
    let hit = sys.run_until(SimTime::from_secs(2), |s| {
        s.edb().is_some_and(|e| e.session_active())
    });
    assert!(hit, "must trigger once energy droops below the condition");
    let v = sys.device().v_cap();
    assert!(v < 2.05, "triggered at {v} V, condition was 2.0 V");
    // Plenty of laps completed above the threshold before the hit.
    let laps = sys.device().mem().peek_word(0x6000);
    assert!(
        laps > 100,
        "breakpoint must not fire above the threshold ({laps} laps)"
    );
}

#[test]
fn edb_printf_reaches_the_host_intact() {
    let image = edb_suite::mcu::asm::assemble(&libedb::wrap_program(
        r#"
        .org 0x4400
        main:
            movi sp, 0x2400
            movi r0, msg
            call __edb_printf
            movi r0, 0xBEEF
            call __edb_print_hex16
        spin:
            jmp  spin
        msg: .asciz "hello intermittent world"
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("assembles");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(4))
        .build();
    sys.flash(&image);
    let got = sys.run_until(SimTime::from_secs(2), |s| {
        s.edb().is_some_and(|e| e.log().printf_lines().len() >= 2)
    });
    assert!(got, "both lines must arrive");
    let edb = sys.edb().unwrap();
    let lines = edb.log().printf_lines();
    assert_eq!(lines[0], "hello intermittent world");
    assert_eq!(lines[1], "beef");
}

#[test]
fn console_drives_a_full_session() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(0))
        .build();
    sys.flash(&ll::image(ll::Variant::Assert));
    let mut console = Console::new();
    console.execute("charge 2.4", &mut sys).expect("charge");
    assert!(sys.run_until(SimTime::from_secs(30), |s| {
        s.edb().is_some_and(|e| e.session_active())
    }));
    let out = console
        .execute(&format!("read {:#06x}", ll::TAILP), &mut sys)
        .expect("read");
    assert!(
        out.contains("0x6000"),
        "console showed the stale tail: {out}"
    );
    let out = console.execute("resume", &mut sys).expect("resume");
    assert!(out.contains("resumed"));
    let out = console.execute("status", &mut sys).expect("status");
    assert!(out.contains("session     : false"));
}

#[test]
fn watchpoints_stream_with_energy_snapshots() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(5))
        .build();
    sys.flash(&activity::image(activity::Variant::NoPrint));
    sys.run_for(SimTime::from_secs(1));
    let edb = sys.edb().unwrap();
    let hits = edb.log().watchpoint_hits(activity::WP_ITER_START);
    assert!(hits.len() > 100, "steady watchpoint stream: {}", hits.len());
    for (_, v) in &hits {
        assert!(
            (1.7..2.6).contains(v),
            "energy snapshot {v} outside the operating band"
        );
    }
    // Snapshots span the operating band (the device really is cycling).
    let min = hits.iter().map(|h| h.1).fold(f64::INFINITY, f64::min);
    let max = hits.iter().map(|h| h.1).fold(0.0, f64::max);
    assert!(max - min > 0.3, "snapshots span {min:.2}..{max:.2} V");
}

#[test]
fn guard_exit_event_restores_close_to_entry_level() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harvested(6))
        .build();
    sys.flash(&activity::image(activity::Variant::EdbPrintf));
    sys.run_for(SimTime::from_secs(2));
    let edb = sys.edb().unwrap();
    let mut entries = Vec::new();
    let mut exits = Vec::new();
    for ev in edb.log().events() {
        match ev.event {
            DebugEvent::GuardEnter { saved_v } => entries.push(saved_v),
            DebugEvent::GuardExit { restored_v } => exits.push(restored_v),
            _ => {}
        }
    }
    assert!(entries.len() > 20, "many guard episodes: {}", entries.len());
    let n = entries.len().min(exits.len());
    let mean_err: f64 = entries
        .iter()
        .zip(&exits)
        .take(n)
        .map(|(s, r)| (r - s).abs())
        .sum::<f64>()
        / n as f64;
    assert!(
        mean_err < 0.02,
        "guard restore error {mean_err} V must stay within ~1 LSB-ish"
    );
}
