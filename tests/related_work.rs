//! Integration tests of the §6 related-work substrates built alongside
//! EDB: Ekho-style record/replay, the DINO-style task runtime, and
//! §3.3.3's "energy guards around non-intermittence-safe third-party
//! code".

use edb_suite::apps::linked_list as ll;
use edb_suite::core::{libedb, System};
use edb_suite::device::{Device, DeviceConfig};
use edb_suite::energy::{ekho, Fading, SimTime, TheveninSource};
use edb_suite::mcu::asm::assemble;
use edb_suite::mcu::RESET_VECTOR;

#[test]
fn ekho_replay_makes_the_heisenbug_repeatable() {
    // §6.1: Ekho "can reproduce problematic program behavior". Record a
    // live fading environment once; the buggy app then fails at the
    // *identical* instant on every replay — a heisenbug made repeatable.
    let mut live = Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 0);
    let tape = ekho::record(
        &mut live,
        1500.0,
        2.1,
        SimTime::from_secs(10),
        SimTime::from_ms(1),
    );

    let strike_time = |tape: &ekho::Tape| -> Option<SimTime> {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&ll::image(ll::Variant::Plain));
        let mut src = ekho::replay(tape, 1500.0);
        while dev.now() < SimTime::from_secs(10) {
            dev.step(&mut src, 0.0);
            if dev.mem().peek_word(RESET_VECTOR) != 0x4400 {
                return Some(dev.now());
            }
        }
        None
    };

    let first = strike_time(&tape);
    let second = strike_time(&tape);
    assert_eq!(first, second, "replays must fail identically");
    // (Whether it strikes within this tape is seed-dependent; the
    // repeatability is the property. With seed 0 it does strike.)
    assert!(first.is_some(), "seed 0's environment reproduces the bug");
}

#[test]
fn ekho_tape_survives_csv_round_trip_with_identical_behaviour() {
    let mut live = Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 3);
    let tape = ekho::record(
        &mut live,
        1500.0,
        2.1,
        SimTime::from_secs(1),
        SimTime::from_ms(1),
    );
    let csv = tape.to_csv();
    let restored = ekho::Tape::from_csv(&csv).expect("parses");

    let run = |tape: &ekho::Tape| {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&ll::image(ll::Variant::Plain));
        let mut src = ekho::replay(tape, 1500.0);
        while dev.now() < SimTime::from_secs(1) {
            dev.step(&mut src, 0.0);
        }
        (dev.reboots(), dev.total_instructions())
    };
    // CSV quantizes v_oc to 1e-6 V; behaviour stays statistically
    // identical (reboot count must match exactly here).
    assert_eq!(run(&tape).0, run(&restored).0);
}

/// §3.3.3: "As long as third-party library calls are wrapped in energy
/// guards, intermittence failures are guaranteed to not occur within
/// the library." The "library" here is a routine that rebuilds a 16-word
/// NV table in place — safe on continuous power, corruptible by a reboot
/// midway.
fn library_app(guarded: bool) -> edb_suite::mcu::Image {
    let (pre, post) = if guarded {
        ("call __edb_guard_begin", "call __edb_guard_end")
    } else {
        ("nop", "nop")
    };
    let src = format!(
        r#"
        .equ TABLE, 0x7000
        .equ GEN,   0x7040
        .equ BAD,   0x7042
        .org 0x4400
        main:
            movi sp, 0x2400
        loop:
            ; --- verify the whole table is one generation (host checks too)
            movi r1, TABLE
            ld   r2, [r1]              ; expected generation
            movi r3, 16
        vloop:
            ld   r4, [r1]
            cmp  r4, r2
            jz   vok
            movi r5, BAD
            ld   r6, [r5]
            add  r6, 1
            st   [r5], r6
            jmp  vdone
        vok:
            add  r1, 2
            sub  r3, 1
            jnz  vloop
        vdone:
            ; --- the third-party library call: bump every entry to the
            ;     next generation, one word at a time (not power-safe!)
            {pre}
            movi r1, GEN
            ld   r2, [r1]
            add  r2, 1
            st   [r1], r2
            movi r1, TABLE
            movi r3, 16
        wloop:
            st   [r1], r2
            add  r1, 2
            sub  r3, 1
            jnz  wloop
            {post}
            jmp  loop
        .org 0xFFFE
        .word main
        "#
    );
    assemble(&libedb::wrap_program(&src)).expect("library app assembles")
}

fn table_mixed_generations(dev: &Device) -> bool {
    let first = dev.mem().peek_word(0x7000);
    (1..16).any(|k| dev.mem().peek_word(0x7000 + k * 2) != first)
}

#[test]
fn unguarded_library_call_corrupts_under_intermittence() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 2))
        .build();
    sys.flash(&library_app(false));
    let mut mixed_after_reboot = 0u32;
    let mut reboots_seen = 0u64;
    while sys.now() < SimTime::from_secs(3) {
        let step = sys.step();
        if step.power_edge == Some(edb_suite::energy::PowerEdge::BrownOut) {
            reboots_seen += 1;
            if table_mixed_generations(sys.device()) {
                mixed_after_reboot += 1;
            }
        }
    }
    assert!(reboots_seen > 10);
    assert!(
        mixed_after_reboot > 0,
        "a reboot mid-rebuild must leave a mixed-generation table"
    );
}

#[test]
fn guards_make_the_library_call_atomic() {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 2))
        .build();
    sys.flash(&library_app(true));
    let mut reboots_seen = 0u64;
    while sys.now() < SimTime::from_secs(3) {
        let step = sys.step();
        if step.power_edge == Some(edb_suite::energy::PowerEdge::BrownOut) {
            reboots_seen += 1;
            assert!(
                !table_mixed_generations(sys.device()),
                "guarded library region must never be interrupted (reboot {reboots_seen})"
            );
        }
    }
    assert!(reboots_seen > 5, "still intermittent outside the guards");
    let guards = sys
        .edb()
        .map(|e| e.log().with_tag("guard-enter").count())
        .unwrap_or(0);
    assert!(
        guards > 50,
        "the library ran under guards ({guards} episodes)"
    );
    // And the target's own verifier agrees: no mixed generations seen.
    assert_eq!(
        sys.device().mem().peek_word(0x7042),
        0,
        "target-side verifier must never trip in the guarded build"
    );
}
