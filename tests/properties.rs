//! Cross-crate property-based tests: the simulator must stay sane for
//! *arbitrary* programs and power conditions, not just the curated apps.

use edb_suite::device::{Device, DeviceConfig};
use edb_suite::energy::{ConstantCurrent, SimTime, TheveninSource};
use edb_suite::mcu::{AluOp, Cond, Instr, Memory, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

/// Arbitrary *loop-heavy* instruction soup: mostly ALU and memory ops,
/// with a backward jump so programs keep running.
fn arb_program() -> impl Strategy<Value = Vec<Instr>> {
    let instr = prop_oneof![
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Movi { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Alu {
            op: AluOp::Add,
            rd,
            rs
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Alu {
            op: AluOp::Xor,
            rd,
            rs
        }),
        (arb_reg(), arb_reg(), 0u16..0x40).prop_map(|(rd, rb, off)| Instr::Ld { rd, rb, off }),
        (arb_reg(), arb_reg(), 0u16..0x40).prop_map(|(ra, rs, off)| Instr::St { ra, off, rs }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Cmpi { rd, imm }),
        (any::<u8>(), arb_reg()).prop_map(|(port, rs)| Instr::Out { port, rs }),
        (arb_reg(), any::<u8>()).prop_map(|(rd, port)| Instr::In { rd, port }),
    ];
    prop::collection::vec(instr, 4..40)
}

fn load_program(dev: &mut Device, prog: &[Instr]) {
    let mut image = edb_suite::mcu::Image::new();
    let mut bytes = Vec::new();
    for i in prog {
        let (w0, w1) = i.encode();
        bytes.extend_from_slice(&w0.to_le_bytes());
        if let Some(w1) = w1 {
            bytes.extend_from_slice(&w1.to_le_bytes());
        }
    }
    // Close the loop: jump back to the start.
    let (w0, w1) = Instr::J {
        cond: Cond::Always,
        target: 0x4400,
    }
    .encode();
    bytes.extend_from_slice(&w0.to_le_bytes());
    bytes.extend_from_slice(&w1.expect("jump has a target").to_le_bytes());
    image.push_segment(0x4400, bytes);
    image.push_segment(0xFFFE, 0x4400u16.to_le_bytes().to_vec());
    dev.flash(&image);
}

/// The program pinned in `properties.proptest-regressions` (historical
/// shrink of a `brownout_always_clears_sram` failure). The vendored
/// proptest stand-in does not auto-replay that file, so this test
/// replays the case explicitly: it must stay in lockstep with the
/// listing in the regressions file.
fn pinned_regression_program() -> Vec<Instr> {
    use AluOp::{Add, Xor};
    let r = Reg::new;
    vec![
        Instr::Movi { rd: r(0), imm: 0 },
        Instr::Alu {
            op: Xor,
            rd: r(5),
            rs: r(2),
        },
        Instr::Ld {
            rd: r(4),
            rb: r(3),
            off: 31,
        },
        Instr::Out { port: 5, rs: r(13) },
        Instr::Out {
            port: 183,
            rs: r(6),
        },
        Instr::Alu {
            op: Xor,
            rd: r(11),
            rs: r(3),
        },
        Instr::Mov {
            rd: r(12),
            rs: r(1),
        },
        Instr::Mov {
            rd: r(10),
            rs: r(3),
        },
        Instr::Mov { rd: r(7), rs: r(5) },
        Instr::Mov {
            rd: r(1),
            rs: r(13),
        },
        Instr::Movi {
            rd: r(1),
            imm: 62441,
        },
        Instr::Movi {
            rd: r(9),
            imm: 59837,
        },
        Instr::Alu {
            op: Add,
            rd: r(14),
            rs: r(3),
        },
        Instr::Alu {
            op: Xor,
            rd: r(10),
            rs: r(0),
        },
        Instr::Ld {
            rd: r(6),
            rb: r(12),
            off: 60,
        },
        Instr::Movi {
            rd: r(6),
            imm: 47514,
        },
        Instr::Mov { rd: r(8), rs: r(4) },
        Instr::Out {
            port: 122,
            rs: r(9),
        },
        Instr::Movi {
            rd: r(3),
            imm: 50824,
        },
        Instr::St {
            ra: r(14),
            off: 47,
            rs: r(15),
        },
    ]
}

/// Explicit replay of the pinned regression: the historical failure was
/// in the brown-out invariant, so hold that program to the same checks
/// the property applies to fresh cases.
#[test]
fn pinned_regression_brownout_still_clears_sram() {
    let prog = pinned_regression_program();
    let mut dev = Device::new(DeviceConfig::wisp5());
    load_program(&mut dev, &prog);
    let mut src = ConstantCurrent::new(0.0);
    dev.set_v_cap(2.45);
    let mut saw_brownout = false;
    while dev.now() < SimTime::from_ms(500) {
        let step = dev.step(&mut src, 0.0);
        if step.power_edge == Some(edb_suite::energy::PowerEdge::BrownOut) {
            saw_brownout = true;
            for addr in (edb_suite::mcu::SRAM_START..edb_suite::mcu::SRAM_END).step_by(37) {
                assert_eq!(dev.mem().peek_byte(addr), 0, "SRAM byte at {addr:#06x}");
            }
            break;
        }
    }
    assert!(saw_brownout, "an unpowered device must brown out");
    // The same soup must also satisfy the physics-sane invariant.
    let mut dev = Device::new(DeviceConfig::wisp5());
    load_program(&mut dev, &prog);
    let mut src = edb_suite::energy::Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 7);
    while dev.now() < SimTime::from_ms(100) {
        let step = dev.step(&mut src, 0.0);
        assert!(dev.v_cap() >= 0.0 && dev.v_cap() <= 5.5);
        assert!(step.elapsed.as_ns() > 0, "time must advance");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No instruction soup can drive the capacitor voltage outside its
    /// physical bounds or wedge the simulation.
    #[test]
    fn arbitrary_programs_keep_physics_sane(prog in arb_program(), seed in 0u64..1000) {
        let mut dev = Device::new(DeviceConfig::wisp5());
        load_program(&mut dev, &prog);
        let mut src = edb_suite::energy::Fading::new(
            TheveninSource::new(3.2, 1500.0), 0.05, seed);
        let mut steps = 0u64;
        while dev.now() < SimTime::from_ms(100) {
            let step = dev.step(&mut src, 0.0);
            prop_assert!(dev.v_cap() >= 0.0);
            prop_assert!(dev.v_cap() <= 5.5);
            prop_assert!(step.elapsed.as_ns() > 0, "time must advance");
            steps += 1;
        }
        prop_assert!(steps > 1000);
    }

    /// Power cycling an arbitrary program never resurrects volatile
    /// state: after every brown-out, SRAM reads zero.
    #[test]
    fn brownout_always_clears_sram(prog in arb_program()) {
        let mut dev = Device::new(DeviceConfig::wisp5());
        load_program(&mut dev, &prog);
        let mut src = ConstantCurrent::new(0.0);
        dev.set_v_cap(2.45);
        let mut saw_brownout = false;
        // Generous window: instruction soup can corrupt itself into a
        // `halt`, where only the 0.1 mA idle draw discharges the store
        // (~300 ms from 2.45 V to the 1.8 V brown-out).
        while dev.now() < SimTime::from_ms(500) {
            let step = dev.step(&mut src, 0.0);
            if step.power_edge == Some(edb_suite::energy::PowerEdge::BrownOut) {
                saw_brownout = true;
                for addr in (edb_suite::mcu::SRAM_START..edb_suite::mcu::SRAM_END).step_by(37) {
                    prop_assert_eq!(dev.mem().peek_byte(addr), 0);
                }
                break;
            }
        }
        prop_assert!(saw_brownout, "an unpowered device must brown out");
    }

    /// The instruction-level energy accounting is conservative: running
    /// N instructions at current I from a charged capacitor discharges
    /// it by exactly the integral (no hidden sinks or sources).
    #[test]
    fn energy_accounting_matches_closed_form(n_steps in 100u32..5000) {
        let mut dev = Device::new(DeviceConfig::wisp5());
        // One-cycle instructions only: a pure `add` loop.
        load_program(
            &mut dev,
            &[Instr::Alu { op: AluOp::Add, rd: Reg::new(1), rs: Reg::new(2) }],
        );
        dev.set_v_cap(2.45);
        let mut none = ConstantCurrent::new(0.0);
        let v0 = dev.v_cap();
        let t0 = dev.now();
        for _ in 0..n_steps {
            if !dev.powered() {
                break;
            }
            dev.step(&mut none, 0.0);
        }
        let dt = dev.now().since(t0).as_secs_f64();
        let i_total = DeviceConfig::wisp5().i_active + 1e-6; // + LDO quiescent
        let expected_drop = i_total * dt / 47e-6;
        let actual_drop = v0 - dev.v_cap();
        prop_assert!(
            (actual_drop - expected_drop).abs() < 1e-6,
            "drop {actual_drop} vs integral {expected_drop}"
        );
    }

    /// The memory bus honours the volatile/non-volatile split for
    /// arbitrary addresses (oracle-style double-check of `Memory`).
    #[test]
    fn memory_split_oracle(addr in any::<u16>(), value in any::<u16>()) {
        let mut mem = Memory::new();
        mem.write_word(addr, value);
        let before = mem.peek_word(addr);
        mem.power_cycle();
        let after = mem.peek_word(addr);
        let in_sram = Memory::is_sram(addr) || Memory::is_sram(addr.wrapping_add(1));
        let mapped = Memory::is_mapped(addr) && Memory::is_mapped(addr.wrapping_add(1));
        if !mapped {
            // Unmapped (fully or partially): at least one byte floats.
            prop_assert!(after == before || after != value || !mapped);
        } else if in_sram {
            prop_assert_eq!(after & 0x00FF, if Memory::is_sram(addr) { 0 } else { after & 0xFF });
        } else {
            prop_assert_eq!(after, before, "FRAM must survive power cycles");
        }
    }
}
