//! The serializable JSON report the `edb-analyze` CLI emits and the
//! bench/serve layers consume.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::advisory::CkptAdvice;
use crate::cfg::Cfg;
use crate::cost::CostModel;
use crate::wcec::{CapacitorSpec, EnergyVerdict, Wcec};

/// One basic block in the report.
#[derive(Debug, Clone, Serialize)]
pub struct BlockReport {
    /// Start address.
    pub start: u16,
    /// Exclusive end address.
    pub end: u16,
    /// Instruction count.
    pub instrs: usize,
    /// Static cycle cost of one pass through the block.
    pub cycles: u64,
    /// Worst-case charge of one pass, coulombs.
    pub charge: f64,
    /// Exit kind, as a short string.
    pub exit: String,
}

/// One unresolved computed branch.
#[derive(Debug, Clone, Serialize)]
pub struct UnresolvedReport {
    /// Address of the transfer.
    pub at: u16,
    /// `"jmpr"` or `"callr"`.
    pub mnemonic: String,
    /// Base register index.
    pub reg: u8,
}

/// One worst-path step.
#[derive(Debug, Clone, Serialize)]
pub struct PathReport {
    /// Block start address.
    pub block: u16,
    /// Iterations on the worst path.
    pub iterations: u64,
}

/// Per-function summary in the report.
#[derive(Debug, Clone, Serialize)]
pub struct FunctionReport {
    /// Entry address.
    pub entry: u16,
    /// Block count.
    pub blocks: usize,
    /// WCEC in cycles, when bounded.
    pub wcec_cycles: Option<u64>,
    /// WCEC as charge, coulombs, when bounded.
    pub wcec_charge: Option<f64>,
    /// Why the function is unbounded, when it is.
    pub unbounded_reason: Option<String>,
    /// Inferred loop bounds (`header`, `bound`).
    pub loop_bounds: Vec<(u16, u64)>,
    /// The worst path.
    pub worst_path: Vec<PathReport>,
}

/// The full analysis report for one firmware image.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// What was analyzed (file name or symbol).
    pub target: String,
    /// Program entry address.
    pub entry: u16,
    /// Discovered instruction count.
    pub instructions: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Unresolved computed branches.
    pub unresolved: Vec<UnresolvedReport>,
    /// True when discovery gave up (code too large).
    pub truncated: bool,
    /// Regressed cost model parameters.
    pub cost_secs_per_cycle: f64,
    /// Regressed effective active current, amps.
    pub cost_i_active: f64,
    /// Worst relative residual of the calibration fit.
    pub cost_residual: f64,
    /// Capacitor spec the verdict was computed against.
    pub capacitance: f64,
    /// Turn-on threshold, volts.
    pub v_on: f64,
    /// Brown-out threshold, volts.
    pub v_off: f64,
    /// Starting voltage the verdict assumes.
    pub v_start: f64,
    /// Whole-program WCEC in cycles, when bounded.
    pub wcec_cycles: Option<u64>,
    /// Whole-program worst-case charge, coulombs.
    pub wcec_charge: Option<f64>,
    /// Whole-program worst-case energy from `v_start`, joules.
    pub wcec_energy: Option<f64>,
    /// Predicted capacitor voltage after the worst path, zero harvest.
    pub v_end_worst: Option<f64>,
    /// Whether the worst path completes on the charge at `v_start`.
    pub completes_on_one_charge: Option<bool>,
    /// Full charge cycles needed to retire the worst path.
    pub charge_cycles: Option<u64>,
    /// Why the program is unbounded, when it is.
    pub unbounded_reason: Option<String>,
    /// The offending worst path (non-empty when bounded; the path that
    /// violates the one-charge budget when `completes_on_one_charge`
    /// is false).
    pub offending_path: Vec<PathReport>,
    /// Per-block costs.
    pub block_table: Vec<BlockReport>,
    /// Per-function summaries keyed by formatted entry address.
    pub functions: BTreeMap<String, FunctionReport>,
    /// Checkpoint-placement advisory.
    pub ckpt_advice: CkptAdvice,
}

/// Assembles the full report from the analysis pieces.
pub fn build_report(
    target: &str,
    cfg: &Cfg,
    wcec: &Wcec,
    model: &CostModel,
    cap: &CapacitorSpec,
    verdict: &EnergyVerdict,
    advice: CkptAdvice,
) -> AnalysisReport {
    let block_table = cfg
        .blocks
        .values()
        .map(|b| {
            let cycles: u64 = b
                .instrs
                .iter()
                .map(|ci| u64::from(crate::cost::instr_cycles(&ci.instr)))
                .sum();
            BlockReport {
                start: b.start,
                end: b.end(),
                instrs: b.instrs.len(),
                cycles,
                charge: model.charge_for_cycles(cycles),
                exit: exit_name(&b.exit),
            }
        })
        .collect();
    let functions = wcec
        .functions
        .iter()
        .map(|(entry, f)| {
            (
                format!("{entry:#06x}"),
                FunctionReport {
                    entry: *entry,
                    blocks: f.block_count,
                    wcec_cycles: f.cycles,
                    wcec_charge: f.cycles.map(|c| model.charge_for_cycles(c)),
                    unbounded_reason: f.unbounded_reason.clone(),
                    loop_bounds: f
                        .loops
                        .iter()
                        .filter_map(|l| l.bound.map(|b| (l.header, b)))
                        .collect(),
                    worst_path: f
                        .worst_path
                        .iter()
                        .map(|s| PathReport {
                            block: s.block,
                            iterations: s.iterations,
                        })
                        .collect(),
                },
            )
        })
        .collect();
    let program = wcec.program();
    AnalysisReport {
        target: target.to_string(),
        entry: cfg.entry,
        instructions: cfg.instr_count(),
        blocks: cfg.blocks.len(),
        unresolved: cfg
            .unresolved
            .iter()
            .map(|u| UnresolvedReport {
                at: u.at,
                mnemonic: u.mnemonic.to_string(),
                reg: u.reg,
            })
            .collect(),
        truncated: cfg.truncated,
        cost_secs_per_cycle: model.secs_per_cycle,
        cost_i_active: model.i_active,
        cost_residual: model.residual,
        capacitance: cap.capacitance,
        v_on: cap.v_on,
        v_off: cap.v_off,
        v_start: verdict.v_start,
        wcec_cycles: verdict.wcec_cycles,
        wcec_charge: verdict.charge,
        wcec_energy: verdict.energy,
        v_end_worst: verdict.v_end_worst,
        completes_on_one_charge: verdict.completes_on_one_charge,
        charge_cycles: verdict.charge_cycles,
        unbounded_reason: program.unbounded_reason.clone(),
        offending_path: program
            .worst_path
            .iter()
            .map(|s| PathReport {
                block: s.block,
                iterations: s.iterations,
            })
            .collect(),
        block_table,
        functions,
        ckpt_advice: advice,
    }
}

fn exit_name(exit: &crate::cfg::Exit) -> String {
    use crate::cfg::Exit::*;
    match exit {
        Fall { .. } => "fall".into(),
        Jump { .. } => "jump".into(),
        Branch { .. } => "branch".into(),
        Call { .. } => "call".into(),
        CallIndirect {
            callee: Some(_), ..
        } => "callr(resolved)".into(),
        CallIndirect { callee: None, .. } => "callr(unresolved)".into(),
        JumpIndirect { target: Some(_) } => "jmpr(resolved)".into(),
        JumpIndirect { target: None } => "jmpr(unresolved)".into(),
        Return => "return".into(),
        Halt => "halt".into(),
        Trap { .. } => "trap".into(),
    }
}
