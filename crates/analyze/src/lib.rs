//! `edb-analyze`: energy-aware static analysis of intermittent IVM-16
//! firmware.
//!
//! The EDB paper debugs intermittent programs *dynamically* without
//! perturbing their energy state; this crate is the complementary
//! *static* half (in the spirit of ETAP): it recovers a control-flow
//! graph from the binary ([`mod@cfg`]), attaches a per-instruction
//! energy/cycle cost model regressed from the simulator's own energy
//! accounting ([`cost`]), runs an interval-based worst-case energy
//! consumption (WCEC) dataflow over the CFG ([`wcec`]), and turns the
//! result into charge-cycle counts, "cannot complete on one charge"
//! diagnostics with the offending path, and a checkpoint-placement
//! advisory ([`advisory`]) the `edb_runtime::ckpt` zoo can consume.
//!
//! The load-bearing correctness property is *soundness against the
//! simulator*: no simulated execution, under any harvest trace, may
//! exceed a claimed WCEC bound or take a CFG edge the analyzer missed.
//! That property is fuzzed at fleet scale by `fuzz_smoke --analyze`
//! and proptested in `crates/fuzz/tests/cfg_walk.rs`.

pub mod advisory;
pub mod cfg;
pub mod cost;
pub mod report;
pub mod wcec;

pub use advisory::{advise, CkptAdvice};
pub use cfg::{Block, Cfg, CodeInstr, Exit, StepVerdict, UnresolvedEdge};
pub use cost::{instr_cycles, CostModel};
pub use report::{build_report, AnalysisReport};
pub use wcec::{compute, energy_verdict, CapacitorSpec, EnergyVerdict, FnWcec, Wcec};

use edb_device::DeviceConfig;
use edb_mcu::{Image, Memory};

/// Default reserve fraction for the checkpoint advisory.
pub const DEFAULT_CKPT_MARGIN: f64 = 0.25;

/// One-call analysis of a firmware image: CFG + cost model + WCEC +
/// energy verdict + checkpoint advice, bundled as the CLI report.
pub fn analyze_image(
    target: &str,
    image: &Image,
    config: &DeviceConfig,
    v_start: f64,
) -> AnalysisReport {
    let cfg = Cfg::from_image(image);
    finish(target, cfg, config, v_start)
}

/// Like [`analyze_image`], but over live memory from an explicit entry
/// (the serve/session path: "will this function finish from here?").
pub fn analyze_memory(
    target: &str,
    mem: &Memory,
    entry: u16,
    config: &DeviceConfig,
    v_start: f64,
) -> AnalysisReport {
    let cfg = Cfg::from_memory_at(mem, entry);
    finish(target, cfg, config, v_start)
}

fn finish(target: &str, cfg: Cfg, config: &DeviceConfig, v_start: f64) -> AnalysisReport {
    let model = CostModel::calibrate(config);
    let cap = CapacitorSpec::from_device(config);
    let wcec = wcec::compute(&cfg);
    let verdict = energy_verdict(wcec.program().cycles, &model, &cap, v_start);
    let advice = advise(&cfg, &wcec, &model, &cap, DEFAULT_CKPT_MARGIN);
    build_report(target, &cfg, &wcec, &model, &cap, &verdict, advice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_report_over_a_bounded_program() {
        let image = edb_mcu::asm::assemble(
            ".org 0x4400\nstart:\n    movi r10, 0\nbody:\n    nop\n    add r10, 1\n    cmpi r10, 8\n    jne body\n    halt\n.org 0xFFFE\n.word start\n",
        )
        .expect("assemble");
        let config = DeviceConfig::wisp5();
        let report = analyze_image("unit", &image, &config, 3.0);
        assert_eq!(report.wcec_cycles, Some(2 + 8 * 7 + 1));
        assert_eq!(report.completes_on_one_charge, Some(true));
        assert!(report.unresolved.is_empty());
        assert!(!report.offending_path.is_empty());
        // The report serializes.
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("wcec_cycles"));
    }

    #[test]
    fn infinite_app_loops_are_reported_unbounded_not_wrong() {
        let image = edb_apps::fib::image(edb_apps::fib::Variant::Release);
        let config = DeviceConfig::wisp5();
        let report = analyze_image("fib", &image, &config, 3.0);
        // Real apps spin forever on purpose; the honest answer is an
        // unbounded verdict with a reason, never a fabricated bound.
        assert!(report.wcec_cycles.is_none());
        assert!(report.unbounded_reason.is_some());
        assert!(report.blocks > 0);
    }
}
