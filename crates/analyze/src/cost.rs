//! Per-instruction energy/cycle cost model, calibrated by regression
//! against the simulator's own energy accounting.
//!
//! The cycle table is the analyzer's own copy (audited against
//! `edb_mcu::Instr::cycles` by an exhaustive test over every decodable
//! first word, so it can never silently default). The electrical half —
//! effective active current and the cycle period — is *not* copied from
//! `DeviceConfig`: it is recovered by least-squares regression from
//! tethered simulator runs of calibration microbenchmarks, so the model
//! automatically absorbs constant board overheads (LDO quiescent
//! current, always-on peripherals) that the config spreads across
//! several fields.

use edb_device::{Device, DeviceConfig};
use edb_energy::ConstantCurrent;
use edb_mcu::asm::assemble;
use edb_mcu::{AluOp, Instr};

/// Cycle cost of one instruction, from the analyzer's own table.
///
/// Mirrors the IVM-16 timing contract; the exhaustive completeness test
/// in this module proves the mirror exact for every decodable opcode.
pub fn instr_cycles(instr: &Instr) -> u32 {
    match *instr {
        Instr::Nop | Instr::Halt | Instr::Ei | Instr::Di => 1,
        Instr::Mov { .. } => 1,
        Instr::Movi { .. } => 2,
        Instr::Ld { .. } | Instr::St { .. } | Instr::Ldb { .. } | Instr::Stb { .. } => 3,
        Instr::Alu { op: AluOp::Mul, .. } => 8,
        Instr::Alu { .. } => 1,
        Instr::Alui { op: AluOp::Mul, .. } => 9,
        Instr::Alui { .. } => 2,
        Instr::Cmp { .. } => 1,
        Instr::Cmpi { .. } => 2,
        Instr::J { .. } => 2,
        Instr::Call { .. } => 4,
        Instr::Callr { .. } | Instr::Jmpr { .. } => 3,
        Instr::Ret => 3,
        Instr::Reti => 5,
        Instr::Push { .. } => 3,
        Instr::Pop { .. } => 2,
        Instr::In { .. } | Instr::Out { .. } => 2,
    }
}

/// The worst cycle count any single instruction can cost (used by the
/// checkpoint advisory to bound per-instruction charge).
pub fn max_instr_cycles() -> u32 {
    9
}

/// One calibration sample: a microbenchmark's statically counted cycles
/// against the simulator's measured wall time and capacitor charge.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationSample {
    /// Statically counted cycles (from the cost table, over the
    /// retired instruction stream).
    pub cycles: u64,
    /// Simulated execution time, seconds.
    pub secs: f64,
    /// Charge drawn from the capacitor, coulombs.
    pub charge: f64,
}

/// The regressed electrical cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Seconds per CPU cycle (regressed).
    pub secs_per_cycle: f64,
    /// Effective active-mode current draw, amps (regressed; includes
    /// every constant load the device presents while executing).
    pub i_active: f64,
    /// Worst relative residual of the fit across calibration programs.
    pub residual: f64,
    /// The raw samples the fit was made from.
    pub samples: Vec<CalibrationSample>,
}

impl CostModel {
    /// Calibrates a model for `config` by running straight-line
    /// microbenchmarks on a tethered, harvest-free device and fitting
    /// `time = secs_per_cycle · cycles` and `charge = i_active · time`
    /// by least squares through the origin.
    pub fn calibrate(config: &DeviceConfig) -> CostModel {
        let samples: Vec<CalibrationSample> = calibration_programs()
            .iter()
            .filter_map(|src| run_sample(config, src))
            .collect();
        assert!(
            !samples.is_empty(),
            "calibration microbenchmarks failed to execute"
        );
        // Least squares through the origin: minimize Σ(y − kx)².
        let secs_per_cycle = {
            let num: f64 = samples.iter().map(|s| s.secs * s.cycles as f64).sum();
            let den: f64 = samples.iter().map(|s| (s.cycles as f64).powi(2)).sum();
            num / den
        };
        let i_active = {
            let num: f64 = samples.iter().map(|s| s.charge * s.secs).sum();
            let den: f64 = samples.iter().map(|s| s.secs * s.secs).sum();
            num / den
        };
        let residual = samples
            .iter()
            .map(|s| {
                let t_hat = secs_per_cycle * s.cycles as f64;
                let q_hat = i_active * s.secs;
                let rt = ((s.secs - t_hat) / s.secs).abs();
                let rq = ((s.charge - q_hat) / s.charge).abs();
                rt.max(rq)
            })
            .fold(0.0f64, f64::max);
        CostModel {
            secs_per_cycle,
            i_active,
            residual,
            samples,
        }
    }

    /// A model calibrated for the WISP5 reference configuration.
    pub fn wisp5() -> CostModel {
        CostModel::calibrate(&DeviceConfig::wisp5())
    }

    /// Charge drawn over `cycles` CPU cycles, coulombs.
    pub fn charge_for_cycles(&self, cycles: u64) -> f64 {
        self.i_active * self.secs_for_cycles(cycles)
    }

    /// Wall time for `cycles` CPU cycles, seconds.
    pub fn secs_for_cycles(&self, cycles: u64) -> f64 {
        self.secs_per_cycle * cycles as f64
    }

    /// Charge drawn by a single instruction, coulombs.
    pub fn instr_charge(&self, instr: &Instr) -> f64 {
        self.charge_for_cycles(u64::from(instr_cycles(instr)))
    }
}

/// Straight-line calibration microbenchmarks with deliberately
/// different instruction mixes, so a wrong cycle-table entry shows up
/// as a nonzero fit residual instead of cancelling out.
fn calibration_programs() -> Vec<String> {
    let mut progs = Vec::new();
    // Mix 1: NOP sled.
    let mut a = String::from(".org 0x4400\nstart:\n");
    for _ in 0..48 {
        a.push_str("    nop\n");
    }
    a.push_str("    halt\n.org 0xFFFE\n.word start\n");
    progs.push(a);
    // Mix 2: immediate ALU soup.
    let mut b = String::from(".org 0x4400\nstart:\n");
    for i in 0..24 {
        b.push_str(&format!("    movi r{}, {}\n", i % 6, i + 1));
        b.push_str(&format!("    add r{}, 3\n", i % 6));
        b.push_str(&format!("    xor r{}, r{}\n", i % 6, (i + 1) % 6));
    }
    b.push_str("    halt\n.org 0xFFFE\n.word start\n");
    progs.push(b);
    // Mix 3: SRAM load/store traffic.
    let mut c = String::from(".org 0x4400\nstart:\n    movi r1, 0x1C40\n");
    for i in 0..20 {
        c.push_str(&format!("    st [r1+{}], r0\n", (i % 8) * 2));
        c.push_str(&format!("    ld r2, [r1+{}]\n", (i % 8) * 2));
    }
    c.push_str("    halt\n.org 0xFFFE\n.word start\n");
    progs.push(c);
    // Mix 4: multiplier-heavy (stresses the widest cycle entry).
    let mut d = String::from(".org 0x4400\nstart:\n    movi r3, 7\n    movi r4, 11\n");
    for _ in 0..16 {
        d.push_str("    mul r3, r4\n");
        d.push_str("    mul r4, 3\n");
    }
    d.push_str("    halt\n.org 0xFFFE\n.word start\n");
    progs.push(d);
    progs
}

/// Runs one microbenchmark on a tethered (zero-harvest) device and
/// measures ground truth: time between the first and last retired
/// instruction, and charge as `C·Δv` on the capacitor — bookkeeping
/// the simulator maintains independently of any cost table.
fn run_sample(config: &DeviceConfig, src: &str) -> Option<CalibrationSample> {
    let image = assemble(src).ok()?;
    let mut dev = Device::new(*config);
    dev.flash(&image);
    dev.set_v_cap(3.0);
    // Zero harvest: every coulomb that leaves the capacitor is load.
    let mut harvester = ConstantCurrent::new(0.0);
    let mut cycles: u64 = 0;
    let mut baseline: Option<(f64, f64)> = None; // (v, t_secs) before first retire
    for _ in 0..200_000 {
        let v_before = dev.v_cap();
        let t_before = dev.now().as_ns() as f64 * 1e-9;
        let step = dev.step(&mut harvester, 0.0);
        if let Some(instr) = step.retired {
            if baseline.is_none() {
                baseline = Some((v_before, t_before));
            }
            if matches!(instr, Instr::Halt) {
                // End the window *before* the halt step: the simulator
                // integrates a retiring instruction at the CPU state it
                // leaves behind, so the halt cycle draws halted current.
                // Excluding it keeps every measured cycle at the active
                // current the model regresses (and makes the analyzer's
                // full-current accounting of `halt` a sound
                // over-approximation).
                let (v0, t0) = baseline?;
                return Some(CalibrationSample {
                    cycles,
                    secs: t_before - t0,
                    charge: config.capacitance * (v0 - v_before),
                });
            }
            cycles += u64::from(instr_cycles(&instr));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite audit: every decodable opcode has a cost entry, and
    /// the analyzer's table agrees with the ISA's own timing for every
    /// decodable first word (two-word instructions probed with a fixed
    /// second word — the immediate never changes timing).
    #[test]
    fn cost_table_is_complete_and_exact_for_every_decodable_word() {
        let mut decodable = 0u32;
        for w0 in 0..=u16::MAX {
            if let Ok((instr, _)) = Instr::decode(w0, Some(0x1234)) {
                decodable += 1;
                let ours = instr_cycles(&instr);
                let isa = instr.cycles();
                assert_eq!(
                    ours, isa,
                    "cost table disagrees with ISA timing for {instr:?} (word {w0:#06x})"
                );
                assert!(ours >= 1, "zero-cost instruction {instr:?}");
                assert!(
                    ours <= max_instr_cycles(),
                    "cycle bound too small for {instr:?}"
                );
            }
        }
        assert!(decodable > 0, "decoder rejected every word");
    }

    #[test]
    fn calibration_fit_is_tight() {
        let model = CostModel::wisp5();
        assert!(model.samples.len() >= 4, "lost calibration samples");
        // The simulator is an exact linear system, so the fit should be
        // tight to float precision; 1e-6 catches any modeling drift.
        assert!(
            model.residual < 1e-6,
            "calibration residual too large: {}",
            model.residual
        );
        // Sanity: the regressed values should be near the WISP5 config
        // (4 MHz clock, ~2.2 mA active + small constant overheads).
        assert!((model.secs_per_cycle - 250e-9).abs() / 250e-9 < 0.01);
        assert!(model.i_active > 1.5e-3 && model.i_active < 4.0e-3);
    }
}
