//! Control-flow graph recovery over decoded IVM-16 machine code.
//!
//! The CFG is built directly from the binary (not from assembler
//! metadata): a worklist decoder walks every discoverable instruction
//! starting at the entry point(s), splits the instruction stream into
//! basic blocks at branch targets, and records a typed exit per block.
//! Register-indirect jumps and calls (`jmpr`/`callr`) are resolved only
//! when an in-block constant propagation proves the base register holds
//! a single `movi` immediate on every path through the block; anything
//! else is reported as an explicit [`UnresolvedEdge`] rather than
//! silently dropped. Overlapping decodes (a branch into the middle of a
//! two-word instruction) are legal and produce overlapping blocks.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use edb_mcu::{Cond, Image, Instr, Memory, Reg, FRAM_START, IRQ_VECTOR, RESET_VECTOR};

/// Upper bound on discovered instructions; exceeding it marks the CFG
/// truncated (and any analysis over it unbounded) instead of looping
/// forever on pathological images.
const MAX_INSTRS: usize = 65_536;

/// Where the analyzer reads code words from.
///
/// Returning `None` means "this address is not known code": decoding
/// stops there with a [`Exit::Trap`] instead of inventing instructions
/// out of zero-filled memory.
pub trait CodeSource {
    /// The byte at `addr`, if it lies inside known code.
    fn byte(&self, addr: u16) -> Option<u8>;

    /// The little-endian word at `addr`, if both bytes are known code.
    fn word(&self, addr: u16) -> Option<u16> {
        let lo = self.byte(addr)?;
        let hi = self.byte(addr.checked_add(1)?)?;
        Some(u16::from_le_bytes([lo, hi]))
    }
}

/// A [`CodeSource`] over the segments of an [`Image`].
pub struct ImageCode<'a> {
    image: &'a Image,
}

impl<'a> ImageCode<'a> {
    /// Wraps an image.
    pub fn new(image: &'a Image) -> Self {
        ImageCode { image }
    }

    /// The program entry: the reset vector if the image defines one,
    /// else the lowest segment address.
    pub fn entry(&self) -> Option<u16> {
        if let Some(target) = self.word(RESET_VECTOR) {
            if self.byte(target).is_some() {
                return Some(target);
            }
        }
        self.image.segments().iter().map(|(addr, _)| *addr).min()
    }

    /// The IRQ vector target, when the image maps one into code.
    pub fn irq_entry(&self) -> Option<u16> {
        let target = self.word(IRQ_VECTOR)?;
        if self.byte(target).is_some() {
            Some(target)
        } else {
            None
        }
    }
}

impl CodeSource for ImageCode<'_> {
    fn byte(&self, addr: u16) -> Option<u8> {
        for (base, bytes) in self.image.segments() {
            let off = addr.wrapping_sub(*base) as usize;
            if addr >= *base && off < bytes.len() {
                return Some(bytes[off]);
            }
        }
        None
    }
}

/// A [`CodeSource`] over live simulated memory: the FRAM code region
/// plus the vector words. Used by the serve/session wiring to analyze
/// whatever is currently flashed.
pub struct MemoryCode<'a> {
    mem: &'a Memory,
}

impl<'a> MemoryCode<'a> {
    /// Wraps a memory.
    pub fn new(mem: &'a Memory) -> Self {
        MemoryCode { mem }
    }
}

impl CodeSource for MemoryCode<'_> {
    fn byte(&self, addr: u16) -> Option<u8> {
        // FRAM runs from FRAM_START to the top of the address space,
        // which also covers both vector words.
        if addr >= FRAM_START {
            Some(self.mem.peek_byte(addr))
        } else {
            None
        }
    }
}

/// A decoded instruction pinned to its address.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeInstr {
    /// Byte address of the first word.
    pub addr: u16,
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded size in bytes (2 or 4).
    pub size: u16,
}

impl CodeInstr {
    /// Address of the next sequential instruction.
    pub fn next(&self) -> u16 {
        self.addr.wrapping_add(self.size)
    }
}

/// Why a basic block ends, with its static successors.
#[derive(Debug, Clone, PartialEq)]
pub enum Exit {
    /// Straight-line fall into the block starting at `next`.
    Fall {
        /// Successor block address.
        next: u16,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: u16,
    },
    /// Conditional branch.
    Branch {
        /// Target when the condition holds.
        taken: u16,
        /// Fall-through when it does not.
        fall: u16,
    },
    /// Direct call; control resumes at `ret_to` after the callee returns.
    Call {
        /// Callee entry address.
        callee: u16,
        /// Return address.
        ret_to: u16,
    },
    /// Register-indirect call (`callr`); `callee` is `Some` only when
    /// in-block constant propagation proved the target.
    CallIndirect {
        /// Resolved callee, if provable.
        callee: Option<u16>,
        /// Return address.
        ret_to: u16,
    },
    /// Register-indirect jump (`jmpr`); `target` is `Some` only when
    /// in-block constant propagation proved the target.
    JumpIndirect {
        /// Resolved target, if provable.
        target: Option<u16>,
    },
    /// `ret`/`reti`: the successor is the dynamic return address.
    Return,
    /// `halt`: execution stops.
    Halt,
    /// Decoding failed or control left known code; execution faults or
    /// leaves the analyzable region here.
    Trap {
        /// Human-readable reason.
        why: String,
    },
}

/// A basic block: a maximal straight-line run of instructions with a
/// single typed exit.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u16,
    /// The instructions, in address order.
    pub instrs: Vec<CodeInstr>,
    /// How control leaves.
    pub exit: Exit,
}

impl Block {
    /// Exclusive end address (first byte past the last instruction).
    pub fn end(&self) -> u16 {
        self.instrs
            .last()
            .map(CodeInstr::next)
            .unwrap_or(self.start)
    }

    /// Address of the terminating instruction.
    pub fn exit_addr(&self) -> u16 {
        self.instrs.last().map(|i| i.addr).unwrap_or(self.start)
    }

    /// Static intra-procedural successor block addresses. Call exits
    /// contribute only the return continuation (the callee is an
    /// inter-procedural edge); unresolved indirects contribute nothing
    /// (they are tracked separately as [`UnresolvedEdge`]s).
    pub fn intra_succs(&self) -> Vec<u16> {
        match &self.exit {
            Exit::Fall { next } => vec![*next],
            Exit::Jump { target } => vec![*target],
            Exit::Branch { taken, fall } => vec![*taken, *fall],
            Exit::Call { ret_to, .. } | Exit::CallIndirect { ret_to, .. } => vec![*ret_to],
            Exit::JumpIndirect { target } => target.iter().copied().collect(),
            Exit::Return | Exit::Halt | Exit::Trap { .. } => Vec::new(),
        }
    }
}

/// A computed branch the analyzer could not resolve statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedEdge {
    /// Address of the `jmpr`/`callr` instruction.
    pub at: u16,
    /// `"jmpr"` or `"callr"`.
    pub mnemonic: &'static str,
    /// Index of the base register.
    pub reg: u8,
}

/// Verdict of [`Cfg::allows_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict {
    /// The transition follows a statically known edge.
    Allowed,
    /// The analyzer cannot judge this transition (unresolved indirect,
    /// dynamic return, or code it never discovered).
    Unknown,
    /// The transition contradicts the static CFG: the analyzer claimed
    /// to know this instruction's successors and the execution took a
    /// different one.
    Violation,
}

/// A recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Primary entry address.
    pub entry: u16,
    /// Every entry the walk started from (entry + IRQ vector + extras).
    pub entries: Vec<u16>,
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u16, Block>,
    /// Computed branches that could not be resolved.
    pub unresolved: Vec<UnresolvedEdge>,
    /// True when discovery hit the instruction budget (`MAX_INSTRS`) and gave up; any bound
    /// computed over a truncated CFG would be meaningless.
    pub truncated: bool,
    /// Every decoded instruction, keyed by address.
    instr_at: BTreeMap<u16, CodeInstr>,
    /// Resolved indirect targets keyed by the address of the
    /// terminating `jmpr`/`callr`.
    resolved_indirect: BTreeMap<u16, BTreeSet<u16>>,
    /// Addresses of `jmpr`/`callr` instructions left unresolved.
    unresolved_at: BTreeSet<u16>,
}

impl Cfg {
    /// Builds the CFG of an [`Image`], starting from its reset vector
    /// (plus the IRQ vector when mapped).
    pub fn from_image(image: &Image) -> Cfg {
        let code = ImageCode::new(image);
        let entry = code.entry().unwrap_or(FRAM_START);
        let mut entries = vec![entry];
        if let Some(irq) = code.irq_entry() {
            if irq != entry {
                entries.push(irq);
            }
        }
        Cfg::build(&code, &entries)
    }

    /// Builds the CFG of an image from an explicit entry address
    /// (e.g. a function symbol), ignoring the vectors.
    pub fn from_image_at(image: &Image, entry: u16) -> Cfg {
        Cfg::build(&ImageCode::new(image), &[entry])
    }

    /// Builds the CFG of live simulated memory from an explicit entry.
    pub fn from_memory_at(mem: &Memory, entry: u16) -> Cfg {
        Cfg::build(&MemoryCode::new(mem), &[entry])
    }

    /// Builds a CFG over `code`, exploring from `entries`.
    pub fn build(code: &dyn CodeSource, entries: &[u16]) -> Cfg {
        let mut instr_at: BTreeMap<u16, CodeInstr> = BTreeMap::new();
        let mut leaders: BTreeSet<u16> = entries.iter().copied().collect();
        let mut work: VecDeque<u16> = entries.iter().copied().collect();
        let mut seen_runs: BTreeSet<u16> = BTreeSet::new();
        let mut truncated = false;
        let mut resolved_indirect: BTreeMap<u16, BTreeSet<u16>> = BTreeMap::new();

        // Pass 1: alternate worklist decoding with indirect-transfer
        // resolution until neither makes progress. A `jmpr`/`callr`
        // target is provable only when the linearly preceding
        // instructions, back to the nearest leader, contain a `movi`
        // into the base register with no later write to it — i.e. every
        // entry into the straight-line run reaching the indirect passes
        // the movi. Resolution must see the *final* leader set to be
        // sound (a late-discovered branch into that run would admit
        // paths that skip the movi), so every round recomputes all
        // resolutions from scratch; and a resolved target can open new
        // code containing further indirects (chained movi+jmpr pairs),
        // so decoding must resume after resolution. Both inputs only
        // grow, which bounds the iteration.
        loop {
            // Decode: each work item starts a linear run that continues
            // through fall-through instructions until a transfer.
            while let Some(start) = work.pop_front() {
                if !seen_runs.insert(start) {
                    continue;
                }
                let mut pc = start;
                loop {
                    if instr_at.contains_key(&pc) {
                        break;
                    }
                    if instr_at.len() >= MAX_INSTRS {
                        truncated = true;
                        break;
                    }
                    let Some(ci) = decode_at(code, pc) else { break };
                    let next = ci.next();
                    let instr = ci.instr;
                    instr_at.insert(pc, ci);
                    match instr {
                        Instr::J { cond, target } => {
                            leaders.insert(target);
                            work.push_back(target);
                            if cond != Cond::Always {
                                leaders.insert(next);
                                work.push_back(next);
                            }
                            break;
                        }
                        Instr::Call { target } => {
                            leaders.insert(target);
                            work.push_back(target);
                            leaders.insert(next);
                            work.push_back(next);
                            break;
                        }
                        Instr::Callr { .. } => {
                            // The return continuation exists even when the
                            // callee is unknown.
                            leaders.insert(next);
                            work.push_back(next);
                            break;
                        }
                        Instr::Jmpr { .. } | Instr::Ret | Instr::Reti | Instr::Halt => break,
                        _ => pc = next,
                    }
                }
            }

            // Resolve: recompute every indirect against the current
            // instruction stream and leader set.
            let mut new_resolved: BTreeMap<u16, BTreeSet<u16>> = BTreeMap::new();
            let indirects: Vec<(u16, Reg)> = instr_at
                .iter()
                .filter_map(|(&addr, ci)| match ci.instr {
                    Instr::Jmpr { rb } | Instr::Callr { rb } => Some((addr, rb)),
                    _ => None,
                })
                .collect();
            for (addr, rb) in indirects {
                if let Some(target) = resolve_backwards(&instr_at, &leaders, addr, rb) {
                    new_resolved.entry(addr).or_default().insert(target);
                }
            }
            let mut changed = new_resolved != resolved_indirect;
            for &target in new_resolved.values().flatten() {
                if leaders.insert(target) {
                    changed = true;
                }
                if !instr_at.contains_key(&target) && !seen_runs.contains(&target) && !truncated {
                    work.push_back(target);
                    changed = true;
                }
            }
            resolved_indirect = new_resolved;
            if !changed && work.is_empty() {
                break;
            }
        }

        let mut unresolved_at: BTreeSet<u16> = BTreeSet::new();
        let mut unresolved = Vec::new();
        for (&addr, ci) in &instr_at {
            let (mnemonic, rb) = match ci.instr {
                Instr::Jmpr { rb } => ("jmpr", rb),
                Instr::Callr { rb } => ("callr", rb),
                _ => continue,
            };
            if !resolved_indirect.contains_key(&addr) {
                unresolved_at.insert(addr);
                unresolved.push(UnresolvedEdge {
                    at: addr,
                    mnemonic,
                    reg: rb.index() as u8,
                });
            }
        }

        // Pass 2: form blocks at every discovered leader.
        let mut blocks = BTreeMap::new();
        for &leader in &leaders {
            if !instr_at.contains_key(&leader) {
                continue;
            }
            let mut instrs = Vec::new();
            let mut pc = leader;
            let exit = loop {
                let Some(ci) = instr_at.get(&pc) else {
                    break Exit::Trap {
                        why: format!("control reaches unknown code at {pc:#06x}"),
                    };
                };
                let next = ci.next();
                let instr = ci.instr;
                instrs.push(ci.clone());
                match instr {
                    Instr::J {
                        cond: Cond::Always,
                        target,
                    } => break Exit::Jump { target },
                    Instr::J { target, .. } => {
                        break Exit::Branch {
                            taken: target,
                            fall: next,
                        }
                    }
                    Instr::Call { target } => {
                        break Exit::Call {
                            callee: target,
                            ret_to: next,
                        }
                    }
                    Instr::Callr { .. } => {
                        break Exit::CallIndirect {
                            callee: resolved_indirect
                                .get(&ci_addr(&instrs))
                                .and_then(|t| t.iter().next().copied()),
                            ret_to: next,
                        }
                    }
                    Instr::Jmpr { .. } => {
                        break Exit::JumpIndirect {
                            target: resolved_indirect
                                .get(&ci_addr(&instrs))
                                .and_then(|t| t.iter().next().copied()),
                        }
                    }
                    Instr::Ret | Instr::Reti => break Exit::Return,
                    Instr::Halt => break Exit::Halt,
                    _ => {
                        if leaders.contains(&next) {
                            break Exit::Fall { next };
                        }
                        pc = next;
                    }
                }
            };
            blocks.insert(
                leader,
                Block {
                    start: leader,
                    instrs,
                    exit,
                },
            );
        }

        Cfg {
            entry: entries.first().copied().unwrap_or(FRAM_START),
            entries: entries.to_vec(),
            blocks,
            unresolved,
            truncated,
            instr_at,
            resolved_indirect,
            unresolved_at,
        }
    }

    /// The decoded instruction at `addr`, if discovery reached it.
    pub fn instr_at(&self, addr: u16) -> Option<&CodeInstr> {
        self.instr_at.get(&addr)
    }

    /// Number of discovered instructions.
    pub fn instr_count(&self) -> usize {
        self.instr_at.len()
    }

    /// All statically known call targets (direct + resolved indirect).
    pub fn call_targets(&self) -> BTreeSet<u16> {
        let mut out = BTreeSet::new();
        for block in self.blocks.values() {
            match &block.exit {
                Exit::Call { callee, .. } => {
                    out.insert(*callee);
                }
                Exit::CallIndirect {
                    callee: Some(callee),
                    ..
                } => {
                    out.insert(*callee);
                }
                _ => {}
            }
        }
        out
    }

    /// Judges one executed transition `from → to` (program counters of
    /// two consecutively retired instructions) against the static CFG.
    ///
    /// This is the soundness primitive behind the CFG-walk property:
    /// real executions must never produce a [`StepVerdict::Violation`].
    pub fn allows_step(&self, from: u16, to: u16) -> StepVerdict {
        let Some(ci) = self.instr_at.get(&from) else {
            // Execution reached code the analyzer never discovered.
            return StepVerdict::Unknown;
        };
        let next = ci.next();
        match ci.instr {
            Instr::J {
                cond: Cond::Always,
                target,
            } => allowed_if(to == target),
            Instr::J { target, .. } => allowed_if(to == target || to == next),
            Instr::Call { target } => allowed_if(to == target),
            Instr::Jmpr { .. } | Instr::Callr { .. } => {
                if self.unresolved_at.contains(&from) {
                    StepVerdict::Unknown
                } else if let Some(targets) = self.resolved_indirect.get(&from) {
                    allowed_if(targets.contains(&to))
                } else {
                    StepVerdict::Unknown
                }
            }
            Instr::Ret | Instr::Reti => StepVerdict::Unknown,
            Instr::Halt => StepVerdict::Unknown,
            _ => allowed_if(to == next),
        }
    }

    /// Predecessor map over intra-procedural edges (including the
    /// callee edge of calls), for loop-idiom verification.
    pub fn predecessors(&self) -> BTreeMap<u16, BTreeSet<u16>> {
        let mut preds: BTreeMap<u16, BTreeSet<u16>> = BTreeMap::new();
        for block in self.blocks.values() {
            for succ in block.intra_succs() {
                preds.entry(succ).or_default().insert(block.start);
            }
        }
        preds
    }

    /// Every address that some decoded control transfer targets
    /// (branch/jump/call/resolved indirect). Fall-throughs excluded.
    pub fn transfer_targets(&self) -> BTreeSet<u16> {
        let mut out = BTreeSet::new();
        for ci in self.instr_at.values() {
            match ci.instr {
                Instr::J { target, .. } | Instr::Call { target } => {
                    out.insert(target);
                }
                _ => {}
            }
        }
        for targets in self.resolved_indirect.values() {
            out.extend(targets.iter().copied());
        }
        out
    }
}

fn ci_addr(instrs: &[CodeInstr]) -> u16 {
    instrs.last().map(|i| i.addr).unwrap_or(0)
}

fn allowed_if(ok: bool) -> StepVerdict {
    if ok {
        StepVerdict::Allowed
    } else {
        StepVerdict::Violation
    }
}

fn decode_at(code: &dyn CodeSource, addr: u16) -> Option<CodeInstr> {
    let w0 = code.word(addr)?;
    let w1 = code.word(addr.wrapping_add(2));
    match Instr::decode(w0, w1) {
        Ok((instr, words)) => Some(CodeInstr {
            addr,
            instr,
            size: u16::from(words) * 2,
        }),
        Err(_) => None,
    }
}

/// Scans linearly backwards from the indirect transfer at `at` looking
/// for `movi rb, imm` with no intervening write to `rb` and no leader
/// between the movi and the transfer (a leader would admit paths that
/// skip the movi).
fn resolve_backwards(
    instr_at: &BTreeMap<u16, CodeInstr>,
    leaders: &BTreeSet<u16>,
    at: u16,
    rb: Reg,
) -> Option<u16> {
    if leaders.contains(&at) {
        // The transfer itself is a branch target: paths can reach it
        // without passing any preceding movi.
        return None;
    }
    let mut cursor = at;
    loop {
        let prev = instr_at
            .range(..cursor)
            .next_back()
            .map(|(_, ci)| ci.clone())?;
        if prev.next() != cursor {
            // Linear predecessor does not abut: unknown gap.
            return None;
        }
        match prev.instr {
            Instr::Movi { rd, imm } if rd == rb => return Some(imm),
            instr => {
                if writes_reg(&instr) == Some(rb) || is_transfer(&instr) {
                    return None;
                }
            }
        }
        if leaders.contains(&prev.addr) {
            // The movi would be in a different block: paths may enter
            // here without establishing the constant.
            return None;
        }
        cursor = prev.addr;
    }
}

/// The register an instruction writes, if any. `push`/`call`-style
/// implicit SP updates are irrelevant here because SP-based indirect
/// transfers are never resolved (a `movi sp, …` kills resolution via
/// the explicit-write rule anyway).
pub fn writes_reg(instr: &Instr) -> Option<Reg> {
    match *instr {
        Instr::Mov { rd, .. }
        | Instr::Movi { rd, .. }
        | Instr::Ld { rd, .. }
        | Instr::Ldb { rd, .. }
        | Instr::Alu { rd, .. }
        | Instr::Alui { rd, .. }
        | Instr::Pop { rd }
        | Instr::In { rd, .. } => Some(rd),
        _ => None,
    }
}

fn is_transfer(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::J { .. }
            | Instr::Call { .. }
            | Instr::Callr { .. }
            | Instr::Jmpr { .. }
            | Instr::Ret
            | Instr::Reti
            | Instr::Halt
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_mcu::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        let image = assemble(src).expect("assemble");
        Cfg::from_image(&image)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r0, 1\n    add r0, 2\n    halt\n.org 0xFFFE\n.word start\n",
        );
        assert_eq!(cfg.blocks.len(), 1);
        let block = &cfg.blocks[&0x4400];
        assert_eq!(block.instrs.len(), 3);
        assert_eq!(block.exit, Exit::Halt);
        assert!(cfg.unresolved.is_empty());
    }

    #[test]
    fn conditional_branch_splits_blocks() {
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r0, 4\nloop:\n    add r0, 0xFFFF\n    cmpi r0, 0\n    jne loop\n    halt\n.org 0xFFFE\n.word start\n",
        );
        // Blocks: start(movi), loop body, halt.
        assert_eq!(cfg.blocks.len(), 3);
        let loop_block = cfg
            .blocks
            .values()
            .find(|b| matches!(b.exit, Exit::Branch { .. }));
        assert!(loop_block.is_some());
    }

    #[test]
    fn call_and_return_are_typed() {
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    call fn\n    halt\nfn:\n    add r1, 1\n    ret\n.org 0xFFFE\n.word start\n",
        );
        let entry = &cfg.blocks[&0x4400];
        match entry.exit {
            Exit::Call { callee, ret_to } => {
                assert_eq!(callee, cfg.blocks[&callee].start);
                assert!(matches!(cfg.blocks[&callee].exit, Exit::Return));
                assert!(matches!(cfg.blocks[&ret_to].exit, Exit::Halt));
            }
            ref other => panic!("expected call exit, got {other:?}"),
        }
    }

    #[test]
    fn movi_jmpr_pair_resolves() {
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r14, done\n    jmpr r14\n    nop\ndone:\n    halt\n.org 0xFFFE\n.word start\n",
        );
        assert!(cfg.unresolved.is_empty());
        let entry = &cfg.blocks[&0x4400];
        match entry.exit {
            Exit::JumpIndirect { target: Some(t) } => {
                assert!(matches!(cfg.blocks[&t].exit, Exit::Halt));
            }
            ref other => panic!("expected resolved jmpr, got {other:?}"),
        }
    }

    #[test]
    fn chained_movi_jmpr_pairs_resolve_to_fixpoint() {
        // The second movi+jmpr pair lives in code only reachable through
        // the first resolved jmpr, so resolution must re-run after the
        // discovery round that the first resolution opened.
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r14, mid\n    jmpr r14\nmid:\n    nop\n    movi r14, done\n    jmpr r14\ndone:\n    halt\n.org 0xFFFE\n.word start\n",
        );
        assert!(cfg.unresolved.is_empty(), "both jmprs must resolve");
        let resolved: Vec<u16> = cfg
            .blocks
            .values()
            .filter_map(|b| match b.exit {
                Exit::JumpIndirect { target: Some(t) } => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(resolved.len(), 2);
        let halt_block = resolved
            .iter()
            .filter(|t| matches!(cfg.blocks[t].exit, Exit::Halt))
            .count();
        assert_eq!(halt_block, 1, "second jmpr must reach the halt block");
    }

    #[test]
    fn clobbered_base_stays_unresolved() {
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r14, start\n    add r14, 2\n    jmpr r14\n.org 0xFFFE\n.word start\n",
        );
        assert_eq!(cfg.unresolved.len(), 1);
        assert_eq!(cfg.unresolved[0].mnemonic, "jmpr");
        assert_eq!(cfg.unresolved[0].reg, 14);
    }

    #[test]
    fn branch_target_between_movi_and_jmpr_defeats_resolution() {
        // `mid` is a branch target between the movi and the jmpr, so a
        // path can reach the jmpr without passing the movi.
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r14, done\n    cmpi r0, 0\n    jeq mid\n    movi r14, done\nmid:\n    jmpr r14\ndone:\n    halt\n.org 0xFFFE\n.word start\n",
        );
        assert_eq!(
            cfg.unresolved.len(),
            1,
            "jmpr at a leader must stay unresolved"
        );
    }

    #[test]
    fn allows_step_accepts_real_transitions_and_rejects_wild_ones() {
        let cfg = cfg_of(
            ".org 0x4400\nstart:\n    movi r0, 1\n    cmpi r0, 1\n    jeq done\n    nop\ndone:\n    halt\n.org 0xFFFE\n.word start\n",
        );
        // movi (4 bytes) at 0x4400 → cmpi at 0x4404.
        assert_eq!(cfg.allows_step(0x4400, 0x4404), StepVerdict::Allowed);
        assert_eq!(cfg.allows_step(0x4400, 0x4500), StepVerdict::Violation);
        // The branch may take either leg.
        let branch = cfg
            .instr_at
            .values()
            .find(|ci| matches!(ci.instr, Instr::J { .. }))
            .unwrap()
            .clone();
        let done = cfg
            .blocks
            .values()
            .find(|b| matches!(b.exit, Exit::Halt))
            .unwrap()
            .start;
        assert_eq!(cfg.allows_step(branch.addr, done), StepVerdict::Allowed);
        assert_eq!(
            cfg.allows_step(branch.addr, branch.next()),
            StepVerdict::Allowed
        );
        assert_eq!(cfg.allows_step(branch.addr, 0x4400), StepVerdict::Violation);
        // Undiscovered code is unknown, not a violation.
        assert_eq!(cfg.allows_step(0x9000, 0x9002), StepVerdict::Unknown);
    }
}
