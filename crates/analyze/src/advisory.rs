//! Checkpoint-placement advisory: turns the WCEC block table into a
//! trigger suggestion the `edb_runtime::ckpt` strategy zoo can consume
//! (`CkptConfig::interval` takes an instruction count).

use serde::Serialize;

use crate::cfg::Cfg;
use crate::cost::{instr_cycles, max_instr_cycles, CostModel};
use crate::wcec::{CapacitorSpec, Wcec};

/// A checkpoint-placement suggestion derived from static analysis.
#[derive(Debug, Clone, Serialize)]
pub struct CkptAdvice {
    /// Suggested checkpoint interval in retired instructions: feeding
    /// this to `CkptConfig::interval` guarantees (up to the stated
    /// margin) that the work between two checkpoints fits in one
    /// charge cycle even along the worst-cost instruction mix.
    pub interval_instructions: u64,
    /// Usable charge of one full charge cycle, coulombs.
    pub budget_charge: f64,
    /// Fraction of the budget held back for checkpoint overhead and
    /// model error.
    pub margin: f64,
    /// Worst-case charge of a single instruction, coulombs.
    pub worst_instr_charge: f64,
    /// Mean per-instruction charge along the program's worst path
    /// (equals `worst_instr_charge` when no path is available).
    pub mean_instr_charge: f64,
    /// Block starts along the worst path where cumulative worst-case
    /// charge since the previous suggested trigger crosses the budget —
    /// natural checkpoint sites for a placement-aware strategy.
    pub trigger_blocks: Vec<u16>,
}

/// Derives checkpoint advice from an analysis.
///
/// `margin` is the fraction of each charge cycle to hold in reserve
/// (0.25 means "plan to spend at most 75% of a charge between
/// checkpoints").
pub fn advise(
    cfg: &Cfg,
    wcec: &Wcec,
    model: &CostModel,
    cap: &CapacitorSpec,
    margin: f64,
) -> CkptAdvice {
    let margin = margin.clamp(0.0, 0.95);
    let budget = cap.charge_budget();
    let usable = budget * (1.0 - margin);
    let worst_instr_charge = model.charge_for_cycles(u64::from(max_instr_cycles()));

    // Mean charge per instruction along the worst path (falls back to
    // the worst single instruction when the program is unbounded).
    let program = wcec.program();
    let mut path_instrs: u64 = 0;
    let mut path_charge = 0.0f64;
    for step in &program.worst_path {
        if let Some(block) = cfg.blocks.get(&step.block) {
            let instrs = block.instrs.len() as u64;
            let cycles: u64 = block
                .instrs
                .iter()
                .map(|ci| u64::from(instr_cycles(&ci.instr)))
                .sum();
            path_instrs = path_instrs.saturating_add(instrs.saturating_mul(step.iterations));
            path_charge += model.charge_for_cycles(cycles) * step.iterations as f64;
        }
    }
    let mean_instr_charge = if path_instrs > 0 {
        path_charge / path_instrs as f64
    } else {
        worst_instr_charge
    };

    // The safe interval divides the usable budget by the *worst*
    // per-instruction charge: no instruction mix can overdraw it.
    let interval_instructions = ((usable / worst_instr_charge).floor() as u64).max(1);

    // Walk the worst path accumulating worst-case charge; every time it
    // crosses the usable budget, suggest the block as a trigger site.
    let mut trigger_blocks = Vec::new();
    let mut acc = 0.0f64;
    for step in &program.worst_path {
        if let Some(block) = cfg.blocks.get(&step.block) {
            let cycles: u64 = block
                .instrs
                .iter()
                .map(|ci| u64::from(instr_cycles(&ci.instr)))
                .sum();
            let per_pass = model.charge_for_cycles(cycles);
            for _ in 0..step.iterations.min(1_000_000) {
                acc += per_pass;
                if acc >= usable {
                    if trigger_blocks.last() != Some(&step.block) {
                        trigger_blocks.push(step.block);
                    }
                    acc = 0.0;
                }
            }
        }
    }

    CkptAdvice {
        interval_instructions,
        budget_charge: budget,
        margin,
        worst_instr_charge,
        mean_instr_charge,
        trigger_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use edb_device::DeviceConfig;
    use edb_mcu::asm::assemble;

    #[test]
    fn advice_interval_fits_one_charge() {
        let image = assemble(
            ".org 0x4400\nstart:\n    movi r10, 0\nbody:\n    nop\n    add r10, 1\n    cmpi r10, 200\n    jne body\n    halt\n.org 0xFFFE\n.word start\n",
        )
        .expect("assemble");
        let cfg = Cfg::from_image(&image);
        let wcec = crate::wcec::compute(&cfg);
        let model = crate::cost::CostModel::wisp5();
        let cap = CapacitorSpec::from_device(&DeviceConfig::wisp5());
        let advice = advise(&cfg, &wcec, &model, &cap, 0.25);
        assert!(advice.interval_instructions >= 1);
        // The interval must be conservative: interval × worst-instr
        // charge stays within the reduced budget.
        let spend = advice.interval_instructions as f64 * advice.worst_instr_charge;
        assert!(spend <= advice.budget_charge * (1.0 - advice.margin) + 1e-12);
        // A WISP5-sized capacitor holds thousands of instructions.
        assert!(advice.interval_instructions > 1_000);
    }
}
