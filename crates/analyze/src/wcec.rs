//! Worst-case energy consumption (WCEC) dataflow over the recovered
//! CFG.
//!
//! The pipeline is: per-function reachability → loop discovery (back
//! edges by address order) → counted-loop bound inference from the
//! binary idiom (`add rK, 1; cmpi rK, N; jne header` with a dominating
//! `movi rK, init`) → innermost-first loop collapse into weighted
//! super-nodes → DAG longest-path with predecessor tracking for
//! offending-path extraction. Every inference is *verified against the
//! decoded instructions*; when any check fails the function is reported
//! unbounded with a reason instead of guessing. Soundness of claimed
//! bounds is fuzzed at fleet scale (`fuzz_smoke --analyze`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use edb_device::DeviceConfig;
use edb_energy::budget::delta_energy;
use edb_mcu::{AluOp, Cond, Instr};

use crate::cfg::{writes_reg, Cfg, Exit};
use crate::cost::{instr_cycles, CostModel};

/// The capacitor/threshold half of a device spec, for charge-cycle
/// accounting.
#[derive(Debug, Clone, Copy)]
pub struct CapacitorSpec {
    /// Storage capacitance, farads.
    pub capacitance: f64,
    /// Turn-on threshold, volts.
    pub v_on: f64,
    /// Brown-out threshold, volts.
    pub v_off: f64,
}

impl CapacitorSpec {
    /// Extracts the spec from a device configuration.
    pub fn from_device(config: &DeviceConfig) -> CapacitorSpec {
        CapacitorSpec {
            capacitance: config.capacitance,
            v_on: config.v_on,
            v_off: config.v_off,
        }
    }

    /// Usable charge of one full charge cycle (`v_on` down to `v_off`),
    /// coulombs.
    pub fn charge_budget(&self) -> f64 {
        self.capacitance * (self.v_on - self.v_off)
    }
}

/// One discovered natural loop.
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// Header block address.
    pub header: u16,
    /// Latch block address (source of the back edge).
    pub latch: u16,
    /// Verified iteration bound, if the counted-loop idiom held.
    pub bound: Option<u64>,
    /// Counter register index, when inferred.
    pub counter: Option<u8>,
    /// Why no bound could be inferred (empty when bounded).
    pub note: String,
}

/// One step of a worst-case path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// Block address (a loop header for collapsed loops).
    pub block: u16,
    /// Times the step executes on the worst path (loop bound, or 1).
    pub iterations: u64,
}

/// Per-function WCEC summary.
#[derive(Debug, Clone)]
pub struct FnWcec {
    /// Function entry address.
    pub entry: u16,
    /// Worst-case cycles from entry to any terminator, when bounded.
    pub cycles: Option<u64>,
    /// Why the function is unbounded (`None` when bounded).
    pub unbounded_reason: Option<String>,
    /// The worst path (block starts with iteration counts).
    pub worst_path: Vec<PathStep>,
    /// Loops discovered in the function.
    pub loops: Vec<LoopSummary>,
    /// Registers the function (including callees) may write.
    pub written_regs: BTreeSet<u8>,
    /// Number of blocks in the function.
    pub block_count: usize,
}

/// Whole-program WCEC result.
#[derive(Debug, Clone)]
pub struct Wcec {
    /// Program entry.
    pub entry: u16,
    /// Summaries keyed by function entry.
    pub functions: BTreeMap<u16, FnWcec>,
}

impl Wcec {
    /// The entry function's summary.
    pub fn program(&self) -> &FnWcec {
        &self.functions[&self.entry]
    }

    /// A summary by entry address, if that address is a known function.
    pub fn function(&self, entry: u16) -> Option<&FnWcec> {
        self.functions.get(&entry)
    }
}

/// Charge/energy verdict for one bounded (or unbounded) cycle count
/// against a capacitor spec, assuming worst-case zero harvest.
#[derive(Debug, Clone)]
pub struct EnergyVerdict {
    /// Starting capacitor voltage the verdict was computed for.
    pub v_start: f64,
    /// The WCEC cycle bound (`None` when unbounded).
    pub wcec_cycles: Option<u64>,
    /// Worst-case charge drawn, coulombs.
    pub charge: Option<f64>,
    /// Worst-case energy drawn from `v_start`, joules.
    pub energy: Option<f64>,
    /// Capacitor voltage after the worst path under zero harvest.
    pub v_end_worst: Option<f64>,
    /// Whether the worst path completes before brown-out on the charge
    /// available at `v_start` with zero harvest.
    pub completes_on_one_charge: Option<bool>,
    /// Number of full charge cycles (`v_on`→`v_off`) needed to retire
    /// the worst path, starting from `v_start`.
    pub charge_cycles: Option<u64>,
}

/// Computes the charge/energy verdict for a cycle bound.
pub fn energy_verdict(
    cycles: Option<u64>,
    model: &CostModel,
    cap: &CapacitorSpec,
    v_start: f64,
) -> EnergyVerdict {
    let Some(cycles) = cycles else {
        return EnergyVerdict {
            v_start,
            wcec_cycles: None,
            charge: None,
            energy: None,
            v_end_worst: None,
            completes_on_one_charge: None,
            charge_cycles: None,
        };
    };
    let charge = model.charge_for_cycles(cycles);
    let v_end = v_start - charge / cap.capacitance;
    let energy = delta_energy(cap.capacitance, v_start, v_end.max(0.0));
    let completes = v_end >= cap.v_off;
    let first_budget = (cap.capacitance * (v_start - cap.v_off)).max(0.0);
    let charge_cycles = if charge <= first_budget {
        1
    } else {
        let refill = cap.charge_budget();
        1 + ((charge - first_budget) / refill).ceil() as u64
    };
    EnergyVerdict {
        v_start,
        wcec_cycles: Some(cycles),
        charge: Some(charge),
        energy: Some(energy),
        v_end_worst: Some(v_end),
        completes_on_one_charge: Some(completes),
        charge_cycles: Some(charge_cycles),
    }
}

/// Runs the WCEC dataflow over a CFG.
pub fn compute(cfg: &Cfg) -> Wcec {
    let mut entries: BTreeSet<u16> = cfg.entries.iter().copied().collect();
    entries.extend(cfg.call_targets());
    entries.retain(|e| cfg.blocks.contains_key(e));
    let mut functions = BTreeMap::new();
    let mut stack = BTreeSet::new();
    for &entry in &entries {
        summarize(cfg, entry, &mut functions, &mut stack);
    }
    // The primary entry must always have a summary, even for an empty
    // CFG (no decodable entry block).
    functions.entry(cfg.entry).or_insert_with(|| FnWcec {
        entry: cfg.entry,
        cycles: None,
        unbounded_reason: Some("entry is not decodable code".into()),
        worst_path: Vec::new(),
        loops: Vec::new(),
        written_regs: all_regs(),
        block_count: 0,
    });
    Wcec {
        entry: cfg.entry,
        functions,
    }
}

fn all_regs() -> BTreeSet<u8> {
    (0..16).collect()
}

fn unbounded(entry: u16, reason: String, loops: Vec<LoopSummary>, blocks: usize) -> FnWcec {
    FnWcec {
        entry,
        cycles: None,
        unbounded_reason: Some(reason),
        worst_path: Vec::new(),
        loops,
        written_regs: all_regs(),
        block_count: blocks,
    }
}

fn summarize(cfg: &Cfg, entry: u16, memo: &mut BTreeMap<u16, FnWcec>, stack: &mut BTreeSet<u16>) {
    if memo.contains_key(&entry) {
        return;
    }
    if !stack.insert(entry) {
        return;
    }
    let summary = summarize_inner(cfg, entry, memo, stack);
    stack.remove(&entry);
    memo.insert(entry, summary);
}

fn summarize_inner(
    cfg: &Cfg,
    entry: u16,
    memo: &mut BTreeMap<u16, FnWcec>,
    stack: &mut BTreeSet<u16>,
) -> FnWcec {
    if cfg.truncated {
        return unbounded(
            entry,
            "CFG discovery truncated (code too large)".into(),
            Vec::new(),
            0,
        );
    }
    // Reachable block set over intra-procedural edges.
    let mut fn_blocks: BTreeSet<u16> = BTreeSet::new();
    let mut work = VecDeque::from([entry]);
    while let Some(b) = work.pop_front() {
        if !cfg.blocks.contains_key(&b) || !fn_blocks.insert(b) {
            continue;
        }
        for succ in cfg.blocks[&b].intra_succs() {
            work.push_back(succ);
        }
    }
    if fn_blocks.is_empty() {
        return unbounded(entry, "entry is not decodable code".into(), Vec::new(), 0);
    }

    // Registers written anywhere in this function, before callee union.
    let mut written: BTreeSet<u8> = BTreeSet::new();
    for &b in &fn_blocks {
        for ci in &cfg.blocks[&b].instrs {
            if let Some(r) = writes_reg(&ci.instr) {
                written.insert(r.index() as u8);
            }
        }
    }

    // Callee summaries (bottom-up; recursion detected via the stack).
    let mut callee_cycles: BTreeMap<u16, u64> = BTreeMap::new();
    for &b in &fn_blocks {
        let block = &cfg.blocks[&b];
        let callee = match block.exit {
            Exit::Call { callee, .. } => Some(callee),
            Exit::CallIndirect { callee, .. } => callee,
            _ => None,
        };
        match block.exit {
            Exit::CallIndirect { callee: None, .. } => {
                return unbounded(
                    entry,
                    format!("unresolved indirect call at {:#06x}", block.exit_addr()),
                    Vec::new(),
                    fn_blocks.len(),
                );
            }
            Exit::JumpIndirect { target: None } => {
                return unbounded(
                    entry,
                    format!("unresolved indirect jump at {:#06x}", block.exit_addr()),
                    Vec::new(),
                    fn_blocks.len(),
                );
            }
            _ => {}
        }
        if let Some(callee) = callee {
            if stack.contains(&callee) || callee == entry {
                return unbounded(
                    entry,
                    format!("recursive call to {callee:#06x}"),
                    Vec::new(),
                    fn_blocks.len(),
                );
            }
            summarize(cfg, callee, memo, stack);
            match memo.get(&callee) {
                Some(s) => {
                    written.extend(s.written_regs.iter().copied());
                    match s.cycles {
                        Some(c) => {
                            callee_cycles.insert(b, c);
                        }
                        None => {
                            return unbounded(
                                entry,
                                format!(
                                    "callee {callee:#06x} is unbounded: {}",
                                    s.unbounded_reason.as_deref().unwrap_or("unknown")
                                ),
                                Vec::new(),
                                fn_blocks.len(),
                            );
                        }
                    }
                }
                None => {
                    return unbounded(
                        entry,
                        format!("recursive call to {callee:#06x}"),
                        Vec::new(),
                        fn_blocks.len(),
                    );
                }
            }
        }
    }

    // Block weights in cycles (callee worst case folded into the
    // calling block).
    let mut weight: BTreeMap<u16, u64> = BTreeMap::new();
    for &b in &fn_blocks {
        let block = &cfg.blocks[&b];
        let mut w: u64 = block
            .instrs
            .iter()
            .map(|ci| u64::from(instr_cycles(&ci.instr)))
            .sum();
        if let Some(c) = callee_cycles.get(&b) {
            w = w.saturating_add(*c);
        }
        weight.insert(b, w);
    }

    // Intra-function edges restricted to the block set.
    let edges: Vec<(u16, u16)> = fn_blocks
        .iter()
        .flat_map(|&b| {
            cfg.blocks[&b]
                .intra_succs()
                .into_iter()
                .filter(|s| fn_blocks.contains(s))
                .map(move |s| (b, s))
        })
        .collect();

    // Loop discovery: back edges by address order.
    let back_edges: Vec<(u16, u16)> = edges.iter().copied().filter(|&(u, v)| v <= u).collect();
    let mut loops: Vec<LoopSummary> = Vec::new();
    let mut headers = BTreeSet::new();
    for &(latch, header) in &back_edges {
        if !headers.insert(header) {
            return unbounded(
                entry,
                format!("loop at {header:#06x} has multiple latches"),
                loops,
                fn_blocks.len(),
            );
        }
        let summary = infer_loop_bound(cfg, memo, &fn_blocks, &edges, header, latch);
        loops.push(summary);
    }
    // Nesting check: ranges must be properly nested or disjoint.
    for a in &loops {
        for b in &loops {
            if a.header == b.header {
                continue;
            }
            let (a0, a1) = (a.header, a.latch);
            let (b0, b1) = (b.header, b.latch);
            let disjoint = a1 < b0 || b1 < a0;
            let a_in_b = b0 <= a0 && a1 <= b1;
            let b_in_a = a0 <= b0 && b1 <= a1;
            if !(disjoint || a_in_b || b_in_a) {
                return unbounded(
                    entry,
                    format!("loops at {a0:#06x} and {b0:#06x} overlap without nesting"),
                    loops,
                    fn_blocks.len(),
                );
            }
        }
    }
    if let Some(bad) = loops.iter().find(|l| l.bound.is_none()) {
        return unbounded(
            entry,
            format!(
                "loop at {:#06x} has no inferable bound: {}",
                bad.header, bad.note
            ),
            loops,
            fn_blocks.len(),
        );
    }
    // Entry must not sit strictly inside a loop range (bypassing init).
    for l in &loops {
        if entry > l.header && entry <= l.latch {
            return unbounded(
                entry,
                format!("function entry lies inside loop at {:#06x}", l.header),
                loops,
                fn_blocks.len(),
            );
        }
    }

    // Collapse loops innermost-first into weighted super-nodes.
    let mut alive: BTreeSet<u16> = fn_blocks.clone();
    let mut removed_edges: BTreeSet<(u16, u16)> = BTreeSet::new();
    let mut succ_override: BTreeMap<u16, Vec<u16>> = BTreeMap::new();
    let mut collapsed_iterations: BTreeMap<u16, u64> = BTreeMap::new();
    let mut order: Vec<&LoopSummary> = loops.iter().collect();
    order.sort_by_key(|l| l.latch.wrapping_sub(l.header));
    let succs_of = |n: u16,
                    alive: &BTreeSet<u16>,
                    removed: &BTreeSet<(u16, u16)>,
                    over: &BTreeMap<u16, Vec<u16>>|
     -> Vec<u16> {
        let raw: Vec<u16> = match over.get(&n) {
            Some(v) => v.clone(),
            None => cfg.blocks[&n].intra_succs(),
        };
        raw.into_iter()
            .filter(|s| alive.contains(s) && !removed.contains(&(n, *s)))
            .collect()
    };
    for l in order {
        let bound = l.bound.expect("unbounded loops rejected above");
        removed_edges.insert((l.latch, l.header));
        let nodes_in: Vec<u16> = alive
            .iter()
            .copied()
            .filter(|&n| n >= l.header && n <= l.latch)
            .collect();
        // Longest path from the header over the in-range subgraph.
        let in_set: BTreeSet<u16> = nodes_in.iter().copied().collect();
        let local = longest_path(
            l.header,
            &in_set,
            |n| {
                succs_of(n, &alive, &removed_edges, &succ_override)
                    .into_iter()
                    .filter(|s| in_set.contains(s))
                    .collect()
            },
            &weight,
        );
        let Some(local) = local else {
            return unbounded(
                entry,
                format!("irreducible control flow inside loop at {:#06x}", l.header),
                loops.clone(),
                fn_blocks.len(),
            );
        };
        let worst_iter = local.best_cycles;
        // Successors of the collapsed node: every edge out of the range.
        let mut out: Vec<u16> = Vec::new();
        for &n in &nodes_in {
            for s in succs_of(n, &alive, &removed_edges, &succ_override) {
                if !in_set.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        weight.insert(l.header, bound.saturating_mul(worst_iter));
        collapsed_iterations.insert(l.header, bound);
        succ_override.insert(l.header, out);
        for n in nodes_in {
            if n != l.header {
                alive.remove(&n);
            }
        }
    }

    // Final DAG longest path from the entry.
    let final_set = alive.clone();
    let result = longest_path(
        entry,
        &final_set,
        |n| succs_of(n, &alive, &removed_edges, &succ_override),
        &weight,
    );
    let Some(result) = result else {
        return unbounded(
            entry,
            "irreducible control flow (cycle without a recognized loop)".into(),
            loops,
            fn_blocks.len(),
        );
    };
    let worst_path = result
        .best_path
        .iter()
        .map(|&b| PathStep {
            block: b,
            iterations: collapsed_iterations.get(&b).copied().unwrap_or(1),
        })
        .collect();
    FnWcec {
        entry,
        cycles: Some(result.best_cycles),
        unbounded_reason: None,
        worst_path,
        loops,
        written_regs: written,
        block_count: fn_blocks.len(),
    }
}

struct LongestPath {
    best_cycles: u64,
    best_path: Vec<u16>,
}

/// Longest path (by node weights) from `start` over the subgraph
/// `nodes`, or `None` when the subgraph has a cycle reachable from
/// `start`.
fn longest_path(
    start: u16,
    nodes: &BTreeSet<u16>,
    succs: impl Fn(u16) -> Vec<u16>,
    weight: &BTreeMap<u16, u64>,
) -> Option<LongestPath> {
    if !nodes.contains(&start) {
        return None;
    }
    // Restrict to nodes reachable from start.
    let mut reach: BTreeSet<u16> = BTreeSet::new();
    let mut work = VecDeque::from([start]);
    while let Some(n) = work.pop_front() {
        if !reach.insert(n) {
            continue;
        }
        for s in succs(n) {
            if nodes.contains(&s) {
                work.push_back(s);
            }
        }
    }
    // Kahn topological sort; a leftover node means a cycle.
    let mut indeg: BTreeMap<u16, usize> = reach.iter().map(|&n| (n, 0)).collect();
    for &n in &reach {
        for s in succs(n) {
            if reach.contains(&s) {
                *indeg.get_mut(&s).unwrap() += 1;
            }
        }
    }
    let mut queue: VecDeque<u16> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut topo = Vec::with_capacity(reach.len());
    while let Some(n) = queue.pop_front() {
        topo.push(n);
        for s in succs(n) {
            if let Some(d) = indeg.get_mut(&s) {
                *d -= 1;
                if *d == 0 {
                    queue.push_back(s);
                }
            }
        }
    }
    if topo.len() != reach.len() {
        return None;
    }
    let mut dist: BTreeMap<u16, u64> = BTreeMap::new();
    let mut parent: BTreeMap<u16, u16> = BTreeMap::new();
    dist.insert(start, *weight.get(&start).unwrap_or(&0));
    for &n in &topo {
        let Some(&dn) = dist.get(&n) else { continue };
        for s in succs(n) {
            if !reach.contains(&s) {
                continue;
            }
            let cand = dn.saturating_add(*weight.get(&s).unwrap_or(&0));
            if dist.get(&s).is_none_or(|&cur| cand > cur) {
                dist.insert(s, cand);
                parent.insert(s, n);
            }
        }
    }
    let (&best_node, &best_cycles) = dist.iter().max_by_key(|(_, &d)| d)?;
    let mut best_path = vec![best_node];
    let mut cur = best_node;
    while let Some(&p) = parent.get(&cur) {
        best_path.push(p);
        cur = p;
    }
    best_path.reverse();
    Some(LongestPath {
        best_cycles,
        best_path,
    })
}

/// Verifies the counted-loop idiom for one back edge and infers the
/// iteration bound, or explains why it cannot.
fn infer_loop_bound(
    cfg: &Cfg,
    memo: &BTreeMap<u16, FnWcec>,
    fn_blocks: &BTreeSet<u16>,
    edges: &[(u16, u16)],
    header: u16,
    latch: u16,
) -> LoopSummary {
    let fail = |note: &str| LoopSummary {
        header,
        latch,
        bound: None,
        counter: None,
        note: note.to_string(),
    };
    let latch_block = &cfg.blocks[&latch];
    // The back edge must be a conditional `jne header`.
    let Some(term) = latch_block.instrs.last() else {
        return fail("empty latch block");
    };
    let Instr::J {
        cond: Cond::Nz,
        target,
    } = term.instr
    else {
        return fail("back edge is not a `jne`");
    };
    if target != header {
        return fail("latch terminator does not target the header");
    }
    // The two instructions linearly preceding the jne must be
    // `add rK, 1; cmpi rK, limit` (block boundaries are irrelevant:
    // the no-transfer-target check below rules out entries that skip
    // them).
    let Some(cmpi) = linear_predecessor(cfg, term.addr) else {
        return fail("no linear predecessor before the back edge");
    };
    let Instr::Cmpi {
        rd: counter,
        imm: limit,
    } = cmpi.instr
    else {
        return fail("back edge is not driven by a `cmpi`");
    };
    let Some(add) = linear_predecessor(cfg, cmpi.addr) else {
        return fail("no increment before the loop compare");
    };
    match add.instr {
        Instr::Alui {
            op: AluOp::Add,
            rd,
            imm: 1,
        } if rd == counter => {}
        _ => return fail("loop compare is not preceded by `add rK, 1`"),
    }
    if counter.index() == 15 {
        return fail("loop counter is the stack pointer");
    }
    // Nothing may branch to the compare or the jne (a path skipping the
    // increment would break the counting argument). Branching to the
    // increment itself is fine: it still increments.
    let targets = cfg.transfer_targets();
    if targets.contains(&cmpi.addr) || targets.contains(&term.addr) {
        return fail("a branch targets the loop-control sequence");
    }
    // No edge may enter the loop body past the header: a side entry
    // bypasses the counter initialization, so the counter could start
    // at an arbitrary value and the iteration count would be wrong.
    for &(u, v) in edges {
        if v > header && v <= latch && !(header..=latch).contains(&u) {
            return fail("a branch enters the loop body past the header");
        }
    }
    // The instruction linearly preceding the header must initialize the
    // counter, and every predecessor of the header must be either the
    // latch or that initializing block falling through.
    let Some(init) = linear_predecessor(cfg, header) else {
        return fail("no initialization before the loop header");
    };
    let Instr::Movi {
        rd: init_rd,
        imm: init_imm,
    } = init.instr
    else {
        return fail("header is not preceded by `movi rK, init`");
    };
    if init_rd != counter {
        return fail("initialization writes a different register than the counter");
    }
    let preds: Vec<u16> = edges
        .iter()
        .filter(|&&(_, v)| v == header)
        .map(|&(u, _)| u)
        .collect();
    for p in preds {
        if p == latch {
            continue;
        }
        let pb = &cfg.blocks[&p];
        let falls_through_init = matches!(pb.exit, Exit::Fall { next } if next == header)
            && pb.instrs.last().map(|ci| ci.addr) == Some(init.addr);
        if !falls_through_init {
            return fail("a predecessor enters the loop without initializing the counter");
        }
    }
    // The counter must be written exactly once inside the loop range —
    // by the increment — including by any callee reachable from the
    // range.
    let range_end = latch_block.end();
    for &b in fn_blocks.iter().filter(|&&b| b >= header && b <= latch) {
        let block = &cfg.blocks[&b];
        for ci in &block.instrs {
            if ci.addr < header || ci.addr >= range_end {
                continue;
            }
            if writes_reg(&ci.instr) == Some(counter) && ci.addr != add.addr {
                return fail("the loop body writes the counter outside the increment");
            }
        }
        let callee = match block.exit {
            Exit::Call { callee, .. } => Some(callee),
            Exit::CallIndirect { callee, .. } => callee,
            _ => None,
        };
        if let Some(callee) = callee {
            let clobbers = memo
                .get(&callee)
                .map(|s| s.written_regs.contains(&(counter.index() as u8)))
                .unwrap_or(true);
            if clobbers {
                return fail("a callee inside the loop may write the counter");
            }
        }
    }
    // Iteration count of a bottom-tested `jne`: the counter runs from
    // init+1 up to the first value equal to `limit`, modulo 2^16.
    let span = (i64::from(limit) - i64::from(init_imm)).rem_euclid(65_536) as u64;
    let bound = if span == 0 { 65_536 } else { span };
    LoopSummary {
        header,
        latch,
        bound: Some(bound),
        counter: Some(counter.index() as u8),
        note: String::new(),
    }
}

/// The instruction whose encoding ends exactly at `addr`, when the
/// decode stream abuts it.
fn linear_predecessor(cfg: &Cfg, addr: u16) -> Option<crate::cfg::CodeInstr> {
    // The widest instruction is 4 bytes; probe both candidates.
    for delta in [2u16, 4u16] {
        let cand = addr.wrapping_sub(delta);
        if let Some(ci) = cfg.instr_at(cand) {
            if ci.next() == addr {
                return Some(ci.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_mcu::asm::assemble;

    fn wcec_of(src: &str) -> Wcec {
        let image = assemble(src).expect("assemble");
        compute(&Cfg::from_image(&image))
    }

    #[test]
    fn straight_line_cycles_are_exact() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    movi r0, 1\n    add r0, 2\n    nop\n    halt\n.org 0xFFFE\n.word start\n",
        );
        // movi 2 + alui 2 + nop 1 + halt 1 = 6.
        assert_eq!(w.program().cycles, Some(6));
    }

    #[test]
    fn counted_loop_bound_is_inferred() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    movi r10, 0\nbody:\n    nop\n    add r10, 1\n    cmpi r10, 5\n    jne body\n    halt\n.org 0xFFFE\n.word start\n",
        );
        let p = w.program();
        assert_eq!(p.unbounded_reason, None);
        assert_eq!(p.loops.len(), 1);
        assert_eq!(p.loops[0].bound, Some(5));
        // movi 2 + 5×(nop 1 + add 2 + cmpi 2 + jne 2) + halt 1 = 38.
        assert_eq!(p.cycles, Some(38));
    }

    #[test]
    fn nested_loops_multiply() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    movi r10, 0\nouter:\n    movi r11, 0\ninner:\n    nop\n    add r11, 1\n    cmpi r11, 3\n    jne inner\n    add r10, 1\n    cmpi r10, 4\n    jne outer\n    halt\n.org 0xFFFE\n.word start\n",
        );
        let p = w.program();
        assert_eq!(p.unbounded_reason, None, "loops: {:?}", p.loops);
        assert_eq!(p.loops.len(), 2);
        // inner per iteration: nop 1 + add 2 + cmpi 2 + jne 2 = 7 → ×3 = 21
        // outer per iteration: movi 2 + 21 + add 2 + cmpi 2 + jne 2 = 29 → ×4 = 116
        // total: movi 2 + 116 + halt 1 = 119.
        assert_eq!(p.cycles, Some(119));
    }

    #[test]
    fn uncounted_loop_is_reported_unbounded() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    nop\nloop:\n    add r0, 1\n    jmp loop\n.org 0xFFFE\n.word start\n",
        );
        let p = w.program();
        assert_eq!(p.cycles, None);
        let reason = p.unbounded_reason.as_deref().unwrap();
        assert!(reason.contains("no inferable bound"), "reason: {reason}");
    }

    #[test]
    fn branch_into_the_loop_body_defeats_the_bound() {
        // `jz mid` enters the loop body without passing the `movi r10, 0`
        // initialization, so the counting argument does not hold.
        let w = wcec_of(
            ".org 0x4400\nstart:\n    cmpi r0, 1\n    jz mid\n    movi r10, 0\nbody:\n    nop\nmid:\n    nop\n    add r10, 1\n    cmpi r10, 5\n    jne body\n    halt\n.org 0xFFFE\n.word start\n",
        );
        let p = w.program();
        assert_eq!(p.cycles, None, "a side entry skips the counter init");
        let reason = p.unbounded_reason.as_deref().unwrap();
        assert!(reason.contains("past the header"), "reason: {reason}");
    }

    #[test]
    fn call_costs_fold_into_the_caller() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    call fn\n    halt\nfn:\n    nop\n    ret\n.org 0xFFFE\n.word start\n",
        );
        // call 4 + (nop 1 + ret 3) + halt 1 = 9.
        assert_eq!(w.program().cycles, Some(9));
    }

    #[test]
    fn recursion_is_unbounded() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    call fn\n    halt\nfn:\n    call fn\n    ret\n.org 0xFFFE\n.word start\n",
        );
        let p = w.program();
        assert_eq!(p.cycles, None);
        assert!(p.unbounded_reason.as_deref().unwrap().contains("unbounded"));
    }

    #[test]
    fn callee_clobbering_the_counter_defeats_the_bound() {
        let w = wcec_of(
            ".org 0x4400\nstart:\n    movi r10, 0\nbody:\n    call fn\n    add r10, 1\n    cmpi r10, 5\n    jne body\n    halt\nfn:\n    movi r10, 0\n    ret\n.org 0xFFFE\n.word start\n",
        );
        let p = w.program();
        assert_eq!(
            p.cycles, None,
            "a counter-clobbering callee must defeat the bound"
        );
    }

    #[test]
    fn energy_verdict_flags_paths_too_long_for_one_charge() {
        let model = CostModel::wisp5();
        let cap = CapacitorSpec::from_device(&edb_device::DeviceConfig::wisp5());
        // A tiny program finishes on one charge from v_on…
        let small = energy_verdict(Some(100), &model, &cap, cap.v_on);
        assert_eq!(small.completes_on_one_charge, Some(true));
        assert_eq!(small.charge_cycles, Some(1));
        // …but tens of millions of cycles cannot.
        let big = energy_verdict(Some(80_000_000), &model, &cap, cap.v_on);
        assert_eq!(big.completes_on_one_charge, Some(false));
        assert!(big.charge_cycles.unwrap() > 1);
    }
}
