//! Seed-driven fuzzing smoke run.
//!
//! ```text
//! fuzz_smoke [--seed S] [--threads N] [--cases N] [--sessions N]
//!            [--strategies [N]] [--analyze [N]] [--max-shrink-steps N]
//!            [--replay-seed S] [--record-reproducers]
//! ```
//!
//! Runs `--cases` generated programs (default 100) through every
//! differential and fault-injection arm, plus a smaller batch of
//! checkpoint round-trips and `--sessions` debug-session fuzz trials
//! (noisy channel, mid-exchange brown-outs; default 25), using
//! `edb-bench`'s deterministic runner: the same `--seed` yields
//! bit-identical verdicts — including the printed session digest — at
//! any `--threads`. On divergence the lowest-trial failure is shrunk
//! and written to `target/fuzz-artifacts/`, and the process exits
//! non-zero.
//!
//! `--strategies` additionally races the checkpoint-strategy zoo
//! (`edb_runtime::ckpt`) under adversarial power-failure injection:
//! each trial seeds an injection schedule over a restart-idempotent
//! kernel, runs `Differential` in bit-for-bit lockstep against
//! `FullDump`, and checks every strategy's published result against the
//! uninterrupted-run oracle. Divergent schedules are ddmin-minimized
//! and written to `target/fuzz-artifacts/strategy-<seed>.txt`. An
//! optional value sets the trial count (default 40).
//!
//! `--analyze` races `edb-analyze`'s static claims against the
//! simulator: each trial generates a bounded-by-construction program,
//! analyzes the binary, and asserts that under a seeded harvest trace
//! no powered interval retires more cycles than the static WCEC bound,
//! that every executed pc transition is a CFG edge, and that a
//! "completes on one charge" verdict holds on a dead harvester.
//! Violations are ddmin-shrunk with an arm-matched oracle and written
//! to `target/fuzz-artifacts/`. An optional value sets the trial count
//! (default 200).
//!
//! `--replay-seed` re-runs a single case seed (as printed in an
//! artifact header) verbosely and skips the batch.
//!
//! `--record-reproducers` additionally runs any failing program through
//! the time-travel recorder and writes a `case-<seed>.edbr` recording
//! next to the `.s` artifacts, ready for `step_back`/`goto_time` in the
//! debugger.

use edb_bench::runner::Cli;
use edb_fuzz::{
    artifact, check_program, fault, gen, race, run_case, session, shrink, soundness, FuzzConfig,
};

/// Pulls `--name <value>` (decimal or `0x` hex) out of raw argv;
/// `Cli::parse` tolerates the leftovers.
fn arg_u64(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    let eq = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        let raw = if a == name {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix(&eq).map(str::to_string)
        };
        if let Some(raw) = raw {
            let parsed = raw
                .strip_prefix("0x")
                .or_else(|| raw.strip_prefix("0X"))
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| raw.parse());
            match parsed {
                Ok(v) => return Some(v),
                Err(_) => {
                    eprintln!("fuzz_smoke: bad value for {name}: {raw}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// True when the bare flag `--name` appears in argv.
fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// `--name` with an optional trial-count value, defaulting to `default`.
fn optional_count_arg(name: &str, default: usize) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let eq = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.parse().unwrap_or(default));
        }
        if a == name {
            return Some(
                args.get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(default),
            );
        }
    }
    None
}

fn main() {
    let cli = Cli::from_env();
    let mut cfg = FuzzConfig::default();
    if let Some(n) = arg_u64("--max-shrink-steps") {
        cfg.max_shrink_steps = n as usize;
    }

    if let Some(seed) = arg_u64("--replay-seed") {
        replay(seed, &cfg);
        return;
    }

    let cases = arg_u64("--cases").unwrap_or(100) as usize;
    let runner = cli.runner();

    let t0 = std::time::Instant::now();
    let diff_failures: Vec<_> = runner
        .map_trials("fuzz/diff", cases, |ctx| run_case(ctx.seed, &cfg))
        .into_iter()
        .flatten()
        .collect();
    let ckpt_cases = (cases / 8).max(1);
    let ckpt_failures: Vec<_> = runner
        .map_trials("fuzz/checkpoint", ckpt_cases, |ctx| {
            fault::checkpoint_round_trip(ctx.seed).map(|_| ctx.seed)
        })
        .into_iter()
        .flatten()
        .collect();
    let sessions = arg_u64("--sessions").unwrap_or(25) as usize;
    let session_cfg = session::SessionConfig::default();
    let session_results = runner.map_trials("fuzz/session", sessions, |ctx| {
        (ctx.seed, session::run_session_case(ctx.seed, &session_cfg))
    });
    let strategy_trials = optional_count_arg("--strategies", 40).unwrap_or(0);
    let strategy_failures: Vec<(u64, edb_fuzz::Divergence)> = runner
        .map_trials("fuzz/strategy", strategy_trials, |ctx| {
            race::check_race(ctx.seed).map(|d| (ctx.seed, d))
        })
        .into_iter()
        .flatten()
        .collect();
    let analyze_trials = optional_count_arg("--analyze", 200).unwrap_or(0);
    let analyze_failures: Vec<_> = runner
        .map_trials("fuzz/analyze", analyze_trials, |ctx| {
            soundness::run_soundness_case(ctx.seed, &cfg)
        })
        .into_iter()
        .flatten()
        .collect();
    let wall = t0.elapsed().as_secs_f64();

    println!(
        "fuzz_smoke: {cases} differential case(s) + {ckpt_cases} checkpoint round-trip(s) \
         + {sessions} session trial(s) + {strategy_trials} strategy race(s) \
         + {analyze_trials} analyzer soundness case(s) in {wall:.1}s"
    );

    let mut session_failures = 0usize;
    let mut totals = session::SessionStats::default();
    let digest = session::combine_digests(session_results.iter().enumerate().map(
        |(trial, (seed, r))| match r {
            Ok(stats) => {
                totals.completed += stats.completed;
                totals.retried += stats.retried;
                totals.aborted += stats.aborted;
                totals.injected_brownouts += stats.injected_brownouts;
                stats.digest
            }
            Err(d) => {
                session_failures += 1;
                println!("  session trial {trial} (seed {seed:#x}): {d}");
                0
            }
        },
    ));
    if sessions > 0 {
        println!(
            "  sessions: {} completed, {} retried, {} aborted (typed), \
             {} injected brown-out(s); digest {digest:#018x}",
            totals.completed, totals.retried, totals.aborted, totals.injected_brownouts
        );
    }

    if strategy_trials > 0 && strategy_failures.is_empty() {
        println!("  strategies: 0 divergences vs full_dump across the kernel suite");
    }
    if let Some((seed, div)) = strategy_failures.first() {
        println!(
            "  FAIL: {} strategy divergence(s); ddmin-shrinking seed {seed:#x}: {div}",
            strategy_failures.len()
        );
        let suite = race::kernels();
        let kernel = &suite[(*seed as usize) % suite.len()];
        let schedule = race::generate_schedule(*seed);
        let (min, best) =
            race::shrink_schedule(&schedule, div.clone(), |s| race::check_race_on(kernel, s));
        println!(
            "  shrunk {} -> {} cut(s): {best}",
            schedule.len(),
            min.len()
        );
        let dir = std::path::PathBuf::from(artifact::ARTIFACT_DIR);
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("strategy-{seed:#x}.txt"));
        let mut report = String::new();
        report.push_str("edb-fuzz strategy-race reproducer\n");
        report.push_str(&format!("case seed : {seed:#018x}\n"));
        report.push_str(&format!("kernel    : {}\n", kernel.name));
        report.push_str(&format!("divergence: {best}\n"));
        report.push_str(&format!("schedule  : {min:?}\n\n"));
        report.push_str(&kernel.source);
        match std::fs::write(&path, report) {
            Ok(()) => println!("  wrote {}", path.display()),
            Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
        }
    }

    if analyze_trials > 0 && analyze_failures.is_empty() {
        println!("  analyzer: every execution respected its static WCEC bound and CFG");
    }
    if let Some(first) = analyze_failures.first() {
        println!(
            "  FAIL: {} analyzer soundness divergence(s); shrinking seed {:#x}: {}",
            analyze_failures.len(),
            first.seed,
            first.divergence
        );
        let arm = first.divergence.arm;
        let shrunk = shrink(
            &first.program,
            first.divergence.clone(),
            cfg.max_shrink_steps,
            |p| soundness::check_soundness(p, first.seed, &cfg).filter(|d| d.arm == arm),
        );
        println!(
            "  shrunk {} -> {} instruction(s) in {} evaluation(s): {}",
            first.program.len(),
            shrunk.program.len(),
            shrunk.evaluations,
            shrunk.divergence
        );
        for path in
            artifact::write_reproducer(&shrunk.program, &first.program, &shrunk.divergence, &cfg)
        {
            println!("  wrote {}", path.display());
        }
    }

    for seed in &ckpt_failures {
        // Re-derive the divergence for the report (cheap relative to the run).
        if let Some(d) = fault::checkpoint_round_trip(*seed) {
            println!("  checkpoint seed {seed:#x}: {d}");
        }
    }

    if let Some(first) = diff_failures.first() {
        println!(
            "  FAIL: {} divergence(s); shrinking seed {:#x}: {}",
            diff_failures.len(),
            first.seed,
            first.divergence
        );
        let shrunk = shrink(
            &first.program,
            first.divergence.clone(),
            cfg.max_shrink_steps,
            |p| check_program(p, first.seed, &cfg),
        );
        println!(
            "  shrunk {} -> {} instruction(s) in {} evaluation(s): {}",
            first.program.len(),
            shrunk.program.len(),
            shrunk.evaluations,
            shrunk.divergence
        );
        for path in
            artifact::write_reproducer(&shrunk.program, &first.program, &shrunk.divergence, &cfg)
        {
            println!("  wrote {}", path.display());
        }
        if arg_flag("--record-reproducers") {
            if let Some(path) = artifact::record_reproducer(&first.program, cfg.system_sim_ms) {
                println!("  recorded {}", path.display());
            }
        }
    }

    if diff_failures.is_empty()
        && ckpt_failures.is_empty()
        && session_failures == 0
        && strategy_failures.is_empty()
        && analyze_failures.is_empty()
    {
        println!("  OK: zero divergences");
    } else {
        std::process::exit(1);
    }
}

/// Re-runs one case seed with the full program listing on stdout.
fn replay(seed: u64, cfg: &FuzzConfig) {
    let prog = gen::generate(seed);
    println!(
        "; replaying case seed {seed:#x} ({} instructions)",
        prog.len()
    );
    println!("{}", prog.render());
    match check_program(&prog, seed, cfg) {
        None => println!("replay: no divergence"),
        Some(d) => {
            println!("replay: {d}");
            std::process::exit(1);
        }
    }
}
