//! Reproducer artifacts for failing fuzz cases.
//!
//! A divergence writes two files under `target/fuzz-artifacts/`:
//! the *shrunk* program as assembler source (`case-<seed>.s`, with the
//! seed, engine configuration, and divergence recorded in a header
//! comment so the file alone is a complete bug report) and the original
//! un-shrunk program (`case-<seed>.orig.s`). With `--record-reproducers`
//! the failing program is additionally run through the time-travel
//! recorder ([`record_reproducer`]) and saved as `case-<seed>.edbr`, a
//! deterministic recording the debugger can `step_back`/`goto_time`
//! through.
//!
//! Reproduce a case from its seed with:
//! `cargo run --release -p edb-fuzz --bin fuzz_smoke -- --replay-seed <seed>`

use crate::diff::Divergence;
use crate::gen::Program;
use crate::FuzzConfig;
use edb_core::SessionSpec;
use edb_energy::SimTime;
use std::path::PathBuf;

/// Directory the reproducers land in (workspace-relative, like the
/// bench suite's `target/experiments/`).
pub const ARTIFACT_DIR: &str = "target/fuzz-artifacts";

fn header(prog: &Program, div: &Divergence, cfg: &FuzzConfig, shrunk: bool) -> String {
    let mut s = String::new();
    s.push_str("; edb-fuzz reproducer\n");
    s.push_str(&format!("; case seed : {:#018x}\n", prog.case_seed));
    s.push_str(&format!("; arm       : {}\n", div.arm));
    s.push_str(&format!("; divergence: {}\n", div.detail));
    s.push_str(&format!(
        "; config    : mcu_steps={} device_ms={} system_ms={}\n",
        cfg.mcu_steps, cfg.device_sim_ms, cfg.system_sim_ms
    ));
    s.push_str(&format!(
        "; body      : {} instruction(s){}\n",
        prog.len(),
        if shrunk { " (shrunk)" } else { " (original)" }
    ));
    s.push_str(&format!(
        "; reproduce : cargo run --release -p edb-fuzz --bin fuzz_smoke -- --replay-seed {:#x}\n;\n",
        prog.case_seed
    ));
    s
}

/// Writes the reproducer pair; returns the paths written. Failures to
/// write are reported on stderr but never panic (artifacts are a
/// best-effort courtesy, the process exit code carries the verdict).
pub fn write_reproducer(
    shrunk: &Program,
    original: &Program,
    div: &Divergence,
    cfg: &FuzzConfig,
) -> Vec<PathBuf> {
    let dir = PathBuf::from(ARTIFACT_DIR);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("fuzz: cannot create {}: {e}", dir.display());
        return Vec::new();
    }
    let mut written = Vec::new();
    let cases = [
        (format!("case-{:016x}.s", shrunk.case_seed), shrunk, true),
        (
            format!("case-{:016x}.orig.s", original.case_seed),
            original,
            false,
        ),
    ];
    for (name, prog, is_shrunk) in cases {
        let path = dir.join(name);
        let body = format!("{}{}", header(prog, div, cfg, is_shrunk), prog.render());
        match std::fs::write(&path, body) {
            Ok(()) => written.push(path),
            Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
        }
    }
    written
}

/// Runs `prog` through the time-travel recorder for `window_ms` of
/// simulated time on the harvested supply, self-verifies the recording
/// replays divergence-free, and writes it as `case-<seed>.edbr`. The
/// recording embeds its spec, so `edb_core::replay::replay` (or the
/// session server) can step back through the failure in a fresh
/// process. Returns `None` (with a note on stderr) if anything along
/// the way fails — recording is a courtesy on top of the `.s` artifact,
/// never the verdict.
pub fn record_reproducer(prog: &Program, window_ms: u64) -> Option<PathBuf> {
    // The generated source is self-contained (own `.org` + reset
    // vector): flash the raw image rather than wrapping it in libEDB.
    let mut spec = SessionSpec::harvested(&prog.render(), prog.case_seed);
    if let Some(fw) = &mut spec.firmware {
        fw.wrap = false;
    }
    let mut session = match spec.record(64) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fuzz: cannot record case {:#x}: {e}", prog.case_seed);
            return None;
        }
    };
    session.advance(SimTime::from_ms(window_ms));
    let recording = session.stop_recording()?;
    if let Err(d) = edb_core::replay::verify(&recording) {
        eprintln!(
            "fuzz: recording of case {:#x} does not replay cleanly: {d}",
            prog.case_seed
        );
        return None;
    }
    let dir = PathBuf::from(ARTIFACT_DIR);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("fuzz: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("case-{:016x}.edbr", prog.case_seed));
    match recording.save(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("fuzz: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_reproducer_replays_divergence_free() {
        let prog = crate::gen::generate(0x51AB);
        let path = record_reproducer(&prog, 3).expect("recording written");
        let recording = edb_replay::Recording::load(&path).expect("recording loads");
        let report = edb_core::replay::verify(&recording).expect("replays cleanly");
        assert!(report.snapshots >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_carries_seed_arm_and_repro_command() {
        let prog = crate::gen::generate(0xABCD);
        let div = Divergence::new("device", "v_cap bits diverged");
        let cfg = FuzzConfig::default();
        let h = header(&prog, &div, &cfg, true);
        assert!(h.contains("0x000000000000abcd"));
        assert!(h.contains("device"));
        assert!(h.contains("--replay-seed 0xabcd"));
        // Header lines are comments: the artifact must still assemble.
        let full = format!("{h}{}", prog.render());
        edb_mcu::asm::assemble(&full).expect("artifact assembles");
    }
}
