//! Greedy instruction-deletion shrinking.
//!
//! Given a failing program and a re-check function, repeatedly try to
//! delete chunks of the body (halving the chunk size down to single
//! instructions, ddmin-style) and keep any deletion that still fails.
//! Labels survive deletion (see [`crate::gen::Program::without`]), so
//! every candidate is still a valid, assemblable program and the
//! divergence check — not the assembler — decides what stays.

use crate::diff::Divergence;
use crate::gen::Program;

/// The outcome of a shrink run.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimized program (possibly the original if nothing smaller
    /// still failed).
    pub program: Program,
    /// The divergence the minimized program still triggers.
    pub divergence: Divergence,
    /// Candidate programs evaluated.
    pub evaluations: usize,
}

/// Greedily minimizes `prog` while `check` keeps failing.
///
/// `check` returns `Some(divergence)` when the candidate still fails.
/// At most `max_steps` candidates are evaluated — each evaluation
/// re-runs the differential engines, so this bounds shrink cost.
pub fn shrink(
    prog: &Program,
    divergence: Divergence,
    max_steps: usize,
    mut check: impl FnMut(&Program) -> Option<Divergence>,
) -> Shrunk {
    let mut best = prog.clone();
    let mut best_div = divergence;
    let mut evals = 0usize;

    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0usize;
        while start < best.len() {
            if evals >= max_steps {
                return Shrunk {
                    program: best,
                    divergence: best_div,
                    evaluations: evals,
                };
            }
            let candidate = best.without(start, chunk);
            if candidate.len() == best.len() {
                break;
            }
            evals += 1;
            if let Some(d) = check(&candidate) {
                best = candidate;
                best_div = d;
                progressed = true;
                // Same start now names the next chunk; don't advance.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    Shrunk {
        program: best,
        divergence: best_div,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn shrink_finds_a_single_culprit_line() {
        // Failure oracle: "fails" iff the body still contains a `mul`.
        let mut prog = generate(99);
        prog.body[7].op = "mul r3, r4".to_string();
        let fails = |p: &Program| {
            p.body
                .iter()
                .any(|l| l.op.starts_with("mul"))
                .then(|| Divergence::new("mcu", "synthetic"))
        };
        assert!(fails(&prog).is_some(), "seed program must fail");
        let out = shrink(&prog, Divergence::new("mcu", "synthetic"), 10_000, fails);
        assert_eq!(out.program.len(), 1, "exactly the culprit survives");
        assert!(out.program.body[0].op.starts_with("mul"));
        // The shrunk program still assembles.
        edb_mcu::asm::assemble(&out.program.render()).expect("assembles");
    }

    #[test]
    fn shrink_respects_the_evaluation_budget() {
        let prog = generate(5);
        let always = |_: &Program| Some(Divergence::new("mcu", "always"));
        let out = shrink(&prog, Divergence::new("mcu", "always"), 3, always);
        assert!(out.evaluations <= 3);
    }
}
