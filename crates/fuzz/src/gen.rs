//! Seeded random program generator.
//!
//! Programs are generated as *assembly text* and pushed through the real
//! two-pass assembler (`edb_mcu::asm`), so the fuzzer exercises the same
//! front-end as every hand-written target app. The instruction mix is
//! weighted toward what the predecode cache and the span batcher find
//! hard: two-word instructions, loads/stores split across the SRAM/FRAM
//! boundary, stores *into the instruction stream* (self-modifying code),
//! port traffic that breaks integration spans, and data-dependent
//! branches.
//!
//! Every generated program is shaped so that greedy line deletion keeps
//! it assemblable: each body slot owns a label (`b0`, `b1`, ...) that
//! jump instructions may target, and deleting a slot re-attaches its
//! labels to the next surviving line (or to the trailing `wrap` loop),
//! so references never dangle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Where generated code lives (start of FRAM, like the curated apps).
pub const CODE_ORG: u16 = 0x4400;

/// One body slot: an instruction plus the labels that point at it.
#[derive(Debug, Clone)]
pub struct BodyLine {
    /// Indices `k` rendered as `b{k}:` in front of this line.
    pub labels: Vec<usize>,
    /// The instruction text (assembler syntax, no label, no comment).
    pub op: String,
}

/// The fixed trailer rendered after the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Epilogue {
    /// `wrap: jmp start` — the program runs forever and the fuzz arms
    /// bound it by simulated time (the differential default).
    Wrap,
    /// `wrap: halt` — the program terminates, so static WCEC bounds
    /// apply end-to-end (the `--analyze` soundness arm).
    Halt,
}

/// A generated (or shrunk) fuzz program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The case seed the program was generated from.
    pub case_seed: u64,
    /// Body instructions in order.
    pub body: Vec<BodyLine>,
    /// Labels whose slot was deleted past the end of the body; rendered
    /// on the `wrap` line so jump targets never dangle.
    pub tail_labels: Vec<usize>,
    /// What follows the body (wrap loop or halt).
    pub epilogue: Epilogue,
}

impl Program {
    /// Number of body instructions.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Renders the program as assembler source. The fixed prologue sets
    /// up the stack; the fixed epilogue loops forever (fuzz runs are
    /// time-bounded) and provides the `h0` helper that `call` sites
    /// target.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(64 * (self.body.len() + 8));
        s.push_str(&format!(
            ".org {CODE_ORG:#06x}\nstart:\n    movi sp, 0x2400\n"
        ));
        for line in &self.body {
            for k in &line.labels {
                s.push_str(&format!("b{k}:\n"));
            }
            s.push_str("    ");
            s.push_str(&line.op);
            s.push('\n');
        }
        for k in &self.tail_labels {
            s.push_str(&format!("b{k}:\n"));
        }
        match self.epilogue {
            Epilogue::Wrap => s.push_str("wrap:\n    jmp start\nh0:\n    add r7, 1\n    ret\n"),
            Epilogue::Halt => s.push_str("wrap:\n    halt\nh0:\n    add r7, 1\n    ret\n"),
        }
        s.push_str(".org 0xFFFE\n.word start\n");
        s
    }

    /// A copy with body slots `range` deleted; their labels move to the
    /// next surviving line so every `b{k}` reference stays defined.
    pub fn without(&self, start: usize, len: usize) -> Program {
        let end = (start + len).min(self.body.len());
        let mut out = Program {
            case_seed: self.case_seed,
            body: Vec::with_capacity(self.body.len().saturating_sub(end - start)),
            tail_labels: self.tail_labels.clone(),
            epilogue: self.epilogue,
        };
        let mut orphans: Vec<usize> = Vec::new();
        for (i, line) in self.body.iter().enumerate() {
            if (start..end).contains(&i) {
                orphans.extend(line.labels.iter().copied());
            } else {
                let mut line = line.clone();
                if !orphans.is_empty() {
                    let mut labels = std::mem::take(&mut orphans);
                    labels.extend(line.labels);
                    line.labels = labels;
                }
                out.body.push(line);
            }
        }
        if !orphans.is_empty() {
            orphans.extend(std::mem::take(&mut out.tail_labels));
            out.tail_labels = orphans;
        }
        out
    }
}

/// The register pool the generator draws from (r13/r14 are left to the
/// composite templates; sp is set by the prologue and then fair game
/// for chaos through `mov`).
fn reg(rng: &mut SmallRng) -> u8 {
    rng.gen_range(0u8..13)
}

fn sram_addr(rng: &mut SmallRng) -> u16 {
    rng.gen_range(0x1C00u16..0x23C0)
}

fn fram_addr(rng: &mut SmallRng) -> u16 {
    rng.gen_range(0x6000u16..0x6800)
}

/// An address in unmapped space (peripheral hole below SRAM or the gap
/// between SRAM and FRAM) — exercises the bus-fault path, which must be
/// identical with and without the predecode cache.
fn wild_addr(rng: &mut SmallRng) -> u16 {
    if rng.gen_bool(0.5) {
        rng.gen_range(0x0100u16..0x1B00)
    } else {
        rng.gen_range(0x2500u16..0x4300)
    }
}

const ALU_OPS: &[&str] = &[
    "add", "sub", "and", "or", "xor", "shl", "shr", "sar", "adc", "sbc", "mul", "neg", "not",
];
const ALUI_OPS: &[&str] = &["add", "sub", "and", "or", "xor", "shl", "shr"];
const CONDS: &[&str] = &["jz", "jnz", "jc", "jnc", "jn", "jge", "jl", "jgt", "jle"];

/// Generates the deterministic program for `seed`.
///
/// `n_slots` body slots are produced (composite templates fill several
/// slots at once), each owning one jump label.
pub fn generate(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xED_B0_F0_5E);
    let n_slots = rng.gen_range(12usize..=44);
    let mut ops: Vec<String> = Vec::with_capacity(n_slots);

    // Seed pointer registers early so memory templates have somewhere
    // sensible to aim (later instructions are free to clobber them).
    ops.push(format!("movi r1, {:#06x}", sram_addr(&mut rng)));
    ops.push(format!("movi r2, {:#06x}", fram_addr(&mut rng)));

    while ops.len() < n_slots {
        let slot = ops.len();
        match rng.gen_range(0u32..100) {
            // Immediate loads: small constants, SRAM/FRAM addresses,
            // code labels, and raw 16-bit values (two-word forms).
            0..=15 => {
                let rd = reg(&mut rng);
                let imm = match rng.gen_range(0u32..5) {
                    0 => format!("{:#x}", rng.gen_range(0u16..64)),
                    1 => format!("{:#06x}", sram_addr(&mut rng)),
                    2 => format!("{:#06x}", fram_addr(&mut rng)),
                    3 => format!("b{}", rng.gen_range(0usize..n_slots)),
                    _ => format!("{:#06x}", rng.gen::<u16>()),
                };
                ops.push(format!("movi r{rd}, {imm}"));
            }
            // Register ALU soup.
            16..=29 => {
                let op = ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())];
                ops.push(format!("{op} r{}, r{}", reg(&mut rng), reg(&mut rng)));
            }
            // Immediate ALU (often two-word).
            30..=37 => {
                let op = ALUI_OPS[rng.gen_range(0usize..ALUI_OPS.len())];
                let imm: u16 = if rng.gen_bool(0.5) {
                    rng.gen_range(0u16..16)
                } else {
                    rng.gen()
                };
                ops.push(format!("{op}i r{}, {imm:#x}", reg(&mut rng)));
            }
            38..=42 => ops.push(format!("mov r{}, r{}", reg(&mut rng), reg(&mut rng))),
            // Loads/stores through the pointer registers (and through
            // whatever garbage ended up in them).
            43..=54 => {
                let rb = if rng.gen_bool(0.7) {
                    if rng.gen_bool(0.5) {
                        1
                    } else {
                        2
                    }
                } else {
                    reg(&mut rng)
                };
                let off = rng.gen_range(0u16..0x30);
                let r = reg(&mut rng);
                match rng.gen_range(0u32..4) {
                    0 => ops.push(format!("ld r{r}, [r{rb} + {off:#x}]")),
                    1 => ops.push(format!("st [r{rb} + {off:#x}], r{r}")),
                    2 => ops.push(format!("ldb r{r}, [r{rb} + {off:#x}]")),
                    _ => ops.push(format!("stb [r{rb} + {off:#x}], r{r}")),
                }
            }
            // Self-modifying stores into the instruction stream: word
            // and byte stores at offsets 0..=3 from a code label, so
            // both words of two-word instructions (and both bytes of a
            // word) get patched under the predecode cache.
            55..=62 => {
                let target = rng.gen_range(0usize..n_slots);
                let src = reg(&mut rng);
                ops.push(format!("movi r13, b{target}"));
                if ops.len() >= n_slots {
                    break;
                }
                if rng.gen_bool(0.6) {
                    let off = if rng.gen_bool(0.5) { 0 } else { 2 };
                    ops.push(format!("st [r13 + {off:#x}], r{src}"));
                } else {
                    let off = rng.gen_range(0u16..4);
                    ops.push(format!("stb [r13 + {off:#x}], r{src}"));
                }
            }
            // Compare + conditional branch (forward-biased so most
            // programs keep flowing; the wrap loop restarts them).
            63..=72 => {
                let rd = reg(&mut rng);
                if rng.gen_bool(0.5) {
                    ops.push(format!("cmpi r{rd}, {:#x}", rng.gen_range(0u16..256)));
                } else {
                    ops.push(format!("cmp r{rd}, r{}", reg(&mut rng)));
                }
                if ops.len() >= n_slots {
                    break;
                }
                let cond = CONDS[rng.gen_range(0usize..CONDS.len())];
                let target = if slot + 2 < n_slots && rng.gen_bool(0.8) {
                    rng.gen_range(slot + 1..n_slots)
                } else {
                    rng.gen_range(0usize..n_slots)
                };
                ops.push(format!("{cond} b{target}"));
            }
            // Port writes: GPIO, code markers, UART — the events that
            // break integration spans — plus the odd unmapped port.
            73..=80 => {
                let (port, val): (u8, u16) = match rng.gen_range(0u32..4) {
                    0 => (0x00, rng.gen_range(0u16..16)),      // GPIO_OUT
                    1 => (0x02, rng.gen_range(1u16..4)),       // CODE_MARKER
                    2 => (0x08, rng.gen_range(0x20u16..0x7F)), // UART_TX
                    _ => (rng.gen_range(0x20u8..0x80), rng.gen()),
                };
                ops.push(format!("movi r12, {val:#x}"));
                if ops.len() >= n_slots {
                    break;
                }
                ops.push(format!("out {port:#04x}, r12"));
            }
            // Port reads: status registers, timer, and the self-ADC
            // (50 µs busy window — a silent span deadline).
            81..=86 => {
                let port: u8 = match rng.gen_range(0u32..5) {
                    0 => 0x0A, // ADC_SELF
                    1 => 0x01, // GPIO_IN
                    2 => 0x09, // UART_STATUS
                    3 => 0x0B, // TIMER_LO
                    _ => 0x0C, // TIMER_HI
                };
                ops.push(format!("in r{}, {port:#04x}", reg(&mut rng)));
            }
            // Stack traffic.
            87..=90 => {
                if rng.gen_bool(0.6) {
                    ops.push(format!("push r{}", reg(&mut rng)));
                } else {
                    ops.push(format!("pop r{}", reg(&mut rng)));
                }
            }
            // Calls: the fixed helper, or an indirect jump through a
            // register loaded with a code label.
            91..=93 => ops.push("call h0".to_string()),
            94..=95 => {
                let target = rng.gen_range(0usize..n_slots);
                ops.push(format!("movi r14, b{target}"));
                if ops.len() >= n_slots {
                    break;
                }
                if rng.gen_bool(0.5) {
                    ops.push("jmpr r14".to_string());
                } else {
                    ops.push("callr r14".to_string());
                }
            }
            // Wild-pointer stores (the paper's "bricks the device until
            // reflash" failure mode) — bus faults must be identical on
            // every configuration.
            96..=97 => {
                ops.push(format!("movi r13, {:#06x}", wild_addr(&mut rng)));
                if ops.len() >= n_slots {
                    break;
                }
                ops.push(format!("st [r13 + 0x0], r{}", reg(&mut rng)));
            }
            _ => {
                let filler = ["nop", "ei", "di"];
                ops.push(filler[rng.gen_range(0usize..filler.len())].to_string());
            }
        }
    }
    ops.truncate(n_slots);

    Program {
        case_seed: seed,
        body: ops
            .into_iter()
            .enumerate()
            .map(|(k, op)| BodyLine {
                labels: vec![k],
                op,
            })
            .collect(),
        tail_labels: Vec::new(),
        epilogue: Epilogue::Wrap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_mcu::asm::assemble;

    #[test]
    fn generated_programs_assemble() {
        for seed in 0..200u64 {
            let prog = generate(seed);
            let src = prog.render();
            assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(1234).render();
        let b = generate(1234).render();
        assert_eq!(a, b);
        assert_ne!(a, generate(1235).render());
    }

    #[test]
    fn deletion_preserves_labels_and_assembles() {
        let prog = generate(7);
        let n = prog.len();
        for start in 0..n {
            for len in [1usize, 3, n] {
                let cut = prog.without(start, len);
                assert_eq!(cut.len(), n - len.min(n - start));
                assemble(&cut.render())
                    .unwrap_or_else(|e| panic!("cut {start}+{len}: {e}\n{}", cut.render()));
            }
        }
        // Deleting everything leaves an assemblable skeleton with every
        // label parked on the wrap line.
        let empty = prog.without(0, n);
        assert!(empty.is_empty());
        assert_eq!(empty.tail_labels.len(), n);
        assemble(&empty.render()).expect("skeleton assembles");
    }
}
