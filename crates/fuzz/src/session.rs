//! Debug-session fuzzing: random command sequences through a noisy
//! debug UART, with brown-outs injected mid-exchange.
//!
//! Each trial boots a WISP-class target whose firmware fills a known
//! FRAM window and then fails an EDB assertion, opening a keep-alive
//! debug session. The engine then drives a seeded sequence of
//! `CMD_READ` / `CMD_WRITE` / `CMD_GET_PC` exchanges while the channel
//! flips, drops, and duplicates bytes ([`ChannelFaultConfig`]), and
//! occasionally collapses the capacitor in the middle of an exchange.
//!
//! The oracle is simple and strict:
//!
//! * a command that completes must carry the **true** value — reads
//!   must match `Memory::peek_word`, acknowledged writes must actually
//!   have landed;
//! * a command that does not complete must surface a **typed**
//!   [`EdbError`] (timeout, corrupt reply, aborted by brown-out) —
//!   never a panic, never a silent wrong answer;
//! * the per-trial outcome stream folds into an FNV-1a digest, so a
//!   whole run is bit-reproducible across `--threads` settings.

use crate::diff::Divergence;
use edb_core::debugger::SessionOutcome;
use edb_core::{ChannelFaultConfig, DebugRequest, EdbError, SessionPoll, System};
use edb_device::DeviceConfig;
use edb_energy::{SimTime, TheveninSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// First word of the FRAM window the firmware fills at every boot.
pub const WINDOW_BASE: u16 = 0x6000;
/// Number of words in the window.
pub const WINDOW_WORDS: u16 = 32;

/// Knobs for one session trial.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Commands to issue per session.
    pub commands: u32,
    /// Per-delivered-byte bit-flip probability.
    pub bit_flip: f64,
    /// Per-byte drop probability.
    pub drop: f64,
    /// Per-byte duplication probability.
    pub duplicate: f64,
    /// Probability of collapsing the capacitor mid-exchange.
    pub brownout_rate: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            commands: 6,
            bit_flip: 0.003,
            drop: 0.002,
            duplicate: 0.002,
            brownout_rate: 0.2,
        }
    }
}

/// What happened across one fuzzed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Commands that completed on the first attempt.
    pub completed: u32,
    /// Commands that completed after one or more retries.
    pub retried: u32,
    /// Commands that aborted with a typed error.
    pub aborted: u32,
    /// Brown-outs injected mid-exchange.
    pub injected_brownouts: u32,
    /// FNV-1a digest of the outcome stream (order-sensitive).
    pub digest: u64,
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
pub fn fnv_fold(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = (acc ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Combines per-trial digests (in trial order) into a run digest.
pub fn combine_digests(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = FNV_OFFSET;
    for d in digests {
        acc = fnv_fold(acc, &d.to_le_bytes());
    }
    acc
}

/// The target firmware: refill the FRAM window, then fail an assertion
/// so EDB tethers the target and serves the interactive session. After
/// any reboot the same thing happens again, which is what re-opens the
/// session while a parked command waits.
fn session_app() -> Result<edb_mcu::Image, Divergence> {
    let src = edb_core::libedb::wrap_program(
        r#"
        .org 0x4400
    main:
        movi sp, 0x2400
        movi r1, 0x6000
        movi r0, 0x1101
        movi r3, 32
    fill:
        st   [r1], r0
        add  r1, 2
        add  r0, 0x0101
        sub  r3, 1
        cmpi r3, 0
        jnz  fill
    again:
        movi r0, 1
        call __edb_assert_fail
        jmp  again
        .org 0xFFFE
        .word main
        "#,
    );
    edb_mcu::asm::assemble(&src)
        .map_err(|e| Divergence::new("session", format!("firmware does not assemble: {e}")))
}

/// One command the fuzzer can issue.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read { addr: u16 },
    Write { addr: u16, value: u16 },
    GetPc,
}

/// Draws a command over the FRAM window.
fn draw_op(rng: &mut SmallRng) -> Op {
    let addr = WINDOW_BASE + 2 * rng.gen_range(0..WINDOW_WORDS);
    match rng.gen_range(0u32..9) {
        0..=3 => Op::Read { addr },
        4..=7 => Op::Write {
            addr,
            value: rng.gen(),
        },
        _ => Op::GetPc,
    }
}

/// Runs one fuzzed session. Returns the stats on a clean trial and a
/// [`Divergence`] when any invariant breaks (wrong value, stuck
/// command, session that never opens).
pub fn run_session_case(seed: u64, cfg: &SessionConfig) -> Result<SessionStats, Divergence> {
    let image = session_app()?;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E55_10F2);
    // A stiff-ish source so the target can reboot and re-assert within
    // the host's parked-command window at least some of the time; the
    // resistance is varied so both the re-arm path and the park-expiry
    // path get exercised.
    let r_th = [220.0, 470.0, 1000.0][rng.gen_range(0..3usize)];
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(TheveninSource::new(3.2, r_th))
        .seed(seed)
        .channel_fault(ChannelFaultConfig {
            bit_flip: cfg.bit_flip,
            drop: cfg.drop,
            duplicate: cfg.duplicate,
            seed: seed ^ 0x0F15_E5EE,
        })
        .build();
    sys.flash(&image);
    if !sys.wait_for_session(SimTime::from_secs(2)) {
        return Err(Divergence::new("session", "assert session never opened"));
    }

    let mut stats = SessionStats {
        digest: FNV_OFFSET,
        ..SessionStats::default()
    };
    for cmd_ix in 0..cfg.commands {
        // A brown-out (injected or otherwise) tears the session down;
        // the target reboots, refills the window, and re-asserts.
        if !sys.edb().is_some_and(|e| e.session_active())
            && !sys.wait_for_session(SimTime::from_secs(2))
        {
            return Err(Divergence::new(
                "session",
                format!("cmd {cmd_ix}: session did not re-open after brown-out"),
            ));
        }
        let op = draw_op(&mut rng);
        let inject_at = rng
            .gen_bool(cfg.brownout_rate)
            .then(|| rng.gen_range(1u32..40));
        let request = match op {
            Op::Read { addr } => DebugRequest::ReadWord { addr },
            Op::Write { addr, value } => DebugRequest::WriteWord { addr, value },
            Op::GetPc => DebugRequest::GetPc,
        };
        let now = sys.now();
        let id = {
            let (edb, dev) = sys.edb_and_device().expect("EDB attached");
            edb.submit(dev, request, now)
        };

        let deadline = sys.now() + SimTime::from_ms(500);
        let mut steps = 0u32;
        let outcome = loop {
            match sys.edb_mut().poll(id) {
                SessionPoll::Ready(outcome) => break outcome,
                SessionPoll::Superseded => {
                    return Err(Divergence::new(
                        "session",
                        format!("cmd {cmd_ix} ({op:?}): request superseded with one submitter"),
                    ));
                }
                SessionPoll::Pending { .. } => {}
            }
            if sys.now() >= deadline {
                let attempts = sys.edb_mut().cancel_command();
                return Err(Divergence::new(
                    "session",
                    format!("cmd {cmd_ix} ({op:?}): stuck after {attempts} attempt(s)"),
                ));
            }
            if Some(steps) == inject_at {
                sys.device_mut().set_v_cap(1.0);
                stats.injected_brownouts += 1;
            }
            sys.step();
            steps += 1;
        };

        match outcome {
            Ok(response) => {
                let word = response.word();
                match op {
                    Op::Read { addr } => {
                        let truth = sys.device().mem().peek_word(addr);
                        if word != truth {
                            return Err(Divergence::new(
                                "session",
                                format!(
                                    "cmd {cmd_ix}: read {addr:#06x} returned {word:#06x}, \
                                     memory holds {truth:#06x}"
                                ),
                            ));
                        }
                    }
                    Op::Write { addr, value } => {
                        let landed = sys.device().mem().peek_word(addr);
                        if landed != value {
                            return Err(Divergence::new(
                                "session",
                                format!(
                                    "cmd {cmd_ix}: acknowledged write {addr:#06x} <- \
                                     {value:#06x} but memory holds {landed:#06x}"
                                ),
                            ));
                        }
                    }
                    Op::GetPc => {}
                }
                match sys.edb().and_then(|e| e.last_outcome()) {
                    Some(SessionOutcome::Retried { retries }) => {
                        stats.retried += 1;
                        stats.digest = fnv_fold(stats.digest, &[2, *retries as u8]);
                    }
                    _ => {
                        stats.completed += 1;
                        stats.digest = fnv_fold(stats.digest, &[1]);
                    }
                }
                stats.digest = fnv_fold(stats.digest, &word.to_le_bytes());
            }
            Err(error) => {
                // Any typed error is a clean abort; encode its shape.
                let code = match &error {
                    EdbError::CommandTimeout { .. } => 3u8,
                    EdbError::AbortedByBrownout { .. } => 4,
                    EdbError::CorruptReply { .. } => 5,
                    _ => 6,
                };
                stats.aborted += 1;
                stats.digest = fnv_fold(stats.digest, &[code]);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_channel_session_completes_every_command() {
        let cfg = SessionConfig {
            commands: 4,
            bit_flip: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            brownout_rate: 0.0,
        };
        let stats = run_session_case(11, &cfg).expect("clean trial");
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.retried, 0);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn noisy_trials_are_deterministic_per_seed() {
        let cfg = SessionConfig::default();
        let a = run_session_case(23, &cfg).expect("trial");
        let b = run_session_case(23, &cfg).expect("trial");
        assert_eq!(a, b);
        assert_eq!(a.completed + a.retried + a.aborted, cfg.commands);
    }

    #[test]
    fn injected_brownouts_abort_or_recover_cleanly() {
        let cfg = SessionConfig {
            commands: 5,
            bit_flip: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            brownout_rate: 1.0,
        };
        let stats = run_session_case(7, &cfg).expect("trial");
        assert!(stats.injected_brownouts > 0);
        assert_eq!(stats.completed + stats.retried + stats.aborted, 5);
    }
}
