//! Power-cycle fault injection: reboot the device at seeded instruction
//! boundaries and check the volatile/non-volatile invariants the whole
//! intermittent-computing model rests on.
//!
//! Checked per injected failure:
//!
//! * **FRAM persists** — the non-volatile image is byte-identical across
//!   the brown-out;
//! * **SRAM and registers clear** — volatile state reads zero after the
//!   reboot, and the CPU restarts from the reset vector;
//! * **cache invalidation holds** — a post-reboot execution with the
//!   (warm, partially invalidated) predecode cache is in lockstep with a
//!   cold-decode twin, so no stale entry for vanished SRAM bytes (or
//!   patched FRAM) survives the cycle;
//! * **checkpoint-restore round-trips** — a Mementos-style checkpointed
//!   counter (from `edb-runtime`) never loses more than the
//!   un-checkpointed tail of work, no matter where the failure lands.

use crate::diff::{assemble_program, Divergence};
use crate::gen::Program;
use edb_device::{Device, DeviceConfig};
use edb_energy::{SimTime, TheveninSource};
use edb_mcu::RESET_VECTOR;
use edb_runtime::{runtime_asm, CheckpointLayout};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs the device until `target` instructions have retired (or `guard`
/// sim time passes — instruction soup can halt or fault, after which no
/// instruction ever retires).
fn run_until_instructions(dev: &mut Device, h: &mut TheveninSource, target: u64, guard: SimTime) {
    while dev.total_instructions() < target && dev.now() < guard {
        dev.step(h, 0.0);
    }
}

/// Forces a brown-out *now* (at the current instruction boundary) by
/// collapsing the capacitor below the supervisor's off threshold, then
/// stepping until the edge fires.
fn force_brownout(dev: &mut Device, h: &mut TheveninSource) -> bool {
    dev.set_v_cap(1.0);
    for _ in 0..8 {
        if dev
            .step(h, 0.0)
            .power_edge
            .map(|e| e == edb_energy::PowerEdge::BrownOut)
            .unwrap_or(false)
        {
            return true;
        }
        if !dev.powered() {
            return true;
        }
    }
    false
}

/// Recharges past the turn-on threshold and steps until the supervisor
/// reboots the CPU.
fn force_turn_on(dev: &mut Device, h: &mut TheveninSource) -> bool {
    dev.set_v_cap(3.0);
    for _ in 0..8 {
        if dev
            .step(h, 0.0)
            .power_edge
            .map(|e| e == edb_energy::PowerEdge::TurnOn)
            .unwrap_or(false)
        {
            return true;
        }
    }
    false
}

/// Fault-injection arm for one generated program: `cuts` reboots at
/// seeded instruction boundaries, each followed by the invariant checks
/// and a bounded lockstep race against a cold-decode twin.
pub fn inject_power_cycles(prog: &Program, seed: u64) -> Option<Divergence> {
    let image = match assemble_program(prog) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA_17);
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut h = TheveninSource::new(3.2, 1500.0);
    if !force_turn_on(&mut dev, &mut h) {
        return Some(Divergence::new("fault", "device refused to turn on"));
    }

    let cuts = rng.gen_range(2u32..=4);
    for cut in 0..cuts {
        let target = dev.total_instructions() + rng.gen_range(200u64..3000);
        let guard = SimTime::from_ns(dev.now().as_ns() + 20_000_000);
        run_until_instructions(&mut dev, &mut h, target, guard);

        // The cut may land inside a natural off window (the sawtooth
        // spends most of its period recharging); an injected brown-out
        // only means something if the device is on when it hits.
        if !dev.powered() && !force_turn_on(&mut dev, &mut h) {
            return Some(Divergence::new(
                "fault",
                format!("cut {cut}: could not repower before the cut"),
            ));
        }

        let reboots_before = dev.reboots();
        if !force_brownout(&mut dev, &mut h) {
            return Some(Divergence::new(
                "fault",
                format!("cut {cut}: brown-out edge never fired"),
            ));
        }
        if dev.reboots() != reboots_before + 1 {
            return Some(Divergence::new(
                "fault",
                format!(
                    "cut {cut}: reboot count {} -> {}",
                    reboots_before,
                    dev.reboots()
                ),
            ));
        }
        if let Some(at) = dev.mem().sram().iter().position(|&b| b != 0) {
            return Some(Divergence::new(
                "fault",
                format!("cut {cut}: SRAM byte survived brown-out at +{at:#x}"),
            ));
        }

        // Snapshot FRAM with the device dead (the last instructions
        // before the edge may legitimately have written it); it must be
        // byte-identical through the off period and the reboot.
        let fram_off = dev.mem().fram().to_vec();
        if !force_turn_on(&mut dev, &mut h) {
            return Some(Divergence::new(
                "fault",
                format!("cut {cut}: turn-on edge never fired"),
            ));
        }
        if dev.mem().fram() != fram_off.as_slice() {
            let at = dev
                .mem()
                .fram()
                .iter()
                .zip(&fram_off)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Some(Divergence::new(
                "fault",
                format!("cut {cut}: FRAM changed across the power cycle at +{at:#x}"),
            ));
        }
        if dev.cpu().regs != [0u16; 16] {
            return Some(Divergence::new(
                "fault",
                format!(
                    "cut {cut}: registers survived the reboot: {:x?}",
                    dev.cpu().regs
                ),
            ));
        }
        let reset_pc = dev.mem().peek_word(RESET_VECTOR);
        if dev.cpu().pc != reset_pc {
            return Some(Divergence::new(
                "fault",
                format!(
                    "cut {cut}: post-reboot pc {:#06x} != reset vector {:#06x}",
                    dev.cpu().pc,
                    reset_pc
                ),
            ));
        }

        // Cache-invalidation race: the freshly rebooted device (warm
        // cache minus whatever the power cycle and write probes dropped)
        // against a cold-decode clone. Any stale entry shows up as a
        // divergence within the window.
        let mut cold = dev.clone();
        cold.set_decode_cache_enabled(false);
        let mut h_warm = h;
        let mut h_cold = h;
        for step in 0..1500u32 {
            dev.step(&mut h_warm, 0.0);
            cold.step(&mut h_cold, 0.0);
            if dev.cpu().pc != cold.cpu().pc
                || dev.cpu().regs != cold.cpu().regs
                || dev.v_cap().to_bits() != cold.v_cap().to_bits()
                || dev.total_instructions() != cold.total_instructions()
            {
                return Some(Divergence::new(
                    "fault",
                    format!(
                        "cut {cut}, step {step}: warm cache diverged from cold decode \
                         (pc {:#06x} vs {:#06x})",
                        dev.cpu().pc,
                        cold.cpu().pc
                    ),
                ));
            }
        }
        if dev.mem().sram() != cold.mem().sram() || dev.mem().fram() != cold.mem().fram() {
            return Some(Divergence::new(
                "fault",
                format!("cut {cut}: post-reboot memory image diverged from cold decode"),
            ));
        }
        h = h_warm;
    }
    None
}

/// The checkpointed-counter program used by the round-trip arm.
fn checkpointed_counter() -> String {
    format!(
        r#"
        .equ MIRROR, 0x6000
        .org 0x4400
        init:
            movi sp, 0x2400
            movi r0, 0
        loop:
            add  r0, 1
            movi r1, MIRROR
            st   [r1], r0
            call __cp_checkpoint
            jmp  loop
        {runtime}
        .org 0xFFFE
        .word __cp_boot
        "#,
        runtime = runtime_asm("init")
    )
}

/// Checkpoint-restore round-trip arm: power failures at seeded
/// instruction boundaries must never make the checkpointed counter
/// regress by more than the one un-checkpointed iteration in flight.
pub fn checkpoint_round_trip(seed: u64) -> Option<Divergence> {
    let src = checkpointed_counter();
    let image = match edb_mcu::asm::assemble(&src) {
        Ok(i) => i,
        Err(e) => {
            return Some(Divergence::new(
                "checkpoint",
                format!("runtime program does not assemble: {e}"),
            ))
        }
    };
    let layout = match CheckpointLayout::from_image(&image) {
        Some(l) => l,
        None => return Some(Divergence::new("checkpoint", "missing checkpoint symbols")),
    };

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4EC_4401);
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut h = TheveninSource::new(3.2, 1500.0);
    if !force_turn_on(&mut dev, &mut h) {
        return Some(Divergence::new("checkpoint", "device refused to turn on"));
    }

    let mut high_water = 0u16;
    for cut in 0..rng.gen_range(3u32..=6) {
        let target = dev.total_instructions() + rng.gen_range(500u64..6000);
        let guard = SimTime::from_ns(dev.now().as_ns() + 40_000_000);
        run_until_instructions(&mut dev, &mut h, target, guard);
        high_water = high_water.max(dev.mem().peek_word(0x6000));

        if !force_brownout(&mut dev, &mut h) {
            return Some(Divergence::new("checkpoint", "brown-out edge never fired"));
        }
        if !force_turn_on(&mut dev, &mut h) {
            return Some(Divergence::new("checkpoint", "turn-on edge never fired"));
        }
        // Let the restore path run, then check monotonic progress.
        let target = dev.total_instructions() + 600;
        let guard = SimTime::from_ns(dev.now().as_ns() + 20_000_000);
        run_until_instructions(&mut dev, &mut h, target, guard);
        let resumed = dev.mem().peek_word(0x6000);
        if resumed + 2 < high_water {
            return Some(Divergence::new(
                "checkpoint",
                format!("cut {cut}: counter regressed {high_water} -> {resumed}"),
            ));
        }
        high_water = high_water.max(resumed);
    }
    if layout.committed(dev.mem()).is_none() {
        return Some(Divergence::new(
            "checkpoint",
            "no committed checkpoint after repeated cycles",
        ));
    }
    if high_water < 3 {
        return Some(Divergence::new(
            "checkpoint",
            format!("counter made no progress (high water {high_water})"),
        ));
    }
    None
}
