//! The checkpoint-strategy race: every zoo member against `FullDump`
//! under adversarial power-failure injection.
//!
//! Two oracles, both driven by a seeded injection *schedule* (where the
//! cuts land and whether each is an abrupt collapse or a gradual sag):
//!
//! * **Lockstep** — [`Differential`] must be *bit-identical* to
//!   [`FullDump`] through the whole run: both commit at the same
//!   instruction triggers with the same logical content (a delta chain
//!   reconstructs the full image), host-side FRAM traffic costs the
//!   target nothing, so registers, pc, capacitor bits, and SRAM must
//!   agree at every step and the mailbox at the end.
//! * **Result** — every strategy (including [`Speculative`], whose
//!   commit *points* legitimately differ) must drive a
//!   restart-idempotent kernel to the same published result as an
//!   uninterrupted run. The kernels keep all progress in volatile
//!   state and publish a deterministic value to an FRAM mailbox, so
//!   any mix of checkpoint restores and cold reboots converges on the
//!   oracle answer — or the strategy corrupted a restore.
//!
//! A divergence is minimized by ddmin over the injection schedule
//! ([`shrink_schedule`]): the smallest set of cuts that still breaks
//! the race is the bug report.
//!
//! [`Differential`]: StrategyKind::Differential
//! [`FullDump`]: StrategyKind::FullDump
//! [`Speculative`]: StrategyKind::Speculative

use crate::diff::Divergence;
use edb_device::{Device, DeviceConfig};
use edb_energy::{PowerEdge, SimTime, TheveninSource};
use edb_runtime::ckpt::{CkptConfig, CkptEngine, StrategyKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// FRAM word the kernels publish their result to.
pub const MAILBOX: u16 = 0x6000;
/// FRAM word set to [`DONE_MAGIC`] after the result is published.
pub const FLAG: u16 = 0x6002;
/// Completion marker.
pub const DONE_MAGIC: u16 = 0xBEEF;

/// One restart-idempotent kernel: progress lives in registers and SRAM
/// only, inputs are constants (in code or read-only FRAM tables), and
/// the deterministic result is published to the mailbox. Any interleave
/// of checkpoint restores and cold reboots must publish the same value.
#[derive(Debug, Clone)]
pub struct RaceKernel {
    /// Short name for reports.
    pub name: &'static str,
    /// Assembly source.
    pub source: String,
}

fn prologue() -> String {
    "    .org 0x4400\ninit:\n    movi sp, 0x2400\n".to_string()
}

fn epilogue(result_reg: &str) -> String {
    format!(
        "publish:\n    movi r14, {MAILBOX:#06x}\n    st   [r14], {result_reg}\n    \
         movi r13, {DONE_MAGIC:#06x}\n    st   [r14 + 2], r13\nspin:\n    jmp  spin\n    \
         .org 0xFFFE\n    .word init\n"
    )
}

/// The kernel suite the race runs across.
pub fn kernels() -> Vec<RaceKernel> {
    let mut out = Vec::new();

    // Triangular sum 1..=600 (wraps mod 2^16): pure register progress.
    out.push(RaceKernel {
        name: "sum",
        source: format!(
            "{}    movi r0, 0\n    movi r1, 0\nloop:\n    add  r1, 1\n    add  r0, r1\n    \
             cmpi r1, 600\n    jne  loop\n{}",
            prologue(),
            epilogue("r0")
        ),
    });

    // Iterative Fibonacci, 300 steps mod 2^16.
    out.push(RaceKernel {
        name: "fib",
        source: format!(
            "{}    movi r0, 0\n    movi r1, 1\n    movi r2, 0\nloop:\n    mov  r3, r1\n    \
             add  r1, r0\n    mov  r0, r3\n    add  r2, 1\n    cmpi r2, 300\n    jne  loop\n{}",
            prologue(),
            epilogue("r1")
        ),
    });

    // Rotate-xor checksum over a 32-word FRAM table.
    let table: String = (0..32u32)
        .map(|i| format!("    .word {:#06x}\n", (i * 0x9E37 + 0x79B9) & 0xFFFF))
        .collect();
    out.push(RaceKernel {
        name: "checksum",
        source: format!(
            "{}    movi r0, 0\n    movi r1, 0x7000\n    movi r2, 0\nloop:\n    ld   r3, [r1]\n    \
             mov  r4, r0\n    shl  r4, 1\n    shr  r0, 15\n    or   r0, r4\n    xor  r0, r3\n    \
             add  r1, 2\n    add  r2, 1\n    cmpi r2, 32\n    jne  loop\n{}    \
             .org 0x7000\n{table}",
            prologue(),
            epilogue("r0")
        ),
    });

    // Generate 16 pseudo-random words into SRAM, bubble-sort ascending,
    // publish an order-sensitive digest of the sorted array.
    out.push(RaceKernel {
        name: "sort",
        source: format!(
            "{}    movi r0, 0x1C20\n    movi r1, 7\n    movi r2, 0\nfill:\n    \
             mul  r1, 31\n    add  r1, 7\n    st   [r0], r1\n    add  r0, 2\n    add  r2, 1\n    \
             cmpi r2, 16\n    jne  fill\n\
             pass:\n    movi r5, 0\n    movi r0, 0x1C20\n    movi r2, 0\n\
             sweep:\n    ld   r3, [r0]\n    ld   r4, [r0 + 2]\n    cmp  r3, r4\n    jle  inorder\n    \
             st   [r0], r4\n    st   [r0 + 2], r3\n    movi r5, 1\ninorder:\n    add  r0, 2\n    \
             add  r2, 1\n    cmpi r2, 15\n    jne  sweep\n    cmpi r5, 0\n    jne  pass\n\
             digest:\n    movi r0, 0x1C20\n    movi r1, 0\n    movi r2, 0\n\
             dloop:\n    ld   r3, [r0]\n    mul  r1, 33\n    xor  r1, r3\n    add  r0, 2\n    \
             add  r2, 1\n    cmpi r2, 16\n    jne  dloop\n{}",
            prologue(),
            epilogue("r1")
        ),
    });

    // Dot product of two 16-word FRAM vectors, accumulator in SRAM (so
    // the differential tracker sees real dirty-word churn).
    let vec_a: String = (0..16u32)
        .map(|i| format!("    .word {:#06x}\n", (i * 3 + 1) & 0xFFFF))
        .collect();
    let vec_b: String = (0..16u32)
        .map(|i| format!("    .word {:#06x}\n", (i * 5 + 2) & 0xFFFF))
        .collect();
    out.push(RaceKernel {
        name: "dot",
        source: format!(
            "{}    movi r0, 0x7100\n    movi r1, 0x7140\n    movi r2, 0\n    movi r6, 0x1C40\n    \
             movi r5, 0\n    st   [r6], r5\nloop:\n    ld   r3, [r0]\n    ld   r4, [r1]\n    \
             mul  r3, r4\n    ld   r5, [r6]\n    add  r5, r3\n    st   [r6], r5\n    \
             add  r0, 2\n    add  r1, 2\n    add  r2, 1\n    cmpi r2, 16\n    jne  loop\n    \
             ld   r7, [r6]\n{}    .org 0x7100\n{vec_a}    .org 0x7140\n{vec_b}",
            prologue(),
            epilogue("r7")
        ),
    });

    out
}

/// One injected power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    /// Instructions to retire (since the previous cut) before failing.
    pub after_instructions: u64,
    /// `true`: collapse straight past the brown-out threshold (no knee
    /// warning). `false`: sag gradually through the knee first, giving
    /// a speculative strategy its commit window.
    pub abrupt: bool,
}

/// A seeded injection schedule: 2–6 cuts, mixed abrupt and gradual.
pub fn generate_schedule(seed: u64) -> Vec<Cut> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ACE_CA75);
    (0..rng.gen_range(2u32..=6))
        .map(|_| Cut {
            after_instructions: rng.gen_range(80u64..2500),
            abrupt: rng.gen_bool(0.5),
        })
        .collect()
}

/// A strategy arm mid-run: the device, its engine, and its harvester.
struct Arm {
    dev: Device,
    engine: Option<CkptEngine>,
    h: TheveninSource,
}

impl Arm {
    fn new(image: &edb_mcu::Image, kind: Option<StrategyKind>) -> Self {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(image);
        dev.set_v_cap(3.0);
        let engine = kind.map(|k| {
            let mut e = CkptEngine::new(CkptConfig::new(k).interval(96));
            e.attach(dev.mem_mut());
            e
        });
        Arm {
            dev,
            engine,
            h: TheveninSource::new(3.2, 1500.0),
        }
    }

    fn step(&mut self) -> Option<PowerEdge> {
        let step = self.dev.step(&mut self.h, 0.0);
        if let Some(e) = &mut self.engine {
            e.observe(&mut self.dev, step.power_edge);
        }
        step.power_edge
    }

    /// Steps until `n` more instructions retire (bounded by sim time —
    /// the run may be parked in an off window or the spin loop).
    fn run_instructions(&mut self, n: u64) {
        let until = self.dev.total_instructions() + n;
        let guard = SimTime::from_ns(self.dev.now().as_ns() + 80_000_000);
        while self.dev.total_instructions() < until && self.dev.now() < guard {
            self.step();
        }
    }

    /// Injects one cut: fail, then repower (the turn-on restores).
    fn inject(&mut self, cut: Cut) -> Result<(), String> {
        if !self.dev.powered() {
            self.dev.set_v_cap(3.0);
        }
        if cut.abrupt {
            self.dev.set_v_cap(1.0);
        } else {
            // Sag through the knee for one sample, then collapse.
            self.dev.set_v_cap(1.95);
            self.step();
            self.dev.set_v_cap(1.0);
        }
        for _ in 0..8 {
            if self.step() == Some(PowerEdge::BrownOut) {
                break;
            }
        }
        if self.dev.powered() {
            return Err("brown-out edge never fired".into());
        }
        self.dev.set_v_cap(3.0);
        for _ in 0..8 {
            if self.step() == Some(PowerEdge::TurnOn) {
                return Ok(());
            }
        }
        Err("turn-on edge never fired".into())
    }

    /// Runs to completion and reads the mailbox.
    fn finish(&mut self) -> Result<u16, String> {
        let guard = SimTime::from_ns(self.dev.now().as_ns() + 400_000_000);
        while self.dev.mem().peek_word(FLAG) != DONE_MAGIC {
            if self.dev.now() >= guard {
                return Err("kernel never published (flag unset)".into());
            }
            self.step();
        }
        Ok(self.dev.mem().peek_word(MAILBOX))
    }
}

fn assemble(kernel: &RaceKernel) -> Result<edb_mcu::Image, Divergence> {
    edb_mcu::asm::assemble(&kernel.source).map_err(|e| {
        Divergence::new(
            "strategy",
            format!("kernel `{}` does not assemble: {e}", kernel.name),
        )
    })
}

/// The uninterrupted-run oracle result for a kernel.
pub fn oracle_result(kernel: &RaceKernel) -> Result<u16, Divergence> {
    let image = assemble(kernel)?;
    let mut arm = Arm::new(&image, None);
    arm.finish()
        .map_err(|e| Divergence::new("strategy", format!("oracle {}: {e}", kernel.name)))
}

/// Result arm: runs `kind` under the schedule; the published result
/// must equal `oracle`.
pub fn race_result(
    kernel: &RaceKernel,
    kind: StrategyKind,
    schedule: &[Cut],
    oracle: u16,
) -> Option<Divergence> {
    let image = match assemble(kernel) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let mut arm = Arm::new(&image, Some(kind));
    for (i, &cut) in schedule.iter().enumerate() {
        arm.run_instructions(cut.after_instructions);
        if let Err(e) = arm.inject(cut) {
            return Some(Divergence::new(
                "strategy",
                format!("{}/{kind}: cut {i}: {e}", kernel.name),
            ));
        }
    }
    match arm.finish() {
        Ok(got) if got == oracle => None,
        Ok(got) => Some(Divergence::new(
            "strategy",
            format!(
                "{}/{kind}: published {got:#06x}, oracle {oracle:#06x} \
                 (restore corrupted the kernel)",
                kernel.name
            ),
        )),
        Err(e) => Some(Divergence::new(
            "strategy",
            format!("{}/{kind}: {e}", kernel.name),
        )),
    }
}

/// Lockstep arm: `Differential` raced bit-for-bit against `FullDump`
/// under the same schedule. Both commit at the same instruction
/// triggers with the same logical content, so the whole architectural
/// trajectory must agree step by step.
pub fn race_lockstep(kernel: &RaceKernel, schedule: &[Cut]) -> Option<Divergence> {
    let image = match assemble(kernel) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let mut full = Arm::new(&image, Some(StrategyKind::FullDump));
    let mut diff = Arm::new(&image, Some(StrategyKind::Differential));
    let compare = |full: &Arm, diff: &Arm, at: &str| -> Option<Divergence> {
        let (f, d) = (&full.dev, &diff.dev);
        if f.cpu().pc != d.cpu().pc
            || f.cpu().regs != d.cpu().regs
            || f.v_cap().to_bits() != d.v_cap().to_bits()
            || f.total_instructions() != d.total_instructions()
        {
            return Some(Divergence::new(
                "strategy",
                format!(
                    "{}: differential diverged from full_dump at {at} \
                     (pc {:#06x} vs {:#06x}, {} vs {} instructions)",
                    kernel.name,
                    f.cpu().pc,
                    d.cpu().pc,
                    f.total_instructions(),
                    d.total_instructions()
                ),
            ));
        }
        if f.mem().sram() != d.mem().sram() {
            return Some(Divergence::new(
                "strategy",
                format!("{}: SRAM diverged at {at}", kernel.name),
            ));
        }
        None
    };
    // Drive both arms through identical forcing, comparing as we go.
    let lockstep = |full: &mut Arm, diff: &mut Arm, n: u64| {
        let until = full.dev.total_instructions() + n;
        let guard = SimTime::from_ns(full.dev.now().as_ns() + 80_000_000);
        while full.dev.total_instructions() < until && full.dev.now() < guard {
            full.step();
            diff.step();
        }
    };
    for (i, &cut) in schedule.iter().enumerate() {
        lockstep(&mut full, &mut diff, cut.after_instructions);
        if let Some(d) = compare(&full, &diff, &format!("cut {i} (pre-fail)")) {
            return Some(d);
        }
        let a = full.inject(cut);
        let b = diff.inject(cut);
        if let Err(e) = a.and(b) {
            return Some(Divergence::new(
                "strategy",
                format!("{}: cut {i}: {e}", kernel.name),
            ));
        }
        if let Some(d) = compare(&full, &diff, &format!("cut {i} (post-restore)")) {
            return Some(d);
        }
    }
    lockstep(&mut full, &mut diff, 20_000);
    if let Some(d) = compare(&full, &diff, "end of run") {
        return Some(d);
    }
    let (a, b) = (
        full.dev.mem().peek_word(MAILBOX),
        diff.dev.mem().peek_word(MAILBOX),
    );
    if a != b {
        return Some(Divergence::new(
            "strategy",
            format!(
                "{}: mailbox diverged: full_dump {a:#06x}, differential {b:#06x}",
                kernel.name
            ),
        ));
    }
    None
}

/// One complete race trial from a seed: pick a kernel and a schedule,
/// run the lockstep arm and every strategy's result arm.
pub fn check_race(seed: u64) -> Option<Divergence> {
    let suite = kernels();
    let kernel = &suite[(seed as usize) % suite.len()];
    let schedule = generate_schedule(seed);
    check_race_on(kernel, &schedule)
}

/// The race oracle for a fixed kernel and schedule (what the shrinker
/// replays).
pub fn check_race_on(kernel: &RaceKernel, schedule: &[Cut]) -> Option<Divergence> {
    let oracle = match oracle_result(kernel) {
        Ok(v) => v,
        Err(d) => return Some(d),
    };
    if let Some(d) = race_lockstep(kernel, schedule) {
        return Some(d);
    }
    for kind in StrategyKind::ALL {
        if let Some(d) = race_result(kernel, kind, schedule, oracle) {
            return Some(d);
        }
    }
    None
}

/// ddmin over the injection schedule: the smallest subset of cuts for
/// which `check` still reports a divergence. Returns the minimized
/// schedule and its divergence. Call with
/// `|s| check_race_on(kernel, s)` to minimize a real failure.
pub fn shrink_schedule(
    schedule: &[Cut],
    divergence: Divergence,
    check: impl Fn(&[Cut]) -> Option<Divergence>,
) -> (Vec<Cut>, Divergence) {
    let mut current: Vec<Cut> = schedule.to_vec();
    let mut best = divergence;
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() && current.len() > 1 {
            let mut candidate = current.clone();
            let end = (start + chunk).min(candidate.len());
            candidate.drain(start..end);
            if let Some(d) = check(&candidate) {
                current = candidate;
                best = d;
                removed_any = true;
                // Re-test from the same position in the shorter list.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else if !removed_any {
            chunk /= 2;
        }
    }
    (current, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_assembles_and_finishes() {
        for kernel in kernels() {
            let v = oracle_result(&kernel).unwrap_or_else(|d| panic!("{d}"));
            assert_ne!(v, 0, "{}: oracle result must be nonzero", kernel.name);
        }
    }

    #[test]
    fn a_few_race_trials_are_divergence_free() {
        for seed in 1..=5u64 {
            if let Some(d) = check_race(seed) {
                panic!("seed {seed}: {d}");
            }
        }
    }

    #[test]
    fn shrinker_minimizes_to_the_culprit_cut() {
        // Synthetic oracle: the race "diverges" iff the schedule still
        // contains the poisoned cut. ddmin must isolate exactly it.
        let poison = Cut {
            after_instructions: 1234,
            abrupt: true,
        };
        let mut schedule = generate_schedule(11);
        schedule.insert(2, poison);
        let check = |s: &[Cut]| {
            s.contains(&poison)
                .then(|| Divergence::new("strategy", "synthetic"))
        };
        let seed_div = check(&schedule).expect("diverges with poison present");
        let (min, _) = shrink_schedule(&schedule, seed_div, check);
        assert_eq!(min, vec![poison]);
    }
}
