//! The differential executor: one generated program, paired
//! configurations, bit-level comparison at every sync point.
//!
//! Three arms, ordered cheap-to-expensive:
//!
//! 1. **`mcu`** — bare `Cpu` + `Memory`, predecode cache on vs. off,
//!    lockstep per instruction with seeded power cycles in between.
//!    Architectural state is compared after *every* step, memory images
//!    and port logs periodically and at the end.
//! 2. **`device`** — a full [`edb_device::Device`] on a harvester:
//!    per-step integration vs. `run_span` batching, and per-step with
//!    the cache vs. per-step cold decode. Capacitor voltage is compared
//!    to the last bit, along with every wire-observable event.
//! 3. **`system`** — the whole bench with EDB attached:
//!    `System::run_for` (batched `advance_span` underneath) vs. a
//!    manual `step()` loop, compared on energy, time, instruction and
//!    reboot counts, and the debugger's own observations.

use crate::gen::Program;
use edb_device::{Device, DeviceConfig, DeviceEvent};
use edb_energy::{Fading, Harvester, PulsedSource, SimTime, TheveninSource};
use edb_mcu::asm::assemble;
use edb_mcu::{Cpu, CpuState, Image, Memory, PortBus};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A confirmed mismatch between two configurations that must agree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which arm caught it (`mcu`, `device`, `system`, `fault`,
    /// `checkpoint`, `generator`).
    pub arm: &'static str,
    /// Human-readable description of the first mismatching observable.
    pub detail: String,
}

impl Divergence {
    pub(crate) fn new(arm: &'static str, detail: impl Into<String>) -> Self {
        Divergence {
            arm,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.arm, self.detail)
    }
}

/// The ambient-energy scenario a case runs under, derived from the case
/// seed. Paired executions each build their own instance with
/// [`HarvesterSpec::build`], which is guaranteed bit-equivalent.
#[derive(Debug, Clone, Copy)]
pub enum HarvesterSpec {
    /// Plain Thévenin source (sawtooth intermittence).
    Thevenin {
        /// Open-circuit voltage, volts.
        v_oc: f64,
        /// Source resistance, ohms.
        r_src: f64,
    },
    /// Thévenin source under seeded log-normal fading.
    Fading {
        /// Open-circuit voltage, volts.
        v_oc: f64,
        /// Source resistance, ohms.
        r_src: f64,
        /// Fading seed.
        seed: u64,
    },
    /// Thévenin source gated on/off on a fixed schedule.
    Pulsed {
        /// Open-circuit voltage, volts.
        v_oc: f64,
        /// Source resistance, ohms.
        r_src: f64,
        /// On-window, milliseconds.
        on_ms: u64,
        /// Off-window, milliseconds.
        off_ms: u64,
    },
}

impl HarvesterSpec {
    /// Draws a scenario from the case RNG.
    pub fn draw(rng: &mut SmallRng) -> Self {
        let v_oc = rng.gen_range(2.8f64..3.6);
        let r_src = rng.gen_range(1200.0f64..2200.0);
        match rng.gen_range(0u32..3) {
            0 => HarvesterSpec::Thevenin { v_oc, r_src },
            1 => HarvesterSpec::Fading {
                v_oc,
                r_src,
                seed: rng.gen(),
            },
            _ => HarvesterSpec::Pulsed {
                v_oc,
                r_src,
                on_ms: rng.gen_range(8u64..25),
                off_ms: rng.gen_range(4u64..15),
            },
        }
    }

    /// Builds a fresh harvester instance for this scenario.
    pub fn build(&self) -> Box<dyn Harvester> {
        match *self {
            HarvesterSpec::Thevenin { v_oc, r_src } => Box::new(TheveninSource::new(v_oc, r_src)),
            HarvesterSpec::Fading { v_oc, r_src, seed } => {
                Box::new(Fading::new(TheveninSource::new(v_oc, r_src), 0.05, seed))
            }
            HarvesterSpec::Pulsed {
                v_oc,
                r_src,
                on_ms,
                off_ms,
            } => Box::new(PulsedSource::new(
                TheveninSource::new(v_oc, r_src),
                SimTime::from_ms(on_ms),
                SimTime::from_ms(off_ms),
            )),
        }
    }
}

/// Assembles a program, reporting failure as a `generator` divergence
/// (the generator's contract is that everything it emits assembles).
pub fn assemble_program(prog: &Program) -> Result<Image, Divergence> {
    assemble(&prog.render()).map_err(|e| {
        Divergence::new(
            "generator",
            format!("generated program does not assemble: {e}"),
        )
    })
}

/// A deterministic scripted port bus for the bare-MCU arm: `in` returns
/// a mixed function of the port and call count, `out` is logged. Both
/// sides of a differential pair see identical streams.
#[derive(Debug, Default)]
struct ScriptedBus {
    reads: u64,
    log_hash: u64,
    log_len: u64,
}

impl ScriptedBus {
    fn absorb(&mut self, a: u64, b: u64) {
        let mut z = self
            .log_hash
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(a)
            .wrapping_add(b.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z ^= z >> 29;
        self.log_hash = z;
        self.log_len += 1;
    }
}

impl PortBus for ScriptedBus {
    fn port_in(&mut self, port: u8) -> u16 {
        self.reads += 1;
        let mut z = (port as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add(self.reads.wrapping_mul(0x94d0_49bb_1331_11eb));
        z ^= z >> 31;
        z as u16
    }

    fn port_out(&mut self, port: u8, value: u16) {
        self.absorb(port as u64, value as u64);
    }
}

fn flags_tuple(cpu: &Cpu) -> (bool, bool, bool, bool) {
    (cpu.flags.z, cpu.flags.n, cpu.flags.c, cpu.flags.v)
}

/// Arm 1: predecode cache vs. cold decode on the bare CPU, in lockstep,
/// across seeded power cycles.
pub fn diff_mcu(prog: &Program, seed: u64, steps: usize) -> Option<Divergence> {
    let image = match assemble_program(prog) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D43_5543);
    let n_cuts = rng.gen_range(0u32..3);
    let mut cuts: Vec<usize> = (0..n_cuts)
        .map(|_| rng.gen_range(steps / 8..steps))
        .collect();
    cuts.sort_unstable();

    let mut mem_a = Memory::new();
    let mut mem_b = Memory::new();
    image.load_into(&mut mem_a);
    image.load_into(&mut mem_b);
    mem_b.set_decode_cache_enabled(false);
    let mut cpu_a = Cpu::new();
    let mut cpu_b = Cpu::new();
    cpu_a.reset(&mem_a);
    cpu_b.reset(&mem_b);
    let mut bus_a = ScriptedBus::default();
    let mut bus_b = ScriptedBus::default();

    let mismatch = |what: &str, i: usize, a: String, b: String| {
        Divergence::new(
            "mcu",
            format!("step {i}: {what} diverged: cached={a} cold={b}"),
        )
    };

    for i in 0..steps {
        if cuts.first() == Some(&i) {
            cuts.remove(0);
            mem_a.power_cycle();
            mem_b.power_cycle();
            cpu_a.reset(&mem_a);
            cpu_b.reset(&mem_b);
        }
        if !cpu_a.is_running() && !cpu_b.is_running() {
            break;
        }
        let oa = cpu_a.step(&mut mem_a, &mut bus_a);
        let ob = cpu_b.step(&mut mem_b, &mut bus_b);
        if oa.cycles != ob.cycles {
            return Some(mismatch(
                "cycle cost",
                i,
                oa.cycles.to_string(),
                ob.cycles.to_string(),
            ));
        }
        if cpu_a.pc != cpu_b.pc {
            return Some(mismatch(
                "pc",
                i,
                format!("{:#06x}", cpu_a.pc),
                format!("{:#06x}", cpu_b.pc),
            ));
        }
        if cpu_a.regs != cpu_b.regs {
            return Some(mismatch(
                "registers",
                i,
                format!("{:x?}", cpu_a.regs),
                format!("{:x?}", cpu_b.regs),
            ));
        }
        if flags_tuple(&cpu_a) != flags_tuple(&cpu_b) {
            return Some(mismatch(
                "flags",
                i,
                format!("{:?}", flags_tuple(&cpu_a)),
                format!("{:?}", flags_tuple(&cpu_b)),
            ));
        }
        if cpu_a.state() != cpu_b.state() {
            return Some(mismatch(
                "cpu state",
                i,
                format!("{:?}", cpu_a.state()),
                format!("{:?}", cpu_b.state()),
            ));
        }
        if mem_a.bus_faults() != mem_b.bus_faults() {
            return Some(mismatch(
                "bus faults",
                i,
                mem_a.bus_faults().to_string(),
                mem_b.bus_faults().to_string(),
            ));
        }
        if i % 64 == 63 && (mem_a.sram() != mem_b.sram() || mem_a.fram() != mem_b.fram()) {
            return Some(mismatch("memory image", i, String::new(), String::new()));
        }
    }

    if mem_a.sram() != mem_b.sram() {
        let at = mem_a
            .sram()
            .iter()
            .zip(mem_b.sram())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(Divergence::new(
            "mcu",
            format!("final SRAM image diverged at +{at:#x}"),
        ));
    }
    if mem_a.fram() != mem_b.fram() {
        let at = mem_a
            .fram()
            .iter()
            .zip(mem_b.fram())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(Divergence::new(
            "mcu",
            format!("final FRAM image diverged at +{at:#x}"),
        ));
    }
    if (bus_a.log_hash, bus_a.log_len) != (bus_b.log_hash, bus_b.log_len) {
        return Some(Divergence::new("mcu", "port output stream diverged"));
    }
    if matches!(cpu_a.state(), CpuState::Running) != matches!(cpu_b.state(), CpuState::Running) {
        return Some(Divergence::new("mcu", "final run state diverged"));
    }
    None
}

/// Everything a device-level execution leaves behind, for comparison.
struct DeviceTrace {
    dev: Device,
    events: Vec<DeviceEvent>,
}

fn flash_device(image: &Image, v0: f64, cache: bool) -> Device {
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(image);
    dev.set_v_cap(v0);
    dev.set_decode_cache_enabled(cache);
    dev
}

fn run_device_stepped(
    image: &Image,
    spec: &HarvesterSpec,
    v0: f64,
    cache: bool,
    end: SimTime,
) -> DeviceTrace {
    let mut dev = flash_device(image, v0, cache);
    let mut h = spec.build();
    let mut events = Vec::new();
    while dev.now() < end {
        let step = dev.step(&mut *h, 0.0);
        events.extend(step.events);
    }
    DeviceTrace { dev, events }
}

fn run_device_spanned(image: &Image, spec: &HarvesterSpec, v0: f64, end: SimTime) -> DeviceTrace {
    let mut dev = flash_device(image, v0, true);
    let mut h = spec.build();
    let mut events = Vec::new();
    while dev.now() < end {
        let mut cap = end;
        if let Some(t) = dev.next_silent_deadline() {
            cap = cap.min(t);
        }
        let span = if cap > dev.now() {
            dev.run_span(&mut *h, &mut |_| 0.0, cap)
        } else {
            dev.step(&mut *h, 0.0)
        };
        events.extend(span.events);
    }
    DeviceTrace { dev, events }
}

fn compare_device_traces(pair: &str, a: &DeviceTrace, b: &DeviceTrace) -> Option<Divergence> {
    let d = |what: &str, va: String, vb: String| {
        Divergence::new("device", format!("{pair}: {what} diverged: {va} vs {vb}"))
    };
    if a.dev.v_cap().to_bits() != b.dev.v_cap().to_bits() {
        return Some(d(
            "v_cap bits",
            format!("{:.9}", a.dev.v_cap()),
            format!("{:.9}", b.dev.v_cap()),
        ));
    }
    if a.dev.now() != b.dev.now() {
        return Some(d(
            "sim time",
            format!("{:?}", a.dev.now()),
            format!("{:?}", b.dev.now()),
        ));
    }
    if a.dev.total_instructions() != b.dev.total_instructions() {
        return Some(d(
            "instruction count",
            a.dev.total_instructions().to_string(),
            b.dev.total_instructions().to_string(),
        ));
    }
    if a.dev.reboots() != b.dev.reboots() {
        return Some(d(
            "reboots",
            a.dev.reboots().to_string(),
            b.dev.reboots().to_string(),
        ));
    }
    if a.dev.turn_ons() != b.dev.turn_ons() {
        return Some(d(
            "turn-ons",
            a.dev.turn_ons().to_string(),
            b.dev.turn_ons().to_string(),
        ));
    }
    if a.events != b.events {
        let at = a
            .events
            .iter()
            .zip(&b.events)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.events.len().min(b.events.len()));
        return Some(d(
            "wire events",
            format!("{} events (first mismatch #{at})", a.events.len()),
            format!("{} events", b.events.len()),
        ));
    }
    if a.dev.peripherals.uart.sent() != b.dev.peripherals.uart.sent() {
        return Some(d("UART stream", String::new(), String::new()));
    }
    if a.dev.cpu().pc != b.dev.cpu().pc || a.dev.cpu().regs != b.dev.cpu().regs {
        return Some(d(
            "final cpu state",
            format!("pc={:#06x}", a.dev.cpu().pc),
            format!("pc={:#06x}", b.dev.cpu().pc),
        ));
    }
    if a.dev.mem().sram() != b.dev.mem().sram() || a.dev.mem().fram() != b.dev.mem().fram() {
        return Some(d("final memory image", String::new(), String::new()));
    }
    if a.dev.mem().bus_faults() != b.dev.mem().bus_faults() {
        return Some(d(
            "bus faults",
            a.dev.mem().bus_faults().to_string(),
            b.dev.mem().bus_faults().to_string(),
        ));
    }
    None
}

/// Arm 2: full device — per-step vs. span-batched integration, and
/// cached vs. cold decode — on a seeded harvesting scenario.
pub fn diff_device(prog: &Program, seed: u64, sim_ms: u64) -> Option<Divergence> {
    let image = match assemble_program(prog) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDE_71CE);
    let spec = HarvesterSpec::draw(&mut rng);
    let v0 = rng.gen_range(2.0f64..2.6);
    let end = SimTime::from_ms(sim_ms);

    let stepped = run_device_stepped(&image, &spec, v0, true, end);
    let spanned = run_device_spanned(&image, &spec, v0, end);
    if let Some(d) = compare_device_traces("stepped-vs-spanned", &stepped, &spanned) {
        return Some(d);
    }
    let cold = run_device_stepped(&image, &spec, v0, false, end);
    compare_device_traces("cached-vs-cold", &stepped, &cold)
}

/// Arm 3: the whole system with EDB attached — `run_for` (batched) vs.
/// a manual step loop.
pub fn diff_system(prog: &Program, seed: u64, sim_ms: u64) -> Option<Divergence> {
    use edb_core::System;
    let image = match assemble_program(prog) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E_57_E4);
    let spec = HarvesterSpec::draw(&mut rng);
    let v0 = rng.gen_range(2.0f64..2.6);
    let end = SimTime::from_ms(sim_ms);

    let build = || {
        let mut sys = System::builder(DeviceConfig::wisp5())
            .harvester(spec.build())
            .seed(seed)
            .build();
        sys.flash(&image);
        sys.device_mut().set_v_cap(v0);
        sys
    };

    let mut a = build();
    while a.now() < end {
        a.step();
    }
    let mut b = build();
    b.run_for(end);

    let d = |what: &str, va: String, vb: String| {
        Divergence::new(
            "system",
            format!("run_for vs step loop: {what} diverged: {va} vs {vb}"),
        )
    };
    if a.device().v_cap().to_bits() != b.device().v_cap().to_bits() {
        return Some(d(
            "v_cap bits",
            format!("{:.9}", a.device().v_cap()),
            format!("{:.9}", b.device().v_cap()),
        ));
    }
    if a.now() != b.now() {
        return Some(d(
            "sim time",
            format!("{:?}", a.now()),
            format!("{:?}", b.now()),
        ));
    }
    if a.device().total_instructions() != b.device().total_instructions() {
        return Some(d(
            "instruction count",
            a.device().total_instructions().to_string(),
            b.device().total_instructions().to_string(),
        ));
    }
    if a.device().reboots() != b.device().reboots() {
        return Some(d(
            "reboots",
            a.device().reboots().to_string(),
            b.device().reboots().to_string(),
        ));
    }
    if a.device().turn_ons() != b.device().turn_ons() {
        return Some(d(
            "turn-ons",
            a.device().turn_ons().to_string(),
            b.device().turn_ons().to_string(),
        ));
    }
    let (ea, eb) = (
        a.edb().expect("edb attached"),
        b.edb().expect("edb attached"),
    );
    if ea.log().len() != eb.log().len() {
        return Some(d(
            "EDB event log length",
            ea.log().len().to_string(),
            eb.log().len().to_string(),
        ));
    }
    if ea.last_reading().to_bits() != eb.last_reading().to_bits() {
        return Some(d(
            "EDB ADC reading bits",
            format!("{}", ea.last_reading()),
            format!("{}", eb.last_reading()),
        ));
    }
    if ea.charge_delivered().to_bits() != eb.charge_delivered().to_bits() {
        return Some(d(
            "EDB charge delivered bits",
            format!("{}", ea.charge_delivered()),
            format!("{}", eb.charge_delivered()),
        ));
    }
    if a.device().mem().sram() != b.device().mem().sram()
        || a.device().mem().fram() != b.device().mem().fram()
    {
        return Some(d("final memory image", String::new(), String::new()));
    }
    None
}
