//! Differential fuzzing and power-cycle fault injection for the EDB
//! simulation fast path.
//!
//! The bench-gated fast path (PR 2) rests on two equivalences that are
//! cheap to state and easy to silently break:
//!
//! 1. the **predecoded-instruction cache** must be architecturally
//!    invisible — cached and cold decode execute identically even under
//!    self-modifying code and power cycles;
//! 2. the **span-batched energy integration** (`Device::run_span`,
//!    `System::run_for`) must be bit-identical to naive per-quantum
//!    stepping.
//!
//! This crate adversarially checks both with seed-driven engines:
//!
//! * [`gen`] — a random MSP430-class program generator that emits valid
//!   assembler source (weighted over addressing modes, self-modifying
//!   stores, port traffic, wild pointers) and feeds it through the real
//!   two-pass assembler;
//! * [`diff`] — differential executors running each program through
//!   paired configurations (cache on/off at the bare-CPU, device, and
//!   full-system layers; span-batched vs stepped integration) and
//!   comparing architectural state, memory images, energy trajectories,
//!   and emitted events at every sync point;
//! * [`fault`] — a power-cycle fault injector that reboots at seeded
//!   instruction boundaries and checks the volatile/non-volatile
//!   invariants (FRAM persists, SRAM/registers clear, cache
//!   invalidation holds, checkpoint-restore round-trips);
//! * [`session`] — a debug-session fuzzer (PR 4) that drives random
//!   framed command sequences through a noisy debug UART with
//!   mid-exchange brown-outs, asserting every command either completes
//!   with the true memory value or aborts with a typed `EdbError`;
//! * [`soundness`] — an analyzer-soundness fuzzer that generates
//!   bounded-by-construction programs and asserts no simulated
//!   execution, under any harvest trace, exceeds `edb-analyze`'s static
//!   WCEC bound or takes a CFG edge the analyzer missed.
//!
//! Divergences are minimized by greedy instruction deletion ([`mod@shrink`])
//! and written as self-contained reproducers ([`artifact`]). The
//! `fuzz_smoke` binary drives everything through `edb-bench`'s
//! deterministic runner, so a given `--seed` produces bit-identical
//! verdicts at any thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod diff;
pub mod fault;
pub mod gen;
pub mod race;
pub mod session;
pub mod shrink;
pub mod soundness;

pub use diff::Divergence;
pub use gen::Program;
pub use shrink::{shrink, Shrunk};

/// Knobs for one fuzzing run. The defaults are sized so a single case
/// costs a few milliseconds in release builds.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Lockstep steps for the bare-CPU cache-vs-cold arm.
    pub mcu_steps: usize,
    /// Simulated window (ms) for the device-layer arms.
    pub device_sim_ms: u64,
    /// Simulated window (ms) for the full-system arm.
    pub system_sim_ms: u64,
    /// Evaluation budget for shrinking a failing case.
    pub max_shrink_steps: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            mcu_steps: 4000,
            device_sim_ms: 30,
            system_sim_ms: 20,
            max_shrink_steps: 400,
        }
    }
}

/// One failing case: the seed that produced it, the offending program,
/// and what diverged.
#[derive(Debug)]
pub struct CaseFailure {
    /// Trial seed (from the deterministic runner) that generated the case.
    pub seed: u64,
    /// The generated program that exposed the divergence.
    pub program: Program,
    /// First divergence observed.
    pub divergence: Divergence,
}

/// Re-checks a specific program under a case seed: runs every
/// differential and fault-injection arm and returns the first
/// divergence. This is the oracle the shrinker replays.
pub fn check_program(prog: &Program, seed: u64, cfg: &FuzzConfig) -> Option<Divergence> {
    if let Some(d) = diff::diff_mcu(prog, seed, cfg.mcu_steps) {
        return Some(d);
    }
    if let Some(d) = diff::diff_device(prog, seed, cfg.device_sim_ms) {
        return Some(d);
    }
    if let Some(d) = diff::diff_system(prog, seed, cfg.system_sim_ms) {
        return Some(d);
    }
    fault::inject_power_cycles(prog, seed)
}

/// Generates and checks one case from its seed. Returns `None` when all
/// arms agree (the healthy outcome).
pub fn run_case(seed: u64, cfg: &FuzzConfig) -> Option<CaseFailure> {
    let program = gen::generate(seed);
    check_program(&program, seed, cfg).map(|divergence| CaseFailure {
        seed,
        program,
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build smoke: a handful of cases through every arm. The big
    /// budgets live in the release-mode `fuzz_smoke` bin and CI job.
    #[test]
    fn a_few_cases_are_divergence_free() {
        let cfg = FuzzConfig {
            mcu_steps: 600,
            device_sim_ms: 8,
            system_sim_ms: 6,
            max_shrink_steps: 50,
        };
        for seed in 1..=4u64 {
            if let Some(f) = run_case(seed, &cfg) {
                panic!("seed {seed}: {}", f.divergence);
            }
        }
    }

    #[test]
    fn checkpoint_round_trip_smoke() {
        if let Some(d) = fault::checkpoint_round_trip(7) {
            panic!("{d}");
        }
    }
}
