//! Analyzer-soundness fuzzing: `edb-analyze`'s claims raced against the
//! simulator.
//!
//! The static analyzer promises two things the rest of the suite leans
//! on: a claimed WCEC bound is never exceeded by any execution, and the
//! recovered CFG contains every edge an execution can take. Both are
//! easy to break silently (a missed side entry into a loop, a cost-table
//! drift, an unsound indirect-branch resolution), so this module fuzzes
//! them the same way the differential arms fuzz the fast path:
//!
//! * [`generate_bounded`] emits programs that are bounded *by
//!   construction* — straight-line ALU/memory code, forward skips,
//!   resolvable `jmpr` pairs, `call h0`, and counted loops in exactly
//!   the idiom the WCEC pass verifies — terminated by `halt`;
//! * [`check_soundness`] analyzes the binary, then simulates it under a
//!   seeded harvesting scenario and asserts that every powered interval
//!   retires at most the static WCEC bound in cycles (`analyze` arm),
//!   that every executed pc transition is an edge the CFG allows
//!   (`analyze-cfg` arm), and that a "completes on one charge" verdict
//!   holds on a dead harvester (`analyze` arm). A generator-guaranteed
//!   program the analyzer cannot bound is itself a failure
//!   (`analyze-incomplete` arm).
//!
//! Failures shrink through the shared greedy deleter with an
//! arm-matched oracle and land in `target/fuzz-artifacts/` like every
//! other reproducer.

use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::diff::{assemble_program, Divergence, HarvesterSpec};
use crate::gen::{BodyLine, Epilogue, Program};
use crate::{CaseFailure, FuzzConfig};
use edb_analyze::{energy_verdict, instr_cycles, CapacitorSpec, Cfg, CostModel, StepVerdict};
use edb_device::{Device, DeviceConfig};
use edb_energy::{ConstantCurrent, PowerEdge, SimTime};
use edb_mcu::CpuState;

/// Registers the generator's ALU/memory soup draws from. Disjoint from
/// the loop counters (r10/r11), the pointer registers (r1/r2), the
/// `jmpr` scratch register (r14), and sp — so the counted-loop idiom is
/// never clobbered by construction.
const SOUP: &[u8] = &[0, 3, 4, 5, 6, 7];

const ALU_OPS: &[&str] = &["add", "sub", "and", "or", "xor", "mul"];
const ALUI_OPS: &[&str] = &["add", "sub", "and", "or", "xor"];
const CONDS: &[&str] = &["jz", "jnz", "jc", "jnc", "jn", "jge", "jl", "jgt", "jle"];

/// Voltage slack the one-charge completion check demands beyond the
/// brown-out threshold before it treats the static verdict as testable;
/// generously above the calibrated cost model's residual.
const COMPLETION_MARGIN_V: f64 = 0.02;

fn soup_reg(rng: &mut SmallRng) -> u8 {
    SOUP[rng.gen_range(0usize..SOUP.len())]
}

fn push(body: &mut Vec<BodyLine>, op: String) {
    body.push(BodyLine {
        labels: Vec::new(),
        op,
    });
}

fn fresh(next_label: &mut usize) -> usize {
    let k = *next_label;
    *next_label += 1;
    k
}

/// One label-less construct (one or two lines for memory pairs).
fn emit_plain(body: &mut Vec<BodyLine>, rng: &mut SmallRng) {
    match rng.gen_range(0u32..10) {
        0..=2 => {
            let op = ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())];
            push(body, format!("{op} r{}, r{}", soup_reg(rng), soup_reg(rng)));
        }
        3..=4 => {
            let op = ALUI_OPS[rng.gen_range(0usize..ALUI_OPS.len())];
            push(
                body,
                format!("{op}i r{}, {:#x}", soup_reg(rng), rng.gen_range(0u16..16)),
            );
        }
        5 => push(
            body,
            format!("movi r{}, {:#x}", soup_reg(rng), rng.gen_range(0u16..1024)),
        ),
        6..=7 => {
            // A fresh SRAM pointer load before every access keeps the
            // target inside mapped, non-code memory (loads/stores can
            // never fault or self-modify).
            let ptr = if rng.gen_bool(0.5) { 1 } else { 2 };
            let addr = 0x1C00 + rng.gen_range(0u16..0x700);
            push(body, format!("movi r{ptr}, {addr:#06x}"));
            let off = rng.gen_range(0u16..0x30);
            let r = soup_reg(rng);
            let op = match rng.gen_range(0u32..4) {
                0 => format!("ld r{r}, [r{ptr} + {off:#x}]"),
                1 => format!("st [r{ptr} + {off:#x}], r{r}"),
                2 => format!("ldb r{r}, [r{ptr} + {off:#x}]"),
                _ => format!("stb [r{ptr} + {off:#x}], r{r}"),
            };
            push(body, op);
        }
        8 => push(body, "call h0".to_string()),
        _ => push(body, "nop".to_string()),
    }
}

fn emit_chunk(body: &mut Vec<BodyLine>, rng: &mut SmallRng, constructs: usize) {
    for _ in 0..constructs {
        emit_plain(body, rng);
    }
}

/// `cmpi; jcond bK; <chunk>; bK: <op>` — a forward skip whose join is
/// always a later line, so both paths stay acyclic.
fn emit_skip(body: &mut Vec<BodyLine>, rng: &mut SmallRng, next_label: &mut usize) {
    let k = fresh(next_label);
    push(
        body,
        format!("cmpi r{}, {:#x}", soup_reg(rng), rng.gen_range(0u16..32)),
    );
    let cond = CONDS[rng.gen_range(0usize..CONDS.len())];
    push(body, format!("{cond} b{k}"));
    let n = rng.gen_range(1usize..=3);
    emit_chunk(body, rng, n);
    let at = body.len();
    emit_plain(body, rng);
    body[at].labels.push(k);
}

/// `movi r14, bK; jmpr r14; bK: <op>` — an indirect jump the CFG's
/// backward `movi` resolver is designed to see through.
fn emit_jmpr(body: &mut Vec<BodyLine>, rng: &mut SmallRng, next_label: &mut usize) {
    let k = fresh(next_label);
    push(body, format!("movi r14, b{k}"));
    push(body, "jmpr r14".to_string());
    let at = body.len();
    emit_plain(body, rng);
    body[at].labels.push(k);
}

/// A counted loop in exactly the verified idiom: `movi rK, 0` init
/// falling into the header, a body that never writes the counter, then
/// `add rK, 1; cmpi rK, N; jne header`. Depth 0 may nest one depth-1
/// loop (r10 outer, r11 inner).
fn emit_loop(body: &mut Vec<BodyLine>, rng: &mut SmallRng, next_label: &mut usize, depth: u32) {
    let counter = if depth == 0 { 10 } else { 11 };
    let bound = rng.gen_range(1u16..12);
    let k = fresh(next_label);
    push(body, format!("movi r{counter}, 0"));
    let hdr = body.len();
    let lead = rng.gen_range(1usize..=3);
    emit_chunk(body, rng, lead);
    if depth == 0 && rng.gen_bool(0.4) {
        emit_loop(body, rng, next_label, 1);
        if rng.gen_bool(0.5) {
            let tail = rng.gen_range(1usize..=2);
            emit_chunk(body, rng, tail);
        }
    }
    body[hdr].labels.push(k);
    push(body, format!("add r{counter}, 1"));
    push(body, format!("cmpi r{counter}, {bound:#x}"));
    push(body, format!("jne b{k}"));
}

/// Generates the deterministic bounded program for `seed`. Every
/// program this returns must analyze to a finite WCEC bound with a
/// fully resolved CFG — [`check_soundness`] reports anything else as an
/// `analyze-incomplete` divergence.
pub fn generate_bounded(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57A7_1CB0);
    let mut body: Vec<BodyLine> = Vec::new();
    let mut next_label = 0usize;
    let n_segments = rng.gen_range(2usize..=6);
    for _ in 0..n_segments {
        match rng.gen_range(0u32..10) {
            0..=3 => {
                let n = rng.gen_range(1usize..=5);
                emit_chunk(&mut body, &mut rng, n);
            }
            4..=5 => emit_skip(&mut body, &mut rng, &mut next_label),
            6 => emit_jmpr(&mut body, &mut rng, &mut next_label),
            _ => emit_loop(&mut body, &mut rng, &mut next_label, 0),
        }
    }
    Program {
        case_seed: seed,
        body,
        tail_labels: Vec::new(),
        epilogue: Epilogue::Halt,
    }
}

/// The calibrated cost model, computed once per process: calibration
/// is deterministic (it replays fixed microbenchmarks on a tethered
/// device), so sharing it across trials cannot couple their verdicts.
fn cost_model(config: &DeviceConfig) -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(|| CostModel::calibrate(config))
}

/// Analyzes `prog` and races the result against simulation: WCEC bound
/// per powered interval, CFG walk per retired instruction, and the
/// one-charge completion verdict on a dead harvester. Returns the first
/// violated claim.
pub fn check_soundness(prog: &Program, seed: u64, cfg: &FuzzConfig) -> Option<Divergence> {
    let image = match assemble_program(prog) {
        Ok(i) => i,
        Err(d) => return Some(d),
    };
    let config = DeviceConfig::wisp5();
    let model = cost_model(&config);
    let cap = CapacitorSpec::from_device(&config);
    let graph = Cfg::from_image(&image);
    let wcec = edb_analyze::compute(&graph);

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57A7_1C5E);
    let v_start = rng.gen_range(2.0f64..3.4);

    // A bounded-by-construction program the analyzer cannot fully
    // resolve is an analyzer bug (lost coverage), not a benign miss.
    if graph.truncated {
        return Some(Divergence::new(
            "analyze-incomplete",
            "CFG discovery truncated on a generator-bounded program",
        ));
    }
    if let Some(u) = graph.unresolved.first() {
        return Some(Divergence::new(
            "analyze-incomplete",
            format!(
                "unresolved {} at {:#06x} in a generator-resolvable program",
                u.mnemonic, u.at
            ),
        ));
    }
    let program_wcec = wcec.program();
    let Some(bound) = program_wcec.cycles else {
        return Some(Divergence::new(
            "analyze-incomplete",
            format!(
                "bounded-by-construction program reported unbounded: {}",
                program_wcec
                    .unbounded_reason
                    .as_deref()
                    .unwrap_or("no reason given")
            ),
        ));
    };
    let verdict = energy_verdict(Some(bound), model, &cap, v_start);

    // Claim 1 + 2, under a randomized harvest trace: no powered
    // interval may retire more cycles than the bound (every interval
    // is a from-reset prefix of some CFG path), and every pc
    // transition must be an edge the CFG admits.
    let spec = HarvesterSpec::draw(&mut rng);
    let v0 = rng.gen_range(2.0f64..2.6);
    let end = SimTime::from_ms(cfg.device_sim_ms);
    let mut dev = Device::new(config);
    dev.flash(&image);
    dev.set_v_cap(v0);
    let mut harvester = spec.build();
    let mut interval_cycles: u64 = 0;
    while dev.now() < end {
        let prev_pc = dev.cpu().pc;
        let step = dev.step(&mut *harvester, 0.0);
        if let Some(instr) = step.retired {
            interval_cycles += u64::from(instr_cycles(&instr));
            if interval_cycles > bound {
                return Some(Divergence::new(
                    "analyze",
                    format!(
                        "powered interval retired {interval_cycles} cycles at \
                         pc {prev_pc:#06x}, exceeding the static WCEC bound of {bound}"
                    ),
                ));
            }
            if step.power_edge.is_none() {
                let to = dev.cpu().pc;
                if graph.allows_step(prev_pc, to) == StepVerdict::Violation {
                    return Some(Divergence::new(
                        "analyze-cfg",
                        format!(
                            "execution stepped {prev_pc:#06x} -> {to:#06x}, \
                             an edge the static CFG forbids"
                        ),
                    ));
                }
            }
        }
        if step.power_edge == Some(PowerEdge::TurnOn) {
            interval_cycles = 0;
        }
    }

    // Claim 3: a "completes on one charge" verdict with real margin
    // must hold on a dead harvester starting from the verdict's
    // voltage (prediction says the worst path fits; the actual path
    // can only be cheaper).
    if verdict.completes_on_one_charge == Some(true)
        && v_start >= config.v_on
        && verdict
            .v_end_worst
            .is_some_and(|v| v >= config.v_off + COMPLETION_MARGIN_V)
    {
        let mut dev = Device::new(config);
        dev.flash(&image);
        dev.set_v_cap(v_start);
        let mut dead = ConstantCurrent::new(0.0);
        // Every executing step retires one instruction of >= 1 cycle,
        // so `bound` steps cover the whole run; the slack covers idle
        // quanta around boot.
        let max_steps = bound + 10_000;
        let mut halted = false;
        for _ in 0..max_steps {
            let step = dev.step(&mut dead, 0.0);
            if step.power_edge == Some(PowerEdge::BrownOut) {
                return Some(Divergence::new(
                    "analyze",
                    format!(
                        "predicted to complete on one charge from {v_start:.3} V \
                         (worst-case end {:.3} V), but browned out after \
                         {} instruction(s)",
                        verdict.v_end_worst.unwrap_or(f64::NAN),
                        dev.total_instructions()
                    ),
                ));
            }
            if matches!(dev.cpu().state(), CpuState::Halted) {
                halted = true;
                break;
            }
        }
        if !halted {
            return Some(Divergence::new(
                "analyze",
                format!(
                    "did not halt within {max_steps} steps on a dead harvester \
                     though the static WCEC bound is {bound} cycles"
                ),
            ));
        }
    }
    None
}

/// Generates and checks one soundness case from its trial seed. `None`
/// means every analyzer claim survived simulation.
pub fn run_soundness_case(seed: u64, cfg: &FuzzConfig) -> Option<CaseFailure> {
    let program = generate_bounded(seed);
    check_soundness(&program, seed, cfg).map(|divergence| CaseFailure {
        seed,
        program,
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_mcu::asm::assemble;

    #[test]
    fn bounded_programs_assemble_and_analyze() {
        for seed in 0..40u64 {
            let prog = generate_bounded(seed);
            let src = prog.render();
            let image = assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let graph = Cfg::from_image(&image);
            assert!(graph.unresolved.is_empty(), "seed {seed}:\n{src}");
            let wcec = edb_analyze::compute(&graph);
            assert!(
                wcec.program().cycles.is_some(),
                "seed {seed} unbounded: {}\n{src}",
                wcec.program().unbounded_reason.as_deref().unwrap_or("?")
            );
        }
    }

    #[test]
    fn bounded_generation_is_deterministic() {
        assert_eq!(generate_bounded(42).render(), generate_bounded(42).render());
        assert_ne!(generate_bounded(42).render(), generate_bounded(43).render());
    }

    #[test]
    fn soundness_cases_are_divergence_free() {
        // Debug-scale smoke; the release-mode fleet runs in
        // `fuzz_smoke --analyze`.
        let cfg = FuzzConfig {
            device_sim_ms: 6,
            ..FuzzConfig::default()
        };
        for seed in 0..12u64 {
            if let Some(f) = run_soundness_case(seed, &cfg) {
                panic!("seed {seed}: {}\n{}", f.divergence, f.program.render());
            }
        }
    }
}
