//! Property: restoring at a snapshot and running forward is
//! bit-identical to the straight-line run.
//!
//! `goto_time` is exactly "restore the nearest snapshot at or before
//! the target, then re-execute forward" — so driving a recorded session
//! to its end, time-travelling back to a mid-point, and advancing to
//! the end again must land in the same state, bit for bit, as never
//! having left. Programs come from the `edb-fuzz` generator (weighted
//! over addressing modes, self-modifying stores, wild pointers), and
//! the property must hold at snapshot strides 1 (every op), 64, and
//! 4096 (snapshots rarer than ops — the rebuild-from-spec path).

use edb_core::SessionSpec;
use edb_energy::SimTime;
use edb_fuzz::gen;
use proptest::prelude::*;

/// The per-stride check: straight line vs rewind-and-replay.
fn check_restore(spec: &SessionSpec, stride: u64) {
    const STEPS: u64 = 8;
    // Straight line: 8 × 1 ms, one recorded op per advance.
    let mut a = spec.record(stride).expect("spec builds");
    for _ in 0..STEPS {
        a.advance(SimTime::from_ms(1));
    }
    let straight = a.system().state_digest();

    // Same drive, then back to 3 ms (restores a snapshot and runs
    // forward) and onward to the same end time.
    let mut b = spec.record(stride).expect("spec builds");
    for _ in 0..STEPS {
        b.advance(SimTime::from_ms(1));
    }
    b.goto_time(SimTime::from_ms(3)).expect("time travel");
    prop_assert_eq!(b.now().as_ns(), SimTime::from_ms(3).as_ns());
    b.advance(SimTime::from_ms(STEPS - 3));
    prop_assert_eq!(
        b.system().state_digest(),
        straight,
        "stride {}: restore-then-forward diverged from straight line",
        stride
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn restore_at_snapshot_then_forward_is_bit_identical(seed in 1u64..10_000) {
        let prog = gen::generate(seed);
        // Generated source is self-contained: flash the raw image.
        let mut spec = SessionSpec::harvested(&prog.render(), seed);
        if let Some(fw) = &mut spec.firmware {
            fw.wrap = false;
        }
        for stride in [1u64, 64, 4096] {
            check_restore(&spec, stride);
        }
    }
}
