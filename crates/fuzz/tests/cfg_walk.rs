//! Property: every simulated pc-trace is a walk over the static CFG.
//!
//! `edb-analyze` recovers a control-flow graph from the flash image
//! alone, and the rest of the tooling (WCEC bounds, checkpoint
//! advisories, the `analyze` RPC) treats its edge set as complete. This
//! test drives generator programs through the device simulator under
//! randomized harvesting scenarios and asserts that every retired
//! instruction's pc transition is an edge the CFG admits
//! ([`StepVerdict::Violation`] never appears). Transitions that span a
//! power edge are exempt: a brown-out or reboot teleports the pc
//! through the reset vector, which is not an architectural CFG edge.
//!
//! Programs come from the bounded generator (`soundness`): unlike the
//! wild differential generator it never self-modifies, so the static
//! CFG is required to be exact, not merely best-effort.

use edb_analyze::{Cfg, StepVerdict};
use edb_device::{Device, DeviceConfig};
use edb_energy::SimTime;
use edb_fuzz::diff::{assemble_program, HarvesterSpec};
use edb_fuzz::soundness;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Simulated window per case; long enough to cross several brown-out /
/// recharge cycles under the pulsed and fading harvesters.
const SIM_MS: u64 = 6;

fn check_walk(seed: u64, hseed: u64) {
    let prog = soundness::generate_bounded(seed);
    let image = assemble_program(&prog).expect("bounded programs assemble");
    let graph = Cfg::from_image(&image);
    prop_assert!(
        graph.unresolved.is_empty() && !graph.truncated,
        "seed {:#x}: CFG must be fully resolved for bounded programs",
        seed
    );

    let config = DeviceConfig::wisp5();
    let mut dev = Device::new(config);
    dev.flash(&image);
    // Start above the turn-on threshold so the trace is never vacuous.
    dev.set_v_cap(config.v_on + 0.1);
    let mut rng = SmallRng::seed_from_u64(hseed);
    let mut harvester = HarvesterSpec::draw(&mut rng).build();
    let end = SimTime::from_ms(SIM_MS);
    let mut retired = 0u64;
    while dev.now() < end {
        let prev_pc = dev.cpu().pc;
        let step = dev.step(&mut *harvester, 0.0);
        if step.retired.is_some() && step.power_edge.is_none() {
            retired += 1;
            let to = dev.cpu().pc;
            prop_assert_ne!(
                graph.allows_step(prev_pc, to),
                StepVerdict::Violation,
                "seed {:#x}: executed step {:#06x} -> {:#06x} is not a CFG edge",
                seed,
                prev_pc,
                to
            );
        }
    }
    prop_assert!(retired > 0, "seed {:#x}: trace retired nothing", seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulated_traces_walk_the_static_cfg(
        seed in 0u64..50_000,
        hseed in any::<u64>(),
    ) {
        check_walk(seed, hseed);
    }
}
