//! Sixteen concurrent sessions on one server: every connection gets its
//! own isolated device, per-session state never bleeds across
//! connections, and event notifications only ever carry the session the
//! connection subscribed to.

use serde::Value;
use std::collections::BTreeSet;

use edb_serve::rpc::{obj, param_u64};
use edb_serve::{Client, Server, ServerConfig};

const SESSIONS: u64 = 16;

/// The per-connection walkthrough: create a session, plant a distinct
/// word in FRAM, run a little, and read the word back. Returns the
/// session id and every notification seen on this connection.
fn exercise(addr: &str, index: u64) -> (u64, Vec<Value>) {
    let mut client = Client::connect(addr).expect("client connects");
    let mut seen = Vec::new();

    let out = client
        .call(
            "create",
            vec![
                ("firmware", Value::Str("assert".to_string())),
                ("seed", Value::U64(100 + index)),
                (
                    "harvester",
                    obj(vec![("voc", Value::F64(3.2)), ("r", Value::F64(220.0))]),
                ),
                ("wait_session_ms", Value::U64(2000)),
            ],
        )
        .expect("create call");
    let session = param_u64(&out.outcome.expect("create succeeds"), "session")
        .expect("create returns a session id");
    seen.extend(out.notifications);

    let out = client
        .call("subscribe_events", vec![("from_start", Value::Bool(true))])
        .expect("subscribe call");
    out.outcome.expect("subscribe succeeds");
    seen.extend(out.notifications);

    let marker = 0xA000 + index;
    let out = client
        .call(
            "write",
            vec![("addr", Value::U64(0x6100)), ("value", Value::U64(marker))],
        )
        .expect("write call");
    out.outcome.expect("write succeeds");
    seen.extend(out.notifications);

    let out = client
        .call("run_until", vec![("ms", Value::U64(2))])
        .expect("run_until call");
    out.outcome.expect("run_until succeeds");
    seen.extend(out.notifications);

    let out = client
        .call("read", vec![("addr", Value::U64(0x6100))])
        .expect("read call");
    let value =
        param_u64(&out.outcome.expect("read succeeds"), "value").expect("read returns a value");
    seen.extend(out.notifications);
    assert_eq!(
        value, marker,
        "session {session} read back another session's memory"
    );

    let out = client.call("destroy", vec![]).expect("destroy call");
    out.outcome.expect("destroy succeeds");
    seen.extend(out.notifications);

    (session, seen)
}

#[test]
fn sixteen_sessions_stay_isolated() {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for index in 0..SESSIONS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || exercise(&addr, index)));
    }
    let results: Vec<(u64, Vec<Value>)> = handles
        .into_iter()
        .map(|h| h.join().expect("connection thread completes"))
        .collect();
    server.stop();

    assert_eq!(results.len(), SESSIONS as usize);

    // Distinct sessions, and every notification tagged with the
    // connection's own session id — no cross-session event leakage.
    let ids: BTreeSet<u64> = results.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        ids.len(),
        SESSIONS as usize,
        "session ids collided: {ids:?}"
    );
    for (session, notes) in results.iter() {
        assert!(
            !notes.is_empty(),
            "session {session} subscribed from start but saw no events"
        );
        for note in notes {
            let params = note.get_field("params").expect("notification has params");
            let tagged = param_u64(params, "session").expect("event carries a session id");
            assert_eq!(
                tagged, *session,
                "session {session} received an event for session {tagged}"
            );
        }
    }
}
