//! The checked-in golden transcript must replay byte-identically, and
//! the worker-pool width must not leak into any connection's byte
//! stream: one connection's replies are a pure function of its request
//! sequence, whatever else the server is doing.

use edb_serve::{Client, Server, ServerConfig, Transcript};

fn golden() -> Transcript {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/serve-transcript.txt");
    let text = std::fs::read_to_string(path).expect("golden transcript exists");
    Transcript::parse(&text).expect("golden transcript parses")
}

/// Runs the golden request sequence against a fresh server of the given
/// pool width and returns the server's actual reply lines.
fn record_with_threads(threads: usize) -> Vec<String> {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let recorded = golden().record(&mut client).expect("record completes");
    drop(client);
    server.stop();
    recorded.steps.into_iter().flat_map(|s| s.expect).collect()
}

fn assert_replays(threads: usize) {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let report = golden().replay(&mut client).expect("replay completes");
    assert!(
        report.ok(),
        "transcript diverged at {threads} thread(s):\n{}",
        report.diff()
    );
    drop(client);
    server.stop();
}

#[test]
fn golden_transcript_is_byte_identical_at_one_thread() {
    assert_replays(1);
}

#[test]
fn golden_transcript_is_byte_identical_at_four_threads() {
    assert_replays(4);
}

#[test]
fn thread_count_does_not_change_the_byte_stream() {
    assert_eq!(record_with_threads(1), record_with_threads(4));
}
