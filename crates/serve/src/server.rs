//! The TCP front of the service: accept loop, per-connection line
//! protocol, shutdown.
//!
//! One thread per connection reads newline-delimited JSON-RPC requests;
//! each request executes on the shared [`WorkerPool`], so `--threads`
//! bounds simultaneous engine work across connections. A connection
//! issues requests strictly in order and blocks for each response,
//! which is what makes transcripts deterministic — the server never
//! reorders one client's requests.

use crate::hub::{ConnState, SessionHub};
use crate::sched::WorkerPool;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool width — how many sessions make progress at once.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
        }
    }
}

/// A running session server. Dropping it (or calling
/// [`stop`](Server::stop)) shuts it down and joins every thread.
pub struct Server {
    addr: SocketAddr,
    hub: Arc<SessionHub>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts serving in background threads.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let hub = Arc::new(SessionHub::new());
        let pool = Arc::new(WorkerPool::new(config.threads));
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let hub = Arc::clone(&hub);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("edb-serve-accept".to_string())
                .spawn(move || {
                    let mut conns: Vec<JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let hub = Arc::clone(&hub);
                                let pool = Arc::clone(&pool);
                                let stop = Arc::clone(&stop);
                                let handle = std::thread::Builder::new()
                                    .name("edb-serve-conn".to_string())
                                    .spawn(move || {
                                        let _ = serve_connection(stream, &hub, &pool, &stop);
                                    })
                                    .expect("spawn connection thread");
                                conns.push(handle);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                    stop.store(true, Ordering::SeqCst);
                    for handle in conns {
                        let _ = handle.join();
                    }
                })?
        };

        Ok(Server {
            addr,
            hub,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub, for in-process inspection.
    pub fn hub(&self) -> &SessionHub {
        &self.hub
    }

    /// Signals shutdown and joins the accept loop and every connection.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the server stops (a client called `shutdown`, or
    /// [`stop`](Server::stop) from another thread).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Hard cap on one request line, bytes (newline included). A client
/// that exceeds it gets a typed `-32700` reply and the rest of that
/// line is discarded — the connection itself stays usable. Bounds
/// per-connection memory against a peer that streams forever without a
/// newline.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A typed `-32700` reply line for intake-level failures (the request
/// never reached the dispatcher).
fn parse_error_reply(message: String) -> String {
    let error = crate::rpc::RpcError::protocol(crate::rpc::PARSE_ERROR, message);
    crate::rpc::error_line(None, &error)
}

/// The reply for an over-limit request line.
fn oversize_reply() -> String {
    parse_error_reply(format!(
        "parse error: request line exceeds {MAX_LINE_BYTES} bytes"
    ))
}

/// Serves one connection until EOF, error, or server shutdown. Reads
/// use a short timeout so a parked connection notices a server-wide
/// shutdown promptly.
fn serve_connection(
    stream: TcpStream,
    hub: &Arc<SessionHub>,
    pool: &WorkerPool,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // The connection's view of the hub; shared with the worker closure
    // executing the current request (one request in flight at a time).
    let conn = Arc::new(Mutex::new(ConnState::new()));
    let mut line = String::new();
    // True while throwing away the tail of an over-limit line (the
    // error reply has already been sent).
    let mut discarding = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                let complete = line.ends_with('\n');
                if discarding {
                    discarding = !complete;
                    line.clear();
                    continue;
                }
                if line.len() > MAX_LINE_BYTES {
                    writer.write_all(oversize_reply().as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    discarding = !complete;
                    line.clear();
                    continue;
                }
                if !complete {
                    // A final unterminated line: serve it and then EOF.
                    line.push('\n');
                }
                let text = std::mem::take(&mut line);
                let text = text.trim().to_string();
                if text.is_empty() {
                    continue;
                }
                let out = {
                    let hub = Arc::clone(hub);
                    let conn = Arc::clone(&conn);
                    pool.run(move || {
                        let mut conn = conn.lock().expect("conn lock");
                        hub.dispatch(&mut conn, &text)
                    })
                };
                for reply in &out.lines {
                    writer.write_all(reply.as_bytes())?;
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                if out.shutdown {
                    stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Timeout with a possibly partial line buffered in
                // `line`; keep accumulating on the next pass — unless
                // the partial has already blown the cap, in which case
                // reply now and discard until the newline shows up.
                if !discarding && line.len() > MAX_LINE_BYTES {
                    writer.write_all(oversize_reply().as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    discarding = true;
                    line.clear();
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Non-UTF-8 garbage; the bytes up to the newline are
                // consumed, so reply typed and keep the connection.
                line.clear();
                if !discarding {
                    let reply =
                        parse_error_reply("parse error: request line is not valid UTF-8".into());
                    writer.write_all(reply.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                }
                discarding = false;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        // Skip notifications; the response is the first line with "id".
        loop {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            if reply.contains(r#""id":"#) {
                return reply.trim().to_string();
            }
        }
    }

    #[test]
    fn serves_a_round_trip_and_shuts_down() {
        let mut server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
        })
        .expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let info = request(
            &mut stream,
            &mut reader,
            r#"{"jsonrpc":"2.0","id":1,"method":"server_info","params":{}}"#,
        );
        assert!(info.contains(r#""name":"edb-serve""#), "{info}");
        let bye = request(
            &mut stream,
            &mut reader,
            r#"{"jsonrpc":"2.0","id":2,"method":"shutdown","params":{}}"#,
        );
        assert!(bye.contains(r#""ok":true"#), "{bye}");
        server.wait();
    }

    fn start_server() -> (Server, TcpStream, BufReader<TcpStream>) {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
        })
        .expect("bind");
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().unwrap());
        (server, stream, reader)
    }

    fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim().to_string()
    }

    /// Intake hardening: truncated JSON gets a typed `-32700` reply and
    /// the connection keeps serving.
    #[test]
    fn truncated_json_gets_a_typed_parse_error() {
        let (_server, mut stream, mut reader) = start_server();
        stream
            .write_all(b"{\"jsonrpc\":\"2.0\",\"id\":7,\"met\n")
            .unwrap();
        let reply = read_reply(&mut reader);
        assert!(reply.contains(r#""code":-32700"#), "{reply}");
        assert!(reply.contains(r#""id":null"#), "{reply}");
        // The connection survived: a well-formed request still works.
        let info = request(
            &mut stream,
            &mut reader,
            r#"{"jsonrpc":"2.0","id":1,"method":"server_info","params":{}}"#,
        );
        assert!(info.contains(r#""name":"edb-serve""#), "{info}");
    }

    /// Intake hardening: non-UTF-8 garbage gets a typed `-32700` reply
    /// instead of a dropped connection.
    #[test]
    fn garbage_bytes_get_a_typed_parse_error() {
        let (_server, mut stream, mut reader) = start_server();
        stream.write_all(&[0xFF, 0xFE, 0x80, 0x92, b'\n']).unwrap();
        let reply = read_reply(&mut reader);
        assert!(reply.contains(r#""code":-32700"#), "{reply}");
        assert!(reply.contains("not valid UTF-8"), "{reply}");
        let info = request(
            &mut stream,
            &mut reader,
            r#"{"jsonrpc":"2.0","id":1,"method":"server_info","params":{}}"#,
        );
        assert!(info.contains(r#""name":"edb-serve""#), "{info}");
    }

    /// Intake hardening: a request line over [`MAX_LINE_BYTES`] gets a
    /// typed `-32700` reply, the tail is discarded, and the next
    /// request is served normally.
    #[test]
    fn over_limit_line_is_bounded_and_replied() {
        let (_server, mut stream, mut reader) = start_server();
        let mut big = String::from(r#"{"jsonrpc":"2.0","id":9,"method":""#);
        big.push_str(&"x".repeat(MAX_LINE_BYTES + 1024));
        big.push_str("\"}\n");
        stream.write_all(big.as_bytes()).unwrap();
        let reply = read_reply(&mut reader);
        assert!(reply.contains(r#""code":-32700"#), "{reply}");
        assert!(reply.contains("exceeds"), "{reply}");
        let info = request(
            &mut stream,
            &mut reader,
            r#"{"jsonrpc":"2.0","id":1,"method":"server_info","params":{}}"#,
        );
        assert!(info.contains(r#""name":"edb-serve""#), "{info}");
    }
}
