//! JSON-RPC 2.0 framing with a typed error surface.
//!
//! One request or response per line (newline-delimited JSON). Responses
//! and notifications are rendered with a **fixed key order**
//! (`jsonrpc`, `id`, `result` / `error`; `jsonrpc`, `method`, `params`)
//! so transcripts are byte-stable — the vendored `serde` keeps map
//! entries in insertion order, which this module relies on.
//!
//! Errors are not stringly typed: a failed request carries the standard
//! JSON-RPC `code`/`message` pair plus a `data` field holding the
//! serialized [`EdbError`] variant itself, so a programmatic client can
//! round-trip the exact workspace error out of the wire (the
//! `edb_errors_round_trip_the_wire` test holds every variant to that).

use edb_core::EdbError;
use serde::{Deserialize, Serialize, Value};

/// The JSON-RPC protocol version string.
pub const VERSION: &str = "2.0";

/// Standard JSON-RPC: malformed JSON.
pub const PARSE_ERROR: i64 = -32700;
/// Standard JSON-RPC: not a valid request object.
pub const INVALID_REQUEST: i64 = -32600;
/// Standard JSON-RPC: unknown method.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// Standard JSON-RPC: bad parameters.
pub const INVALID_PARAMS: i64 = -32602;

/// The EDB error-code block base: variant *k* of [`EdbError`] maps to
/// `EDB_ERROR_BASE - k`, giving each taxonomy variant a stable,
/// documented code in the JSON-RPC implementation-defined range.
pub const EDB_ERROR_BASE: i64 = -32000;

/// The stable JSON-RPC error code for an [`EdbError`] variant (1:1 —
/// the protocol table in DESIGN.md §10 documents the mapping).
pub fn edb_error_code(error: &EdbError) -> i64 {
    let k = match error {
        EdbError::NotAttached { .. } => 1,
        EdbError::NoSession { .. } => 2,
        EdbError::CommandTimeout { .. } => 3,
        EdbError::CorruptReply { .. } => 4,
        EdbError::AbortedByBrownout { .. } => 5,
        EdbError::Busy { .. } => 6,
        EdbError::LevelNotReached { .. } => 7,
        EdbError::SessionDidNotOpen => 8,
        EdbError::SessionDidNotClose => 9,
        EdbError::Device { .. } => 10,
        EdbError::Rfid { .. } => 11,
        EdbError::NoRecording { .. } => 12,
        EdbError::Replay { .. } => 13,
        // `EdbError` is non-exhaustive; a future variant gets the
        // block's generic tail until it is assigned a code here.
        _ => 99,
    };
    EDB_ERROR_BASE - k
}

/// A parsed JSON-RPC request line.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcRequest {
    /// The request ID (`None` for a client notification).
    pub id: Option<u64>,
    /// The method name.
    pub method: String,
    /// The `params` object (or `Value::Null` when absent).
    pub params: Value,
}

/// A JSON-RPC error: the standard code/message pair, plus the typed
/// [`EdbError`] when the failure came from the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcError {
    /// The JSON-RPC error code.
    pub code: i64,
    /// Human-readable message.
    pub message: String,
    /// The serialized [`EdbError`], when the failure is a typed engine
    /// error (absent for protocol-level failures).
    pub data: Option<Value>,
}

impl RpcError {
    /// A protocol-level failure (parse error, unknown method, …).
    pub fn protocol(code: i64, message: impl Into<String>) -> Self {
        RpcError {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// Wraps a typed engine error, carrying the exact variant in `data`.
    pub fn engine(error: &EdbError) -> Self {
        RpcError {
            code: edb_error_code(error),
            message: error.to_string(),
            data: Some(error.to_value()),
        }
    }

    /// Recovers the typed [`EdbError`] from an error object's `data`
    /// field, if one is present and well-formed.
    pub fn to_edb_error(&self) -> Option<EdbError> {
        EdbError::from_value(self.data.as_ref()?).ok()
    }
}

impl From<EdbError> for RpcError {
    fn from(error: EdbError) -> Self {
        RpcError::engine(&error)
    }
}

/// Builds an object [`Value`] with the given entries, in order.
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (Value::Str(k.to_string()), v))
            .collect(),
    )
}

/// Renders a value as one line of JSON (no trailing newline).
fn line(value: &Value) -> String {
    serde_json::to_string(value).expect("Value always renders")
}

/// Renders a successful response line.
pub fn response_line(id: u64, result: Value) -> String {
    line(&obj(vec![
        ("jsonrpc", Value::Str(VERSION.to_string())),
        ("id", Value::U64(id)),
        ("result", result),
    ]))
}

/// Renders an error response line (`id` is `null` when the request ID
/// never parsed).
pub fn error_line(id: Option<u64>, error: &RpcError) -> String {
    let mut entries = vec![
        ("code", Value::I64(error.code)),
        ("message", Value::Str(error.message.clone())),
    ];
    if let Some(data) = &error.data {
        entries.push(("data", data.clone()));
    }
    line(&obj(vec![
        ("jsonrpc", Value::Str(VERSION.to_string())),
        ("id", id.map_or(Value::Null, Value::U64)),
        ("error", obj(entries)),
    ]))
}

/// Renders a server→client notification line.
pub fn notification_line(method: &str, params: Value) -> String {
    line(&obj(vec![
        ("jsonrpc", Value::Str(VERSION.to_string())),
        ("method", Value::Str(method.to_string())),
        ("params", params),
    ]))
}

/// Parses one request line. On failure the error carries the proper
/// protocol code (and the request ID when it could still be read, so
/// the reply can reference it).
pub fn parse_request(text: &str) -> Result<RpcRequest, (Option<u64>, RpcError)> {
    let value: Value = serde_json::from_str(text).map_err(|e| {
        (
            None,
            RpcError::protocol(PARSE_ERROR, format!("parse error: {e}")),
        )
    })?;
    let id = match value.get_field("id") {
        Some(Value::U64(n)) => Some(*n),
        _ => None,
    };
    if value.get_field("jsonrpc").and_then(Value::as_str) != Some(VERSION) {
        return Err((
            id,
            RpcError::protocol(INVALID_REQUEST, "missing or wrong jsonrpc version"),
        ));
    }
    let Some(method) = value.get_field("method").and_then(Value::as_str) else {
        return Err((
            id,
            RpcError::protocol(INVALID_REQUEST, "missing method name"),
        ));
    };
    let params = value.get_field("params").cloned().unwrap_or(Value::Null);
    Ok(RpcRequest {
        id,
        method: method.to_string(),
        params,
    })
}

// ---------------------------------------------------------------------
// Typed parameter extraction
// ---------------------------------------------------------------------

/// Reads an unsigned integer parameter.
pub fn param_u64(params: &Value, name: &str) -> Option<u64> {
    match params.get_field(name) {
        Some(Value::U64(n)) => Some(*n),
        _ => None,
    }
}

/// Reads a float parameter (integers coerce).
pub fn param_f64(params: &Value, name: &str) -> Option<f64> {
    match params.get_field(name) {
        Some(Value::F64(x)) => Some(*x),
        Some(Value::U64(n)) => Some(*n as f64),
        Some(Value::I64(n)) => Some(*n as f64),
        _ => None,
    }
}

/// Reads a string parameter.
pub fn param_str<'a>(params: &'a Value, name: &str) -> Option<&'a str> {
    params.get_field(name).and_then(Value::as_str)
}

/// Reads a boolean parameter.
pub fn param_bool(params: &Value, name: &str) -> Option<bool> {
    match params.get_field(name) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Reads a 16-bit address/word parameter, rejecting out-of-range values.
pub fn param_u16(params: &Value, name: &str) -> Result<Option<u16>, RpcError> {
    match params.get_field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::U64(n)) if *n <= u64::from(u16::MAX) => Ok(Some(*n as u16)),
        Some(other) => Err(RpcError::protocol(
            INVALID_PARAMS,
            format!("`{name}` must be a 16-bit unsigned integer, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every [`EdbError`] variant crosses the wire intact: serialize
    /// into an error line, parse the line back, recover the identical
    /// variant. This is the no-stringly-typed-errors guarantee.
    #[test]
    fn edb_errors_round_trip_the_wire() {
        let variants = vec![
            EdbError::NotAttached { op: "READ" },
            EdbError::NoSession { op: "WRITE" },
            EdbError::CommandTimeout {
                cmd: "READ",
                attempts: 4,
            },
            EdbError::CorruptReply {
                cmd: "GET_PC",
                detail: "bad checksum".to_string(),
            },
            EdbError::AbortedByBrownout { cmd: "WRITE" },
            EdbError::Busy { cmd: "READ" },
            EdbError::LevelNotReached { target_v: 2.4 },
            EdbError::SessionDidNotOpen,
            EdbError::SessionDidNotClose,
            EdbError::Device {
                detail: "firmware does not assemble".to_string(),
            },
            EdbError::Rfid {
                detail: "bad crc".to_string(),
            },
            EdbError::NoRecording { op: "step_back" },
            EdbError::Replay {
                detail: "target precedes the recording start".to_string(),
            },
        ];
        let mut seen_codes = std::collections::BTreeSet::new();
        for error in variants {
            let rendered = error_line(Some(7), &RpcError::engine(&error));
            let value: Value = serde_json::from_str(&rendered).expect("line parses");
            let err_obj = value.get_field("error").expect("has error");
            let code = match err_obj.get_field("code") {
                Some(Value::I64(c)) => *c,
                other => panic!("code must be an integer, got {other:?}"),
            };
            assert!(
                seen_codes.insert(code),
                "error codes must be distinct per variant (collision at {code})"
            );
            let data = err_obj.get_field("data").expect("typed data present");
            let recovered = EdbError::from_value(data).expect("typed error deserializes");
            assert_eq!(recovered, error, "variant must round-trip exactly");
        }
    }

    #[test]
    fn request_lines_parse_and_reject() {
        let ok = parse_request(r#"{"jsonrpc":"2.0","id":3,"method":"status","params":{}}"#)
            .expect("valid request");
        assert_eq!(ok.id, Some(3));
        assert_eq!(ok.method, "status");

        let (_, err) = parse_request("not json").unwrap_err();
        assert_eq!(err.code, PARSE_ERROR);

        let (id, err) = parse_request(r#"{"jsonrpc":"1.0","id":9,"method":"x"}"#).unwrap_err();
        assert_eq!(id, Some(9));
        assert_eq!(err.code, INVALID_REQUEST);

        let (id, err) = parse_request(r#"{"jsonrpc":"2.0","id":4}"#).unwrap_err();
        assert_eq!(id, Some(4));
        assert_eq!(err.code, INVALID_REQUEST);
    }

    #[test]
    fn rendered_lines_have_fixed_key_order() {
        let r = response_line(1, obj(vec![("value", Value::U64(0x5AFE))]));
        assert_eq!(r, r#"{"jsonrpc":"2.0","id":1,"result":{"value":23294}}"#);
        let n = notification_line("vcap", obj(vec![("v", Value::F64(2.5))]));
        assert!(
            n.starts_with(r#"{"jsonrpc":"2.0","method":"vcap","params":"#),
            "{n}"
        );
    }

    #[test]
    fn protocol_and_engine_codes_do_not_overlap() {
        assert!(edb_error_code(&EdbError::SessionDidNotOpen) < EDB_ERROR_BASE);
        for code in [
            PARSE_ERROR,
            INVALID_REQUEST,
            METHOD_NOT_FOUND,
            INVALID_PARAMS,
        ] {
            assert!(!(EDB_ERROR_BASE - 100..=EDB_ERROR_BASE).contains(&code));
        }
    }
}
