//! Debugger-as-a-service: EDB sessions behind newline-delimited
//! JSON-RPC 2.0.
//!
//! The paper's debugger is a box on a bench wired to one target; this
//! crate turns the reproduction into a *service* hosting many simulated
//! targets at once, each one an [`edb_core::DebugSession`] driven
//! through the typed `DebugRequest` → `DebugResponse` engine API. The
//! split is deliberate (and mirrors the `edb-rs` exemplar): the engine
//! crate knows nothing about transports, and this crate knows nothing
//! about wire framing or energy models — it schedules engines and
//! speaks JSON-RPC.
//!
//! Determinism is the design constraint inherited from the rest of the
//! workspace: simulated time only advances inside an explicit request
//! (`run_until`, `step`, or a command exchange), each session is stepped
//! under its own lock, and every response and notification is rendered
//! with a fixed key order — so a scripted transcript replayed against
//! the server is **bit-reproducible** regardless of the worker-pool
//! width (`--threads 1` and `--threads 4` produce identical bytes; the
//! golden-transcript test in CI holds the server to that).
//!
//! Module map:
//!
//! * [`rpc`] — JSON-RPC 2.0 framing: request parsing, deterministic
//!   response rendering, and the 1:1 mapping from [`edb_core::EdbError`]
//!   variants onto RPC error codes (typed errors cross the wire intact).
//! * [`hub`] — the session hub: create/attach/destroy sessions, dispatch
//!   methods, stream event and `Vcap` notifications to subscribers.
//! * [`sched`] — the fixed-width worker pool requests execute on.
//! * [`server`] — the TCP accept loop and per-connection line protocol.
//! * [`client`] — a small blocking client (used by the TUI, the replay
//!   tool, and tests).
//! * [`transcript`] — scripted-session transcripts: parse, replay,
//!   record, diff.
//! * [`tui`] — the terminal frontend: a frame renderer and the
//!   interactive client loop behind `edb-tui`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod hub;
pub mod rpc;
pub mod sched;
pub mod server;
pub mod transcript;
pub mod tui;

pub use client::Client;
pub use hub::SessionHub;
pub use rpc::{RpcError, RpcRequest};
pub use sched::WorkerPool;
pub use server::{Server, ServerConfig};
pub use transcript::{ReplayReport, Transcript};
