//! `serve-replay`: replay a scripted JSON-RPC transcript against the
//! session server and verify byte-identical replies.
//!
//! ```text
//! serve-replay --transcript FILE [--addr ADDR | --spawn] [--threads N]
//!              [--out FILE] [--record]
//! ```
//!
//! With `--spawn` (the default when no `--addr` is given) the server is
//! hosted in-process on an ephemeral port. Exit status: 0 when every
//! reply matched, 1 on any byte mismatch (the diff goes to stderr and,
//! with `--out`, the actual transcript to a file), 2 on usage or I/O
//! errors. `--record` rewrites the transcript file with the server's
//! actual replies — how the golden transcript is (re)generated.

use edb_serve::{Client, ReplayReport, Server, ServerConfig, Transcript};

struct Options {
    transcript: String,
    addr: Option<String>,
    threads: usize,
    out: Option<String>,
    record: bool,
}

fn main() {
    let mut opts = Options {
        transcript: String::new(),
        addr: None,
        threads: 4,
        out: None,
        record: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--transcript" => {
                opts.transcript = args
                    .next()
                    .unwrap_or_else(|| usage("--transcript needs a file"))
            }
            "--addr" => {
                opts.addr = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--addr needs an address")),
                )
            }
            "--spawn" => opts.addr = None,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--out" => opts.out = Some(args.next().unwrap_or_else(|| usage("--out needs a file"))),
            "--record" => opts.record = true,
            "--help" | "-h" => {
                println!(
                    "usage: serve-replay --transcript FILE [--addr ADDR | --spawn] [--threads N] [--out FILE] [--record]"
                );
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if opts.transcript.is_empty() {
        usage("--transcript is required");
    }

    let text = std::fs::read_to_string(&opts.transcript)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", opts.transcript)));
    let transcript =
        Transcript::parse(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", opts.transcript)));

    let mut hosted = None;
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => {
            let server = Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: opts.threads,
            })
            .unwrap_or_else(|e| fail(&format!("cannot spawn server: {e}")));
            let addr = server.addr().to_string();
            hosted = Some(server);
            addr
        }
    };
    let mut client =
        Client::connect(&addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));

    let status = if opts.record {
        let recorded = transcript
            .record(&mut client)
            .unwrap_or_else(|e| fail(&format!("record failed: {e}")));
        std::fs::write(&opts.transcript, recorded.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", opts.transcript)));
        println!(
            "serve-replay: recorded {} step(s) into {}",
            recorded.steps.len(),
            opts.transcript
        );
        0
    } else {
        let report: ReplayReport = transcript
            .replay(&mut client)
            .unwrap_or_else(|e| fail(&format!("replay failed: {e}")));
        if let Some(out) = &opts.out {
            let actual = apply_report(&transcript, &report);
            std::fs::write(out, actual.render())
                .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        }
        if report.ok() {
            println!(
                "serve-replay: OK — {} step(s) byte-identical ({} threads)",
                report.steps, opts.threads
            );
            0
        } else {
            eprintln!(
                "serve-replay: {} of {} step(s) diverged:\n{}",
                report.mismatches.len(),
                report.steps,
                report.diff()
            );
            1
        }
    };
    drop(client);
    if let Some(mut server) = hosted {
        server.stop();
    }
    std::process::exit(status);
}

/// The transcript as the server actually replied: expected lines with
/// every mismatching step's lines replaced by the actual ones.
fn apply_report(transcript: &Transcript, report: &ReplayReport) -> Transcript {
    let mut actual = transcript.clone();
    for m in &report.mismatches {
        actual.steps[m.step].expect = m.actual.clone();
    }
    actual
}

fn usage(message: &str) -> ! {
    eprintln!(
        "serve-replay: {message}\nusage: serve-replay --transcript FILE [--addr ADDR | --spawn] [--threads N] [--out FILE] [--record]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("serve-replay: {message}");
    std::process::exit(2);
}
