//! `edb-serve`: the debugger-as-a-service session server.
//!
//! Hosts any number of simulated intermittent targets behind
//! newline-delimited JSON-RPC 2.0. Connect with `edb-tui`, a line of
//! `nc`, or the `serve-replay` transcript tool.
//!
//! ```text
//! edb-serve [--listen ADDR] [--threads N]
//! ```

use edb_serve::{Server, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4557".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                config.addr = args
                    .next()
                    .unwrap_or_else(|| usage("--listen needs an address"));
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--help" | "-h" => {
                println!("usage: edb-serve [--listen ADDR] [--threads N]");
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let mut server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("edb-serve: cannot listen: {e}");
            std::process::exit(2);
        }
    };
    println!("edb-serve listening on {}", server.addr());
    server.wait();
}

fn usage(message: &str) -> ! {
    eprintln!("edb-serve: {message}\nusage: edb-serve [--listen ADDR] [--threads N]");
    std::process::exit(2);
}
