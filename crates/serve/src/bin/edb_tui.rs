//! `edb-tui`: a live terminal client for the session server.
//!
//! Shows the capacitor voltage, PC, disassembly around the PC, the
//! breakpoint list, and the event feed of one hosted session, and maps
//! console commands onto the JSON-RPC surface.
//!
//! ```text
//! edb-tui [--connect ADDR] [--firmware PRESET] [--seed N] [--script FILE]
//! ```
//!
//! Without `--connect`, a server is self-hosted in-process. With
//! `--script FILE`, commands are read from the file instead of stdin
//! and each resulting frame is printed to stdout — the headless mode CI
//! exercises.

use edb_serve::tui::TuiState;
use edb_serve::{Client, Server, ServerConfig};
use serde::Value;
use std::io::{BufRead, Write};

struct Options {
    connect: Option<String>,
    firmware: String,
    seed: u64,
    script: Option<String>,
}

fn main() {
    let mut opts = Options {
        connect: None,
        firmware: "assert".to_string(),
        seed: 1,
        script: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                opts.connect = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--connect needs an address")),
                )
            }
            "--firmware" => {
                opts.firmware = args
                    .next()
                    .unwrap_or_else(|| usage("--firmware needs a preset"))
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"))
            }
            "--script" => {
                opts.script = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--script needs a file")),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: edb-tui [--connect ADDR] [--firmware PRESET] [--seed N] [--script FILE]"
                );
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    // Self-host unless pointed at a running server.
    let mut hosted = None;
    let addr = match &opts.connect {
        Some(addr) => addr.clone(),
        None => {
            let server = Server::start(ServerConfig::default()).unwrap_or_else(|e| {
                eprintln!("edb-tui: cannot self-host: {e}");
                std::process::exit(2);
            });
            let addr = server.addr().to_string();
            hosted = Some(server);
            addr
        }
    };
    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("edb-tui: cannot connect to {addr}: {e}");
        std::process::exit(2);
    });

    let mut state = TuiState::new();
    create_session(&mut client, &mut state, &opts);
    refresh(&mut client, &mut state);

    match opts.script.clone() {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("edb-tui: cannot read {path}: {e}");
                std::process::exit(2);
            });
            for command in text.lines() {
                let command = command.trim();
                if command.is_empty() || command.starts_with('#') {
                    continue;
                }
                println!("--- {command}");
                if !run_command(&mut client, &mut state, command) {
                    break;
                }
                refresh(&mut client, &mut state);
                print!("{}", state.draw());
            }
        }
        None => {
            let stdin = std::io::stdin();
            loop {
                print!("\x1b[2J\x1b[H{}", state.draw());
                print!("edb> ");
                std::io::stdout().flush().ok();
                let mut command = String::new();
                if stdin.lock().read_line(&mut command).unwrap_or(0) == 0 {
                    break;
                }
                let command = command.trim();
                if command.is_empty() {
                    continue;
                }
                if !run_command(&mut client, &mut state, command) {
                    break;
                }
                refresh(&mut client, &mut state);
            }
        }
    }
    drop(client);
    if let Some(mut server) = hosted {
        server.stop();
    }
}

fn usage(message: &str) -> ! {
    eprintln!(
        "edb-tui: {message}\nusage: edb-tui [--connect ADDR] [--firmware PRESET] [--seed N] [--script FILE]"
    );
    std::process::exit(2);
}

fn create_session(client: &mut Client, state: &mut TuiState, opts: &Options) {
    let outcome = client
        .call(
            "create",
            vec![
                ("firmware", Value::Str(opts.firmware.clone())),
                ("seed", Value::U64(opts.seed)),
                (
                    "harvester",
                    edb_serve::rpc::obj(vec![("voc", Value::F64(3.2)), ("r", Value::F64(220.0))]),
                ),
                ("wait_session_ms", Value::U64(2000)),
            ],
        )
        .unwrap_or_else(|e| {
            eprintln!("edb-tui: create failed: {e}");
            std::process::exit(2);
        });
    match &outcome.outcome {
        Ok(result) => {
            state.session = edb_serve::rpc::param_u64(result, "session");
            state.note(format!(
                "session {} created ({})",
                state.session.unwrap_or(0),
                opts.firmware
            ));
        }
        Err(e) => {
            eprintln!("edb-tui: create failed: {} (code {})", e.message, e.code);
            std::process::exit(2);
        }
    }
    let _ = client.call("subscribe_events", vec![("from_start", Value::Bool(true))]);
}

/// Quietly refreshes the panes (status, disassembly, breakpoints).
fn refresh(client: &mut Client, state: &mut TuiState) {
    if let Ok(out) = client.call("status", vec![]) {
        absorb(state, &out.notifications);
        if let Ok(result) = &out.outcome {
            state.apply_status(result);
        }
    }
    if let Ok(out) = client.call("disasm", vec![("count", Value::U64(12))]) {
        absorb(state, &out.notifications);
        if let Ok(result) = &out.outcome {
            state.apply_disasm(result);
        }
    }
    if let Ok(out) = client.call("breakpoints", vec![]) {
        absorb(state, &out.notifications);
        if let Ok(result) = &out.outcome {
            state.apply_breakpoints(result);
        }
    }
}

fn absorb(state: &mut TuiState, notifications: &[Value]) {
    for note in notifications {
        state.push_event(note);
    }
}

/// One-line digest of an `analyze` report for the event feed.
fn summarize_analysis(report: &Value) -> String {
    let get_u64 = |name: &str| match report.get_field(name) {
        Some(Value::U64(n)) => Some(*n),
        _ => None,
    };
    let blocks = get_u64("blocks").unwrap_or(0);
    let unresolved = match report.get_field("unresolved") {
        Some(Value::Seq(items)) => items.len(),
        _ => 0,
    };
    match get_u64("wcec_cycles") {
        Some(cycles) => {
            let completes = matches!(
                report.get_field("completes_on_one_charge"),
                Some(Value::Bool(true))
            );
            let charges = get_u64("charge_cycles").unwrap_or(0);
            format!(
                "analyze: WCEC {cycles} cycles, {} on one charge ({charges} charge cycle(s), \
                 {blocks} blocks, {unresolved} unresolved)",
                if completes {
                    "completes"
                } else {
                    "DOES NOT complete"
                }
            )
        }
        None => {
            let reason = report
                .get_field("unbounded_reason")
                .and_then(Value::as_str)
                .unwrap_or("unknown");
            format!("analyze: unbounded — {reason} ({blocks} blocks, {unresolved} unresolved)")
        }
    }
}

fn parse_u16(token: &str) -> Option<u16> {
    let token = token.trim();
    match token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        Some(hex) => u16::from_str_radix(hex, 16).ok(),
        None => u16::from_str_radix(token, 16).ok(),
    }
}

/// Executes one console command. Returns `false` to quit.
fn run_command(client: &mut Client, state: &mut TuiState, command: &str) -> bool {
    let mut words = command.split_whitespace();
    let verb = words.next().unwrap_or("");
    let args: Vec<&str> = words.collect();
    let call =
        |client: &mut Client, state: &mut TuiState, method: &str, params: Vec<(&str, Value)>| {
            match client.call(method, params) {
                Ok(out) => {
                    absorb(state, &out.notifications);
                    match out.outcome {
                        Ok(result) => {
                            state.note(format!(
                                "{method}: {}",
                                serde_json::to_string(&result).unwrap_or_default()
                            ));
                            Some(result)
                        }
                        Err(e) => {
                            // The no-recording code gets a remedial hint:
                            // rewinding needs a recording session.
                            let hint = if e.code == edb_serve::rpc::EDB_ERROR_BASE - 12 {
                                " — hint: create the session with record:true to time-travel"
                            } else {
                                ""
                            };
                            state.note(format!("{method}: {} (code {}){hint}", e.message, e.code));
                            None
                        }
                    }
                }
                Err(e) => {
                    state.note(format!("{method}: transport error: {e}"));
                    None
                }
            }
        };
    match verb {
        "quit" | "exit" | "q" => return false,
        "run" => {
            let ms = args.first().and_then(|s| s.parse().ok()).unwrap_or(100);
            if let Some(result) = call(client, state, "run_until", vec![("ms", Value::U64(ms))]) {
                state.apply_status(&result);
            }
        }
        "step" => {
            let n = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
            if let Some(result) = call(client, state, "step", vec![("count", Value::U64(n))]) {
                state.apply_status(&result);
            }
        }
        "read" => match args.first().copied().and_then(parse_u16) {
            Some(addr) => {
                call(
                    client,
                    state,
                    "read",
                    vec![("addr", Value::U64(u64::from(addr)))],
                );
            }
            None => state.note("usage: read <hex-addr>"),
        },
        "write" => match (
            args.first().copied().and_then(parse_u16),
            args.get(1).copied().and_then(parse_u16),
        ) {
            (Some(addr), Some(value)) => {
                call(
                    client,
                    state,
                    "write",
                    vec![
                        ("addr", Value::U64(u64::from(addr))),
                        ("value", Value::U64(u64::from(value))),
                    ],
                );
            }
            _ => state.note("usage: write <hex-addr> <hex-value>"),
        },
        "pc" => {
            call(client, state, "get_pc", vec![]);
        }
        "break" => match args.first().and_then(|s| s.parse::<u64>().ok()) {
            Some(id) => {
                let mut params = vec![("id", Value::U64(id))];
                if let Some(energy) = args.get(1).and_then(|s| s.parse::<f64>().ok()) {
                    params.push(("energy", Value::F64(energy)));
                }
                call(client, state, "set_breakpoint", params);
            }
            None => state.note("usage: break <id> [energy-volts]"),
        },
        "clear" => match args.first().and_then(|s| s.parse::<u64>().ok()) {
            Some(id) => {
                call(
                    client,
                    state,
                    "clear_breakpoint",
                    vec![("id", Value::U64(id))],
                );
            }
            None => state.note("usage: clear <id>"),
        },
        "guard" => match args.first().and_then(|s| s.parse::<f64>().ok()) {
            Some(threshold) => {
                call(
                    client,
                    state,
                    "arm_energy_guard",
                    vec![("threshold", Value::F64(threshold))],
                );
            }
            None => state.note("usage: guard <volts>"),
        },
        "charge" | "discharge" => match args.first().and_then(|s| s.parse::<f64>().ok()) {
            Some(to) => {
                call(client, state, verb, vec![("to", Value::F64(to))]);
            }
            None => state.note("usage: charge|discharge <volts>"),
        },
        "resume" => {
            if let Some(result) = call(client, state, "resume", vec![]) {
                state.apply_status(&result);
            }
        }
        "back" => {
            let n = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
            if let Some(result) = call(client, state, "step_back", vec![("n", Value::U64(n))]) {
                state.apply_status(&result);
            }
        }
        "goto" => match args.first().and_then(|s| s.parse::<u64>().ok()) {
            Some(ms) => {
                if let Some(result) = call(client, state, "goto_time", vec![("ms", Value::U64(ms))])
                {
                    state.apply_status(&result);
                }
            }
            None => state.note("usage: goto <ms> (absolute sim time)"),
        },
        "rc" => {
            if let Some(result) = call(client, state, "reverse_continue", vec![]) {
                state.apply_status(&result);
            }
        }
        "status" => {
            if let Some(result) = call(client, state, "status", vec![]) {
                state.apply_status(&result);
            }
        }
        "disasm" => {
            let mut params = vec![("count", Value::U64(12))];
            if let Some(addr) = args.first().copied().and_then(parse_u16) {
                params.push(("addr", Value::U64(u64::from(addr))));
            }
            if let Some(result) = call(client, state, "disasm", params) {
                state.apply_disasm(&result);
            }
        }
        "analyze" => {
            let mut params = vec![];
            if let Some(first) = args.first() {
                match parse_u16(first) {
                    Some(addr) => params.push(("entry", Value::U64(u64::from(addr)))),
                    None => params.push(("name", Value::Str((*first).to_string()))),
                }
            }
            // The full report is large; surface the verdict and point
            // at the JSON-RPC method (or `edb-analyze`) for the rest.
            match client.call("analyze", params) {
                Ok(out) => {
                    absorb(state, &out.notifications);
                    match out.outcome {
                        Ok(report) => state.note(summarize_analysis(&report)),
                        Err(e) => state.note(format!("analyze: {} (code {})", e.message, e.code)),
                    }
                }
                Err(e) => state.note(format!("analyze: transport error: {e}")),
            }
        }
        other => state.note(format!(
            "unknown command `{other}` (try: run, step, analyze, read, pc)"
        )),
    }
    true
}
