//! A small blocking JSON-RPC client over one TCP connection.
//!
//! Used by the TUI, the transcript replay tool, and the integration
//! tests. One request is in flight at a time: [`Client::call`] writes a
//! line and reads until the matching response arrives, collecting any
//! server notifications that precede it.

use crate::rpc::{self, obj, RpcError};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything one request produced: the notifications the server
/// streamed ahead of the response, and the response itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// Server notifications (parsed `params`, with `method` under the
    /// `_method` key untouched — these are the raw notification
    /// objects, in arrival order).
    pub notifications: Vec<Value>,
    /// The response `result`, or the typed error.
    pub outcome: Result<Value, RpcError>,
}

/// A blocking JSON-RPC connection to a session server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            next_id: 1,
        })
    }

    /// Sends one raw request line and reads every reply line up to and
    /// including the response (the line carrying an `id`). The request
    /// must carry an `id` itself, or this blocks forever.
    pub fn exchange_line(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut lines = Vec::new();
        loop {
            let mut reply = String::new();
            let n = self.reader.read_line(&mut reply)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                ));
            }
            let reply = reply.trim_end().to_string();
            let is_response = serde_json::from_str::<Value>(&reply)
                .map(|v| v.get_field("id").is_some())
                .unwrap_or(false);
            lines.push(reply);
            if is_response {
                return Ok(lines);
            }
        }
    }

    /// Calls a method with an object of params, returning the parsed
    /// outcome. Engine failures come back as the typed [`RpcError`]
    /// (recover the exact [`edb_core::EdbError`] with
    /// [`RpcError::to_edb_error`]).
    pub fn call(
        &mut self,
        method: &str,
        params: Vec<(&str, Value)>,
    ) -> std::io::Result<CallOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        let line = serde_json::to_string(&obj(vec![
            ("jsonrpc", Value::Str(rpc::VERSION.to_string())),
            ("id", Value::U64(id)),
            ("method", Value::Str(method.to_string())),
            ("params", obj(params)),
        ]))
        .expect("request renders");
        let lines = self.exchange_line(&line)?;
        let mut notifications = Vec::new();
        let mut outcome = None;
        for text in &lines {
            let Ok(value) = serde_json::from_str::<Value>(text) else {
                continue;
            };
            if value.get_field("id").is_none() {
                notifications.push(value);
                continue;
            }
            outcome = Some(match value.get_field("error") {
                Some(err) => Err(parse_error(err)),
                None => Ok(value.get_field("result").cloned().unwrap_or(Value::Null)),
            });
        }
        let outcome = outcome.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no response line")
        })?;
        Ok(CallOutcome {
            notifications,
            outcome,
        })
    }
}

/// Reconstructs a typed [`RpcError`] from a response's `error` object.
fn parse_error(err: &Value) -> RpcError {
    let code = match err.get_field("code") {
        Some(Value::I64(c)) => *c,
        Some(Value::U64(c)) => *c as i64,
        _ => 0,
    };
    let message = err
        .get_field("message")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    RpcError {
        code,
        message,
        data: err.get_field("data").cloned(),
    }
}
