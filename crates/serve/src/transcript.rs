//! Scripted-session transcripts: the determinism contract as a file.
//!
//! A transcript is a plain-text script of one connection's wire
//! traffic:
//!
//! ```text
//! # comment
//! > {"jsonrpc":"2.0","id":1,"method":"server_info","params":{}}
//! < {"jsonrpc":"2.0","id":1,"result":{...}}
//! ```
//!
//! `>` lines are sent verbatim; `<` lines are the *expected* reply
//! bytes (notifications first, response last — exactly as the server
//! frames them). Because the server is deterministic, replaying the
//! golden transcript must reproduce every `<` line byte-identically,
//! at any worker-pool width. CI's `serve-smoke` job holds the server
//! to that, and [`ReplayReport`] renders the diff when it fails.

use crate::client::Client;

/// One scripted exchange: a request line and its expected reply lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The request line to send (no newline).
    pub send: String,
    /// The expected reply lines, in order.
    pub expect: Vec<String>,
}

/// A parsed transcript.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Transcript {
    /// The scripted exchanges, in order.
    pub steps: Vec<Step>,
}

/// One replayed step that came back with different bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Zero-based step index in the transcript.
    pub step: usize,
    /// The request line that was sent.
    pub sent: String,
    /// What the transcript expected.
    pub expected: Vec<String>,
    /// What the server actually said.
    pub actual: Vec<String>,
}

/// The outcome of replaying a transcript against a live server.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Steps replayed.
    pub steps: usize,
    /// Steps whose reply bytes differed.
    pub mismatches: Vec<Mismatch>,
}

impl ReplayReport {
    /// Whether every step reproduced byte-identically.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// A human-readable diff of every mismatch (empty string when ok).
    pub fn diff(&self) -> String {
        let mut out = String::new();
        for m in &self.mismatches {
            out.push_str(&format!("step {}: > {}\n", m.step + 1, m.sent));
            for line in &m.expected {
                out.push_str(&format!("  expected: {line}\n"));
            }
            for line in &m.actual {
                out.push_str(&format!("  actual:   {line}\n"));
            }
            // Pinpoint the first divergence so a CI log is enough to
            // debug: which reply line differs, and at which byte the
            // texts split (long JSON lines look identical at a glance).
            let first = m
                .expected
                .iter()
                .zip(&m.actual)
                .position(|(e, a)| e != a)
                .or_else(|| {
                    (m.expected.len() != m.actual.len())
                        .then_some(m.expected.len().min(m.actual.len()))
                });
            if let Some(i) = first {
                let expected = m.expected.get(i).map(String::as_str).unwrap_or("<missing>");
                let actual = m.actual.get(i).map(String::as_str).unwrap_or("<missing>");
                let byte = expected
                    .bytes()
                    .zip(actual.bytes())
                    .position(|(e, a)| e != a)
                    .unwrap_or_else(|| expected.len().min(actual.len()));
                out.push_str(&format!(
                    "  first difference: reply line {} (byte {byte})\n",
                    i + 1
                ));
                out.push_str(&format!("    expected: {expected}\n"));
                out.push_str(&format!("    actual:   {actual}\n"));
                let context_start = byte.saturating_sub(20);
                let excerpt = |s: &str| {
                    s.get(context_start..(byte + 20).min(s.len()))
                        .unwrap_or("")
                        .to_string()
                };
                out.push_str(&format!(
                    "    near byte {byte}: expected ...{}... vs actual ...{}...\n",
                    excerpt(expected),
                    excerpt(actual)
                ));
            }
        }
        out
    }
}

impl Transcript {
    /// Parses transcript text. Blank lines and `#` comments are
    /// ignored; a `<` line before any `>` line is an error.
    pub fn parse(text: &str) -> Result<Transcript, String> {
        let mut steps: Vec<Step> = Vec::new();
        for (k, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(send) = line.strip_prefix('>') {
                steps.push(Step {
                    send: send.trim().to_string(),
                    expect: Vec::new(),
                });
            } else if let Some(expect) = line.strip_prefix('<') {
                match steps.last_mut() {
                    Some(step) => step.expect.push(expect.trim().to_string()),
                    None => {
                        return Err(format!("line {}: `<` before any `>` line", k + 1));
                    }
                }
            } else {
                return Err(format!(
                    "line {}: expected `>`, `<`, `#`, or blank, got: {line}",
                    k + 1
                ));
            }
        }
        Ok(Transcript { steps })
    }

    /// Renders the transcript back to canonical text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!("> {}\n", step.send));
            for line in &step.expect {
                out.push_str(&format!("< {line}\n"));
            }
        }
        out
    }

    /// Replays every step against a live server and reports byte
    /// mismatches.
    pub fn replay(&self, client: &mut Client) -> std::io::Result<ReplayReport> {
        let mut mismatches = Vec::new();
        for (k, step) in self.steps.iter().enumerate() {
            let actual = client.exchange_line(&step.send)?;
            if actual != step.expect {
                mismatches.push(Mismatch {
                    step: k,
                    sent: step.send.clone(),
                    expected: step.expect.clone(),
                    actual,
                });
            }
        }
        Ok(ReplayReport {
            steps: self.steps.len(),
            mismatches,
        })
    }

    /// Sends every step and records what the server actually replied —
    /// how a golden transcript is (re)generated.
    pub fn record(&self, client: &mut Client) -> std::io::Result<Transcript> {
        let mut steps = Vec::new();
        for step in &self.steps {
            let actual = client.exchange_line(&step.send)?;
            steps.push(Step {
                send: step.send.clone(),
                expect: actual,
            });
        }
        Ok(Transcript { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_round_trip() {
        let text = "# hello\n\n> {\"a\":1}\n< {\"b\":2}\n< {\"c\":3}\n> {\"d\":4}\n";
        let t = Transcript::parse(text).expect("parses");
        assert_eq!(t.steps.len(), 2);
        assert_eq!(t.steps[0].expect.len(), 2);
        assert_eq!(
            t.render(),
            "> {\"a\":1}\n< {\"b\":2}\n< {\"c\":3}\n> {\"d\":4}\n"
        );
        assert_eq!(Transcript::parse(&t.render()).expect("reparses"), t);
    }

    #[test]
    fn orphan_expect_is_rejected() {
        let err = Transcript::parse("< {\"b\":2}\n").unwrap_err();
        assert!(err.contains("before any"), "{err}");
    }

    #[test]
    fn junk_lines_are_rejected_with_position() {
        let err = Transcript::parse("> ok\nwhat is this\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn report_diff_names_the_step() {
        let report = ReplayReport {
            steps: 3,
            mismatches: vec![Mismatch {
                step: 1,
                sent: "{\"x\":1}".to_string(),
                expected: vec!["{\"y\":1}".to_string()],
                actual: vec!["{\"y\":2}".to_string()],
            }],
        };
        assert!(!report.ok());
        let diff = report.diff();
        assert!(diff.contains("step 2"), "{diff}");
        assert!(diff.contains("expected: {\"y\":1}"), "{diff}");
        assert!(diff.contains("actual:   {\"y\":2}"), "{diff}");
        // The diff pinpoints the diverging line and byte: the texts
        // split at the value of "y", byte 5 of {"y":1} vs {"y":2}.
        assert!(
            diff.contains("first difference: reply line 1 (byte 5)"),
            "{diff}"
        );
    }

    #[test]
    fn report_diff_pinpoints_missing_lines() {
        // Matching prefix but a missing reply line: the first
        // difference is the line the actual output never produced.
        let report = ReplayReport {
            steps: 1,
            mismatches: vec![Mismatch {
                step: 0,
                sent: "{\"x\":1}".to_string(),
                expected: vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()],
                actual: vec!["{\"a\":1}".to_string()],
            }],
        };
        let diff = report.diff();
        assert!(diff.contains("first difference: reply line 2"), "{diff}");
        assert!(diff.contains("actual:   <missing>"), "{diff}");
    }
}
