//! The terminal frontend: a hand-rolled frame renderer and the view
//! state behind the `edb-tui` binary.
//!
//! Offline stand-in note: the natural crate here is `ratatui`, but the
//! workspace vendors no TUI dependency, so this module draws fixed-size
//! character frames itself. Everything is pure: [`TuiState`] is updated
//! from parsed JSON-RPC values and [`TuiState::draw`] renders a frame
//! as a `String`, so the whole display is testable headlessly (and the
//! binary's `--script` mode prints the same frames to stdout).

use crate::rpc::{param_bool, param_f64, param_str, param_u64};
use serde::Value;
use std::collections::VecDeque;

/// Frame width, characters.
pub const WIDTH: usize = 80;
/// Frame height, rows.
pub const HEIGHT: usize = 24;

/// A fixed-size character frame.
#[derive(Debug, Clone)]
pub struct Frame {
    cells: Vec<char>,
}

impl Default for Frame {
    fn default() -> Self {
        Frame::new()
    }
}

impl Frame {
    /// A blank frame.
    pub fn new() -> Self {
        Frame {
            cells: vec![' '; WIDTH * HEIGHT],
        }
    }

    /// Writes `text` at `(x, y)`, clipped to the frame.
    pub fn put(&mut self, x: usize, y: usize, text: &str) {
        if y >= HEIGHT {
            return;
        }
        for (k, ch) in text.chars().enumerate() {
            let col = x + k;
            if col >= WIDTH {
                break;
            }
            self.cells[y * WIDTH + col] = ch;
        }
    }

    /// A horizontal rule across the full width at row `y`.
    pub fn hline(&mut self, y: usize) {
        self.put(0, y, &"-".repeat(WIDTH));
    }

    /// Renders the frame as `HEIGHT` newline-terminated rows.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((WIDTH + 1) * HEIGHT);
        for row in 0..HEIGHT {
            let line: String = self.cells[row * WIDTH..(row + 1) * WIDTH].iter().collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// The status fields the TUI shows, parsed from a `status` result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusView {
    /// Simulation time, nanoseconds.
    pub time_ns: u64,
    /// Capacitor voltage, volts.
    pub v_cap: f64,
    /// Regulated rail, volts.
    pub v_reg: f64,
    /// Target powered?
    pub powered: bool,
    /// Power cycles so far.
    pub reboots: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Interactive session open?
    pub session_active: bool,
    /// Inside an energy guard?
    pub in_guard: bool,
    /// Program counter.
    pub pc: u16,
}

impl StatusView {
    /// Parses a `status` (or `run_until`/`step`) result object.
    pub fn from_value(value: &Value) -> StatusView {
        StatusView {
            time_ns: param_u64(value, "time_ns").unwrap_or(0),
            v_cap: param_f64(value, "v_cap").unwrap_or(0.0),
            v_reg: param_f64(value, "v_reg").unwrap_or(0.0),
            powered: param_bool(value, "powered").unwrap_or(false),
            reboots: param_u64(value, "reboots").unwrap_or(0),
            instructions: param_u64(value, "instructions").unwrap_or(0),
            session_active: param_bool(value, "session_active").unwrap_or(false),
            in_guard: param_bool(value, "in_guard").unwrap_or(false),
            pc: param_u64(value, "pc").unwrap_or(0) as u16,
        }
    }
}

/// Everything the TUI shows, updated from call results and event
/// notifications.
#[derive(Debug, Clone, Default)]
pub struct TuiState {
    /// The attached session ID.
    pub session: Option<u64>,
    /// The last status snapshot.
    pub status: StatusView,
    /// Recent `Vcap` readings, oldest first (bounded).
    pub vcap_history: VecDeque<f64>,
    /// Disassembly around the PC: `(addr, text)` rows.
    pub disasm: Vec<(u16, String)>,
    /// Enabled breakpoints: `(id, optional energy threshold)`.
    pub breakpoints: Vec<(u8, Option<f64>)>,
    /// Recent event labels, oldest first (bounded).
    pub events: VecDeque<String>,
    /// One-line result/err note from the last command.
    pub message: String,
}

const VCAP_KEEP: usize = 40;
const EVENTS_KEEP: usize = 6;

impl TuiState {
    /// Fresh, unattached state.
    pub fn new() -> Self {
        TuiState::default()
    }

    /// Applies a status result object (and samples its `Vcap`).
    pub fn apply_status(&mut self, value: &Value) {
        self.status = StatusView::from_value(value);
        self.vcap_history.push_back(self.status.v_cap);
        while self.vcap_history.len() > VCAP_KEEP {
            self.vcap_history.pop_front();
        }
    }

    /// Applies a `disasm` result object.
    pub fn apply_disasm(&mut self, value: &Value) {
        self.disasm.clear();
        if let Some(Value::Seq(lines)) = value.get_field("lines") {
            for line in lines {
                let addr = param_u64(line, "addr").unwrap_or(0) as u16;
                let text = param_str(line, "text").unwrap_or("").to_string();
                self.disasm.push((addr, text));
            }
        }
    }

    /// Applies a `breakpoints` result object.
    pub fn apply_breakpoints(&mut self, value: &Value) {
        self.breakpoints.clear();
        if let Some(Value::Seq(list)) = value.get_field("breakpoints") {
            for bp in list {
                let id = param_u64(bp, "id").unwrap_or(0) as u8;
                self.breakpoints.push((id, param_f64(bp, "energy")));
            }
        }
    }

    /// Applies one server notification (an `event` line's full object).
    pub fn push_event(&mut self, notification: &Value) {
        let Some(params) = notification.get_field("params") else {
            return;
        };
        let time_ns = param_u64(params, "time_ns").unwrap_or(0);
        let label = param_str(params, "label").unwrap_or("?");
        if param_str(params, "tag") == Some("energy") {
            if let Some(v) = label
                .strip_prefix("energy ")
                .and_then(|s| s.strip_suffix(" V"))
                .and_then(|s| s.parse::<f64>().ok())
            {
                self.vcap_history.push_back(v);
                while self.vcap_history.len() > VCAP_KEEP {
                    self.vcap_history.pop_front();
                }
            }
            return;
        }
        self.events
            .push_back(format!("[{:>9.3} ms] {label}", time_ns as f64 * 1e-6));
        while self.events.len() > EVENTS_KEEP {
            self.events.pop_front();
        }
    }

    /// Sets the one-line message shown under the panes.
    pub fn note(&mut self, message: impl Into<String>) {
        self.message = message.into();
    }

    /// Renders the full frame.
    pub fn draw(&self) -> String {
        let mut f = Frame::new();
        let s = &self.status;
        let title = match self.session {
            Some(id) => format!(
                " edb-tui | session {id} | t={:.3} ms | pc={:#06x} | {} ",
                s.time_ns as f64 * 1e-6,
                s.pc,
                if s.session_active {
                    "session OPEN"
                } else if s.powered {
                    "running"
                } else {
                    "off"
                },
            ),
            None => " edb-tui | not attached ".to_string(),
        };
        f.put(0, 0, &format!("{title:=^width$}", width = WIDTH));

        // Left pane: disassembly around the PC.
        f.put(1, 2, "disassembly");
        for (row, (addr, text)) in self.disasm.iter().take(12).enumerate() {
            let marker = if *addr == s.pc { ">" } else { " " };
            f.put(0, 3 + row, &format!("{marker} {addr:#06x}  {text}"));
        }

        // Right pane: energy, status, breakpoints.
        let rx = 44;
        f.put(
            rx,
            2,
            &format!("Vcap {:.3} V   Vreg {:.3} V", s.v_cap, s.v_reg),
        );
        f.put(rx, 3, &sparkline(&self.vcap_history, WIDTH - rx - 1));
        f.put(
            rx,
            5,
            &format!("reboots {:<6} instrs {}", s.reboots, s.instructions),
        );
        f.put(
            rx,
            6,
            &format!(
                "powered {}   guard {}",
                if s.powered { "yes" } else { "no " },
                if s.in_guard { "yes" } else { "no" }
            ),
        );
        f.put(rx, 8, "breakpoints");
        if self.breakpoints.is_empty() {
            f.put(rx, 9, "  (none)");
        }
        for (row, (id, energy)) in self.breakpoints.iter().take(5).enumerate() {
            let line = match energy {
                Some(v) => format!("  #{id} @ {v:.2} V"),
                None => format!("  #{id}"),
            };
            f.put(rx, 9 + row, &line);
        }

        // Event feed.
        f.hline(15);
        f.put(1, 15, " events ");
        for (row, event) in self.events.iter().rev().take(EVENTS_KEEP).enumerate() {
            f.put(1, 16 + row, event);
        }

        // Message + help.
        f.hline(22);
        f.put(1, 22, &format!(" {} ", self.message));
        f.put(
            1,
            23,
            "run <ms> | step [n] | back [n] | goto <ms> | rc | analyze [sym] | read/write | break",
        );
        f.render()
    }
}

/// A one-row bar chart of recent readings, scaled to the data range.
fn sparkline(history: &VecDeque<f64>, width: usize) -> String {
    const LEVELS: &[char] = &['_', '.', ':', '-', '=', '+', '*', '#'];
    if history.is_empty() {
        return "(no samples)".to_string();
    }
    let lo = history.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = history.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    history
        .iter()
        .rev()
        .take(width)
        .rev()
        .map(|v| {
            let k = ((v - lo) / span * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[k.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::obj;

    #[test]
    fn frame_geometry_is_fixed() {
        let mut state = TuiState::new();
        state.session = Some(3);
        state.apply_status(&obj(vec![
            ("time_ns", Value::U64(1_500_000)),
            ("v_cap", Value::F64(2.8)),
            ("v_reg", Value::F64(1.8)),
            ("powered", Value::Bool(true)),
            ("reboots", Value::U64(2)),
            ("instructions", Value::U64(12345)),
            ("session_active", Value::Bool(true)),
            ("in_guard", Value::Bool(false)),
            ("pc", Value::U64(0x4412)),
        ]));
        state.disasm = vec![
            (0x4410, "movi r0, 1".to_string()),
            (0x4412, "call 0xe0d2".to_string()),
        ];
        state.breakpoints = vec![(1, None), (2, Some(2.25))];
        state
            .events
            .push_back("[    1.500 ms] assert 1".to_string());
        state.note("read 0x6000 -> 0x1101");
        let frame = state.draw();
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(lines.len(), HEIGHT);
        assert!(lines.iter().all(|l| l.chars().count() <= WIDTH));
        assert!(frame.contains("session 3"), "{frame}");
        assert!(frame.contains("> 0x4412"), "{frame}"); // PC marker
        assert!(frame.contains("#2 @ 2.25 V"), "{frame}");
        assert!(frame.contains("assert 1"), "{frame}");
        assert!(frame.contains("read 0x6000 -> 0x1101"), "{frame}");
    }

    #[test]
    fn energy_events_feed_the_sparkline_not_the_feed() {
        let mut state = TuiState::new();
        let note = obj(vec![(
            "params",
            obj(vec![
                ("session", Value::U64(1)),
                ("seq", Value::U64(0)),
                ("time_ns", Value::U64(1000)),
                ("tag", Value::Str("energy".to_string())),
                ("label", Value::Str("energy 2.501 V".to_string())),
            ]),
        )]);
        state.push_event(&note);
        assert_eq!(state.vcap_history.len(), 1);
        assert!(state.events.is_empty());
        assert!((state.vcap_history[0] - 2.501).abs() < 1e-9);
    }

    #[test]
    fn sparkline_scales_to_range() {
        let mut h = VecDeque::new();
        h.extend([2.0, 2.5, 3.0]);
        let bar = sparkline(&h, 10);
        assert_eq!(bar.chars().count(), 3);
        assert!(bar.starts_with('_') && bar.ends_with('#'), "{bar}");
    }
}
