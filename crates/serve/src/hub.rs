//! The session hub: many hosted debug sessions behind one method table.
//!
//! The hub owns every [`DebugSession`] the server created, keyed by a
//! monotonically assigned session ID, each behind its own lock so
//! independent sessions make progress concurrently while any one
//! session steps strictly serially. All per-connection state (which
//! session is attached, event-stream cursors) lives in [`ConnState`] on
//! the connection, never in the hub — so two observers can stream the
//! same session independently and a dropped connection leaks nothing
//! into the next one.
//!
//! Determinism: simulated time advances only inside an explicit request
//! (`run_until`, `step`, a command exchange, `resume`, charge/
//! discharge), and [`dispatch`](SessionHub::dispatch) renders every
//! response and notification with a fixed key order. A scripted
//! transcript against one connection therefore replays bit-identically
//! at any worker-pool width.

use crate::rpc::{
    self, notification_line, obj, param_bool, param_f64, param_str, param_u16, param_u64,
    parse_request, RpcError, RpcRequest,
};
use edb_core::fleet::{FleetConfig, FleetSim};
use edb_core::replay::verify_fleet;
use edb_core::{
    ChannelFaultConfig, DebugRequest, DebugResponse, DebugSession, FleetOp, FleetSpec, FleetTape,
    HarvesterSpec, SessionSpec, WorldSpec,
};
use edb_energy::SimTime;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Firmware presets a client can name in `create` instead of shipping
/// assembly source. Each is a small instrumented application over the
/// `libEDB` runtime.
pub const FIRMWARE_PRESETS: &[&str] = &["assert", "spin", "guard"];

/// Event tags excluded from an event subscription unless the client
/// names tags explicitly: the passive `Vcap` stream fires at the sample
/// rate and would drown an interactive feed.
pub const DEFAULT_EVENT_EXCLUDE: &[&str] = &["energy"];

fn preset_source(name: &str) -> Option<&'static str> {
    // Every preset wires the energy-breakpoint ISR vector so
    // `arm_energy_guard` is safe against any of them.
    match name {
        // Asserts ONCE at boot (so `wait_session_ms` catches an open
        // session), then — after the host resumes it — counts in FRAM,
        // pulsing watchpoint 2 every 256 iterations.
        "assert" => Some(
            r#"
            .org 0x4400
        main:
            movi sp, 0x2400
            movi r1, 0x6000
            movi r0, 0x1101
            st   [r1], r0
            movi r0, 1
            call __edb_assert_fail
        loop:
            ld   r0, [r1]
            add  r0, 1
            st   [r1], r0
            mov  r2, r0
            and  r2, 0xFF
            jnz  loop
            movi r0, 2
            call __edb_watchpoint
            jmp  loop
            .org 0xFFFC
            .word __edb_isr
            .org 0xFFFE
            .word main
            "#,
        ),
        "spin" => Some(
            r#"
            .org 0x4400
        main:
            movi sp, 0x2400
            movi r1, 0x6000
            movi r0, 0
        loop:
            add  r0, 1
            st   [r1], r0
            jmp  loop
            .org 0xFFFC
            .word __edb_isr
            .org 0xFFFE
            .word main
            "#,
        ),
        "guard" => Some(
            r#"
            .org 0x4400
        main:
            movi sp, 0x2400
            movi r1, 0x6000
            movi r0, 0
        loop:
            add  r0, 1
            push r0
            push r1
            call __edb_guard_begin
            pop  r1
            pop  r0
            st   [r1], r0
            push r0
            push r1
            call __edb_guard_end
            pop  r1
            pop  r0
            jmp  loop
            .org 0xFFFC
            .word __edb_isr
            .org 0xFFFE
            .word main
            "#,
        ),
        _ => None,
    }
}

/// One event-stream subscription: which tags pass the filter and how
/// far into the session's log this connection has streamed.
#[derive(Debug, Clone)]
struct SubState {
    /// `None` means "everything except [`DEFAULT_EVENT_EXCLUDE`]".
    tags: Option<Vec<String>>,
    cursor: usize,
}

impl SubState {
    fn wants(&self, tag: &str) -> bool {
        match &self.tags {
            Some(tags) => tags.iter().any(|t| t == tag),
            None => !DEFAULT_EVENT_EXCLUDE.contains(&tag),
        }
    }
}

/// Per-connection state. Lives on the connection handler, not in the
/// hub, so every connection observes sessions independently.
#[derive(Debug, Default)]
pub struct ConnState {
    attached: Option<u64>,
    subs: BTreeMap<u64, SubState>,
}

impl ConnState {
    /// A fresh connection: attached to nothing, subscribed to nothing.
    pub fn new() -> Self {
        ConnState::default()
    }

    /// The session this connection is attached to, if any.
    pub fn attached(&self) -> Option<u64> {
        self.attached
    }
}

/// The outcome of dispatching one request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// Wire lines to send, in order: event notifications first, then
    /// exactly one response (none for a client notification).
    pub lines: Vec<String>,
    /// Whether the client asked the whole server to shut down.
    pub shutdown: bool,
}

struct HubInner {
    next_id: u64,
    sessions: BTreeMap<u64, Arc<Mutex<DebugSession>>>,
    next_fleet_id: u64,
    fleets: BTreeMap<u64, Arc<Mutex<FleetEntry>>>,
}

/// One hosted fleet: the simulation plus its replay tape. Everything
/// that advances the sim goes through [`FleetTape::run`], so an
/// exported `.edbr` recording replays the exact op sequence.
struct FleetEntry {
    sim: FleetSim,
    tape: FleetTape,
}

/// The shared registry of hosted sessions and the JSON-RPC method table
/// over them.
pub struct SessionHub {
    inner: Mutex<HubInner>,
}

impl std::fmt::Debug for SessionHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("hub lock");
        f.debug_struct("SessionHub")
            .field("sessions", &inner.sessions.len())
            .finish_non_exhaustive()
    }
}

impl Default for SessionHub {
    fn default() -> Self {
        SessionHub::new()
    }
}

type MethodResult = Result<Value, RpcError>;

/// Parses recording container bytes into a typed error on failure.
fn edb_replay_recording(bytes: &[u8]) -> Result<edb_core::replay::Recording, RpcError> {
    edb_core::replay::Recording::from_bytes(bytes)
        .map_err(|e| RpcError::protocol(rpc::INVALID_REQUEST, format!("bad recording: {e}")))
}

impl SessionHub {
    /// An empty hub. Session IDs start at 1.
    pub fn new() -> Self {
        SessionHub {
            inner: Mutex::new(HubInner {
                next_id: 1,
                sessions: BTreeMap::new(),
                next_fleet_id: 1,
                fleets: BTreeMap::new(),
            }),
        }
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.inner.lock().expect("hub lock").sessions.len()
    }

    fn session(&self, id: u64) -> Option<Arc<Mutex<DebugSession>>> {
        self.inner
            .lock()
            .expect("hub lock")
            .sessions
            .get(&id)
            .cloned()
    }

    fn fleet(&self, id: u64) -> Result<Arc<Mutex<FleetEntry>>, RpcError> {
        self.inner
            .lock()
            .expect("hub lock")
            .fleets
            .get(&id)
            .cloned()
            .ok_or_else(|| RpcError::protocol(rpc::INVALID_REQUEST, format!("fleet {id} is gone")))
    }

    /// Parses and executes one request line for one connection,
    /// returning the wire lines to send back (notifications first, then
    /// the response).
    pub fn dispatch(&self, conn: &mut ConnState, line: &str) -> Dispatch {
        let request = match parse_request(line) {
            Ok(request) => request,
            Err((id, error)) => {
                return Dispatch {
                    lines: vec![rpc::error_line(id, &error)],
                    shutdown: false,
                }
            }
        };
        let mut shutdown = false;
        let result = self.execute(conn, &request, &mut shutdown);
        // Stream any events the request produced (or that other
        // connections produced since we last looked) before the
        // response, so a client reads causes before effects.
        let mut lines = self.drain_notifications(conn);
        if let Some(id) = request.id {
            lines.push(match result {
                Ok(value) => rpc::response_line(id, value),
                Err(error) => rpc::error_line(Some(id), &error),
            });
        }
        Dispatch { lines, shutdown }
    }

    /// Collects pending event notifications for every subscription this
    /// connection holds, advancing its cursors.
    fn drain_notifications(&self, conn: &mut ConnState) -> Vec<String> {
        let mut lines = Vec::new();
        let mut dead = Vec::new();
        for (&sid, sub) in conn.subs.iter_mut() {
            let Some(session) = self.session(sid) else {
                dead.push(sid);
                continue;
            };
            let session = session.lock().expect("session lock");
            let events = session.events();
            for (k, logged) in events.iter().enumerate().skip(sub.cursor) {
                let tag = logged.event.tag();
                if !sub.wants(tag) {
                    continue;
                }
                lines.push(notification_line(
                    "event",
                    obj(vec![
                        ("session", Value::U64(sid)),
                        ("seq", Value::U64(k as u64)),
                        ("time_ns", Value::U64(logged.at.as_ns())),
                        ("tag", Value::Str(tag.to_string())),
                        ("label", Value::Str(logged.event.label())),
                    ]),
                ));
            }
            sub.cursor = events.len();
        }
        for sid in dead {
            conn.subs.remove(&sid);
        }
        lines
    }

    fn attached_session(&self, conn: &ConnState) -> Result<Arc<Mutex<DebugSession>>, RpcError> {
        let sid = conn
            .attached
            .ok_or_else(|| RpcError::protocol(rpc::INVALID_REQUEST, "not attached to a session"))?;
        self.session(sid).ok_or_else(|| {
            RpcError::protocol(rpc::INVALID_REQUEST, format!("session {sid} is gone"))
        })
    }

    fn execute(
        &self,
        conn: &mut ConnState,
        request: &RpcRequest,
        shutdown: &mut bool,
    ) -> MethodResult {
        let p = &request.params;
        match request.method.as_str() {
            "server_info" => Ok(obj(vec![
                ("name", Value::Str("edb-serve".to_string())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").to_string())),
                ("jsonrpc", Value::Str(rpc::VERSION.to_string())),
                ("sessions", Value::U64(self.session_count() as u64)),
            ])),
            "create" => self.create(conn, p),
            "attach" => {
                let sid = param_u64(p, "session")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `session`"))?;
                if self.session(sid).is_none() {
                    return Err(RpcError::protocol(
                        rpc::INVALID_PARAMS,
                        format!("no session {sid}"),
                    ));
                }
                conn.attached = Some(sid);
                Ok(obj(vec![("session", Value::U64(sid))]))
            }
            "destroy" => {
                let sid = param_u64(p, "session")
                    .or(conn.attached)
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `session`"))?;
                let removed = self
                    .inner
                    .lock()
                    .expect("hub lock")
                    .sessions
                    .remove(&sid)
                    .is_some();
                if conn.attached == Some(sid) {
                    conn.attached = None;
                }
                conn.subs.remove(&sid);
                Ok(obj(vec![
                    ("session", Value::U64(sid)),
                    ("destroyed", Value::Bool(removed)),
                ]))
            }
            "sessions" => {
                let ids: Vec<Value> = self
                    .inner
                    .lock()
                    .expect("hub lock")
                    .sessions
                    .keys()
                    .map(|&id| Value::U64(id))
                    .collect();
                Ok(obj(vec![("sessions", Value::Seq(ids))]))
            }
            "subscribe_events" => {
                let sid = param_u64(p, "session")
                    .or(conn.attached)
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `session`"))?;
                if self.session(sid).is_none() {
                    return Err(RpcError::protocol(
                        rpc::INVALID_PARAMS,
                        format!("no session {sid}"),
                    ));
                }
                let tags = match p.get_field("tags") {
                    Some(Value::Seq(items)) => {
                        let mut tags = Vec::new();
                        for item in items {
                            match item.as_str() {
                                Some(tag) => tags.push(tag.to_string()),
                                None => {
                                    return Err(RpcError::protocol(
                                        rpc::INVALID_PARAMS,
                                        "`tags` must be an array of strings",
                                    ))
                                }
                            }
                        }
                        Some(tags)
                    }
                    _ => None,
                };
                // `from_start` replays the whole log; the default
                // streams only what happens from now on.
                let cursor = if param_bool(p, "from_start").unwrap_or(false) {
                    0
                } else {
                    let session = self.session(sid).expect("checked above");
                    let n = session.lock().expect("session lock").events().len();
                    n
                };
                let echo = match &tags {
                    Some(tags) => Value::Seq(tags.iter().map(|t| Value::Str(t.clone())).collect()),
                    None => Value::Null,
                };
                conn.subs.insert(sid, SubState { tags, cursor });
                Ok(obj(vec![("session", Value::U64(sid)), ("tags", echo)]))
            }
            "run_until" => {
                let ms = param_u64(p, "ms")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `ms`"))?;
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                let opened = session.run_until_session(SimTime::from_ms(ms));
                let mut status = session.status().to_value();
                push_field(&mut status, "session_opened", Value::Bool(opened));
                Ok(status)
            }
            "step" => {
                let count = param_u64(p, "count").unwrap_or(1);
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                for _ in 0..count {
                    session.step();
                }
                Ok(session.status().to_value())
            }
            "read" => {
                let addr = required_u16(p, "addr")?;
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                match session.perform(DebugRequest::ReadWord { addr })? {
                    DebugResponse::Word { value } => Ok(obj(vec![
                        ("addr", Value::U64(u64::from(addr))),
                        ("value", Value::U64(u64::from(value))),
                    ])),
                    other => Err(RpcError::protocol(
                        rpc::INVALID_REQUEST,
                        format!("engine returned {other:?} for a read"),
                    )),
                }
            }
            "write" => {
                let addr = required_u16(p, "addr")?;
                let value = required_u16(p, "value")?;
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                session.perform(DebugRequest::WriteWord { addr, value })?;
                Ok(obj(vec![
                    ("addr", Value::U64(u64::from(addr))),
                    ("value", Value::U64(u64::from(value))),
                    ("ack", Value::Bool(true)),
                ]))
            }
            "get_pc" => {
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                match session.perform(DebugRequest::GetPc)? {
                    DebugResponse::Pc { pc } => Ok(obj(vec![("pc", Value::U64(u64::from(pc)))])),
                    other => Err(RpcError::protocol(
                        rpc::INVALID_REQUEST,
                        format!("engine returned {other:?} for get_pc"),
                    )),
                }
            }
            "set_breakpoint" => {
                let id = param_u64(p, "id")
                    .filter(|&id| id <= u64::from(u8::MAX))
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "`id` must be a byte"))?
                    as u8;
                let energy = param_f64(p, "energy");
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                session.set_breakpoint(id, energy)?;
                Ok(obj(vec![
                    ("id", Value::U64(u64::from(id))),
                    ("energy", energy.map_or(Value::Null, Value::F64)),
                ]))
            }
            "clear_breakpoint" => {
                let id = param_u64(p, "id")
                    .filter(|&id| id <= u64::from(u8::MAX))
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "`id` must be a byte"))?
                    as u8;
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                session.clear_breakpoint(id)?;
                Ok(obj(vec![("id", Value::U64(u64::from(id)))]))
            }
            "breakpoints" => {
                let session = self.attached_session(conn)?;
                let session = session.lock().expect("session lock");
                let list: Vec<Value> = session
                    .breakpoints()
                    .into_iter()
                    .map(|(id, energy)| {
                        obj(vec![
                            ("id", Value::U64(u64::from(id))),
                            ("energy", energy.map_or(Value::Null, Value::F64)),
                        ])
                    })
                    .collect();
                Ok(obj(vec![("breakpoints", Value::Seq(list))]))
            }
            "arm_energy_guard" => {
                let threshold = param_f64(p, "threshold").ok_or_else(|| {
                    RpcError::protocol(rpc::INVALID_PARAMS, "missing `threshold`")
                })?;
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                session.arm_energy_guard(threshold)?;
                Ok(obj(vec![("threshold", Value::F64(threshold))]))
            }
            "charge" | "discharge" => {
                let to = param_f64(p, "to")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `to`"))?;
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                let v_cap = if request.method == "charge" {
                    session.charge_to(to)?
                } else {
                    session.discharge_to(to)?
                };
                Ok(obj(vec![
                    ("target", Value::F64(to)),
                    ("v_cap", Value::F64(v_cap)),
                ]))
            }
            "resume" => {
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                session.resume()?;
                Ok(session.status().to_value())
            }
            "step_back" => {
                let n = param_u64(p, "n").unwrap_or(1);
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                let landed = session.step_back(n)?;
                let mut status = session.status().to_value();
                push_field(&mut status, "landed_ns", Value::U64(landed.as_ns()));
                Ok(status)
            }
            "goto_time" => {
                let target = match (param_u64(p, "ns"), param_u64(p, "ms")) {
                    (Some(ns), _) => SimTime::from_ns(ns),
                    (None, Some(ms)) => SimTime::from_ms(ms),
                    (None, None) => {
                        return Err(RpcError::protocol(
                            rpc::INVALID_PARAMS,
                            "need `ns` or `ms` (absolute sim time)",
                        ))
                    }
                };
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                let landed = session.goto_time(target)?;
                let mut status = session.status().to_value();
                push_field(&mut status, "landed_ns", Value::U64(landed.as_ns()));
                Ok(status)
            }
            "reverse_continue" => {
                let session = self.attached_session(conn)?;
                let mut session = session.lock().expect("session lock");
                let stopped = session.reverse_continue()?;
                let mut status = session.status().to_value();
                push_field(
                    &mut status,
                    "stopped_at_ns",
                    stopped.map_or(Value::Null, |t| Value::U64(t.as_ns())),
                );
                Ok(status)
            }
            "record_export" => {
                let session = self.attached_session(conn)?;
                let session = session.lock().expect("session lock");
                let recording = session.export_recording().ok_or_else(|| {
                    RpcError::protocol(rpc::INVALID_REQUEST, "session is not recording")
                })?;
                let bytes = recording.to_bytes();
                if let Some(path) = param_str(p, "path") {
                    std::fs::write(path, &bytes).map_err(|e| {
                        RpcError::protocol(
                            rpc::INVALID_REQUEST,
                            format!("cannot write `{path}`: {e}"),
                        )
                    })?;
                }
                Ok(obj(vec![
                    ("ops", Value::U64(recording.op_count() as u64)),
                    ("snapshots", Value::U64(recording.snapshot_count() as u64)),
                    ("bytes", Value::U64(bytes.len() as u64)),
                ]))
            }
            "status" => {
                let session = self.attached_session(conn)?;
                let session = session.lock().expect("session lock");
                Ok(session.status().to_value())
            }
            "disasm" => {
                let session = self.attached_session(conn)?;
                let session = session.lock().expect("session lock");
                let addr = param_u16(p, "addr")
                    .ok()
                    .flatten()
                    .unwrap_or(session.status().pc);
                let count = param_u64(p, "count").unwrap_or(8) as usize;
                let lines: Vec<Value> = session
                    .disasm(addr, count.min(64))
                    .into_iter()
                    .map(|(at, text)| {
                        obj(vec![
                            ("addr", Value::U64(u64::from(at))),
                            ("text", Value::Str(text)),
                        ])
                    })
                    .collect();
                Ok(obj(vec![
                    ("addr", Value::U64(u64::from(addr))),
                    ("lines", Value::Seq(lines)),
                ]))
            }
            "analyze" => {
                let session = self.attached_session(conn)?;
                let session = session.lock().expect("session lock");
                // Entry: explicit address, a symbol name, or (default)
                // wherever the PC currently sits.
                let entry = match (param_u16(p, "entry")?, param_str(p, "name")) {
                    (Some(addr), _) => Some(addr),
                    (None, Some(name)) => Some(session.symbol(name).ok_or_else(|| {
                        RpcError::protocol(rpc::INVALID_PARAMS, format!("unknown symbol `{name}`"))
                    })?),
                    (None, None) => None,
                };
                let v_start = param_f64(p, "v");
                Ok(session.analyze(entry, v_start).to_value())
            }
            "symbol" => {
                let name = param_str(p, "name")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `name`"))?;
                let session = self.attached_session(conn)?;
                let session = session.lock().expect("session lock");
                Ok(obj(vec![
                    ("name", Value::Str(name.to_string())),
                    (
                        "addr",
                        session
                            .symbol(name)
                            .map_or(Value::Null, |a| Value::U64(u64::from(a))),
                    ),
                ]))
            }
            "fleet_create" => {
                let tags = param_u64(p, "tags")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `tags`"))?
                    as usize;
                if tags == 0 || tags > 100_000 {
                    return Err(RpcError::protocol(
                        rpc::INVALID_PARAMS,
                        "`tags` must be in 1..=100000",
                    ));
                }
                let seed = param_u64(p, "seed").unwrap_or(1);
                let mut config = FleetConfig::standard(tags);
                if let Some(ms) = param_u64(p, "duration_ms") {
                    config.duration = SimTime::from_ms(ms);
                }
                if let Some(d) = param_f64(p, "d_min") {
                    config.d_min = d;
                }
                if let Some(d) = param_f64(p, "d_max") {
                    config.d_max = d;
                }
                if let Some(b) = param_f64(p, "ber") {
                    config.ber_ref = b;
                }
                if config.d_min <= 0.0 || config.d_max < config.d_min {
                    return Err(RpcError::protocol(
                        rpc::INVALID_PARAMS,
                        "need 0 < d_min <= d_max",
                    ));
                }
                let spec = FleetSpec { config, seed };
                let sim = spec.build();
                let tape = FleetTape::new(spec, &sim);
                let fid = {
                    let mut inner = self.inner.lock().expect("hub lock");
                    let fid = inner.next_fleet_id;
                    inner.next_fleet_id += 1;
                    inner
                        .fleets
                        .insert(fid, Arc::new(Mutex::new(FleetEntry { sim, tape })));
                    fid
                };
                Ok(obj(vec![
                    ("fleet", Value::U64(fid)),
                    ("tags", Value::U64(tags as u64)),
                    ("seed", Value::U64(seed)),
                ]))
            }
            "fleet_run" => {
                let fid = param_u64(p, "fleet")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `fleet`"))?;
                let entry = self.fleet(fid)?;
                let mut entry = entry.lock().expect("fleet lock");
                let op = match (param_u64(p, "ms"), param_u64(p, "slots")) {
                    (Some(ms), _) => FleetOp::RunMs(ms),
                    (None, Some(slots)) => FleetOp::RunSlots(slots),
                    (None, None) => {
                        return Err(RpcError::protocol(
                            rpc::INVALID_PARAMS,
                            "need `ms` (carrier time) or `slots` (slot count)",
                        ))
                    }
                };
                // The tape both records the op and advances the sim, so
                // live runs and replays share one advance path.
                let FleetEntry { sim, tape } = &mut *entry;
                tape.run(sim, op);
                let stats = entry.sim.stats();
                Ok(obj(vec![
                    ("fleet", Value::U64(fid)),
                    ("sim_ms", Value::F64(entry.sim.now().as_millis_f64())),
                    ("rounds", Value::U64(stats.gen2.rounds)),
                    ("epcs", Value::U64(stats.gen2.epcs_read)),
                ]))
            }
            "fleet_export" => {
                let fid = param_u64(p, "fleet")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `fleet`"))?;
                let entry = self.fleet(fid)?;
                let entry = entry.lock().expect("fleet lock");
                let recording = entry.tape.export(&entry.sim);
                let bytes = recording.to_bytes();
                if let Some(path) = param_str(p, "path") {
                    std::fs::write(path, &bytes).map_err(|e| {
                        RpcError::protocol(
                            rpc::INVALID_REQUEST,
                            format!("cannot write `{path}`: {e}"),
                        )
                    })?;
                }
                Ok(obj(vec![
                    ("fleet", Value::U64(fid)),
                    ("ops", Value::U64(entry.tape.op_count() as u64)),
                    ("bytes", Value::U64(bytes.len() as u64)),
                ]))
            }
            "fleet_verify" => {
                let path = param_str(p, "path")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `path`"))?;
                let bytes = std::fs::read(path).map_err(|e| {
                    RpcError::protocol(rpc::INVALID_REQUEST, format!("cannot read `{path}`: {e}"))
                })?;
                let recording = edb_replay_recording(&bytes)?;
                let ops = verify_fleet(&recording).map_err(|e| {
                    RpcError::protocol(rpc::INVALID_REQUEST, format!("replay diverged: {e}"))
                })?;
                Ok(obj(vec![
                    ("ok", Value::Bool(true)),
                    ("ops", Value::U64(ops as u64)),
                ]))
            }
            "fleet_status" => {
                let fid = param_u64(p, "fleet")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `fleet`"))?;
                let entry = self.fleet(fid)?;
                let entry = entry.lock().expect("fleet lock");
                let sim = &entry.sim;
                let stats = sim.stats();
                let mut status = obj(vec![
                    ("fleet", Value::U64(fid)),
                    ("tags", Value::U64(stats.tags)),
                    ("sim_ms", Value::F64(sim.now().as_millis_f64())),
                    ("q", Value::U64(u64::from(sim.reader().q()))),
                    ("rounds", Value::U64(stats.gen2.rounds)),
                    ("slots", Value::U64(stats.gen2.slots())),
                    ("epcs", Value::U64(stats.gen2.epcs_read)),
                    ("collisions", Value::U64(stats.gen2.collision_slots)),
                    ("unique_tags_read", Value::U64(stats.unique_tags_read)),
                    ("powered", Value::U64(stats.powered_at_end)),
                    ("power_cycles", Value::U64(stats.power_cycles)),
                ]);
                if let Some(tag) = param_u64(p, "tag") {
                    let detail = sim.tag_status(tag as usize).ok_or_else(|| {
                        RpcError::protocol(
                            rpc::INVALID_PARAMS,
                            format!("tag {tag} is outside the fleet"),
                        )
                    })?;
                    push_field(
                        &mut status,
                        "tag",
                        obj(vec![
                            ("index", Value::U64(detail.index as u64)),
                            ("distance_m", Value::F64(detail.distance_m)),
                            ("v_cap", Value::F64(detail.v_cap)),
                            ("powered", Value::Bool(detail.powered)),
                            ("inventoried", Value::Bool(detail.inventoried)),
                            ("ever_read", Value::Bool(detail.ever_read)),
                            ("power_cycles", Value::U64(u64::from(detail.power_cycles))),
                            ("active_secs", Value::F64(detail.active_secs)),
                        ]),
                    );
                }
                Ok(status)
            }
            "fleet_destroy" => {
                let fid = param_u64(p, "fleet")
                    .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, "missing `fleet`"))?;
                let removed = self
                    .inner
                    .lock()
                    .expect("hub lock")
                    .fleets
                    .remove(&fid)
                    .is_some();
                if !removed {
                    return Err(RpcError::protocol(
                        rpc::INVALID_REQUEST,
                        format!("fleet {fid} is gone"),
                    ));
                }
                Ok(obj(vec![("destroyed", Value::U64(fid))]))
            }
            "shutdown" => {
                *shutdown = true;
                Ok(obj(vec![("ok", Value::Bool(true))]))
            }
            other => Err(RpcError::protocol(
                rpc::METHOD_NOT_FOUND,
                format!("unknown method `{other}`"),
            )),
        }
    }

    fn create(&self, conn: &mut ConnState, p: &Value) -> MethodResult {
        // Sessions are described by a rebuildable `SessionSpec` (not a
        // bare builder) so the hub can record them: the spec is embedded
        // in the tape and the recording replays in a fresh process.
        let source = match (param_str(p, "firmware"), param_str(p, "source")) {
            (Some(preset), _) => preset_source(preset).ok_or_else(|| {
                RpcError::protocol(
                    rpc::INVALID_PARAMS,
                    format!(
                        "unknown firmware preset `{preset}` (have: {})",
                        FIRMWARE_PRESETS.join(", ")
                    ),
                )
            })?,
            (None, Some(source)) => source,
            (None, None) => {
                return Err(RpcError::protocol(
                    rpc::INVALID_PARAMS,
                    "need `firmware` (a preset name) or `source` (assembly text)",
                ))
            }
        };
        let mut spec = SessionSpec::bench(source);
        if let Some(seed) = param_u64(p, "seed") {
            spec.seed = seed;
        }
        if let Some(h) = p.get_field("harvester") {
            spec.world = WorldSpec::Harvester {
                spec: HarvesterSpec::Thevenin {
                    v_oc: param_f64(h, "voc").unwrap_or(3.2),
                    r_src: param_f64(h, "r").unwrap_or(1500.0),
                },
            };
        } else if let Some(rfid) = p.get_field("rfid") {
            let distance = param_f64(rfid, "distance").ok_or_else(|| {
                RpcError::protocol(rpc::INVALID_PARAMS, "rfid needs `distance` (metres)")
            })?;
            spec.world = WorldSpec::Rfid {
                distance_m: distance,
            };
        }
        if let Some(us) = param_u64(p, "deadline_us") {
            spec.edb.cmd_timeout = SimTime::from_us(us);
        }
        if let Some(retries) = param_u64(p, "retries") {
            spec.edb.cmd_retries = retries as u32;
        }
        if let Some(us) = param_u64(p, "retry_flush_us") {
            spec.edb.retry_flush = SimTime::from_us(us);
        }
        if let Some(fault) = p.get_field("fault") {
            spec.channel_fault = Some(ChannelFaultConfig {
                bit_flip: param_f64(fault, "bit_flip").unwrap_or(0.0),
                drop: param_f64(fault, "drop").unwrap_or(0.0),
                duplicate: param_f64(fault, "duplicate").unwrap_or(0.0),
                seed: param_u64(fault, "seed").unwrap_or(0),
            });
        }
        let record = param_bool(p, "record").unwrap_or(true);
        let stride = param_u64(p, "record_stride").unwrap_or(32);
        let mut session = if record {
            spec.record(stride)
        } else {
            spec.build()
        }
        .map_err(|e| RpcError::engine(&e))?;
        let opened = match param_u64(p, "wait_session_ms") {
            Some(ms) => session.run_until_session(SimTime::from_ms(ms)),
            None => false,
        };
        let sid = {
            let mut inner = self.inner.lock().expect("hub lock");
            let sid = inner.next_id;
            inner.next_id += 1;
            inner.sessions.insert(sid, Arc::new(Mutex::new(session)));
            sid
        };
        conn.attached = Some(sid);
        Ok(obj(vec![
            ("session", Value::U64(sid)),
            ("session_active", Value::Bool(opened)),
            ("recording", Value::Bool(record)),
        ]))
    }
}

/// Appends a field to an object [`Value`] (no-op on non-objects).
fn push_field(value: &mut Value, name: &str, field: Value) {
    if let Value::Map(entries) = value {
        entries.push((Value::Str(name.to_string()), field));
    }
}

fn required_u16(params: &Value, name: &str) -> Result<u16, RpcError> {
    param_u16(params, name)?
        .ok_or_else(|| RpcError::protocol(rpc::INVALID_PARAMS, format!("missing `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(hub: &SessionHub, conn: &mut ConnState, id: u64, method: &str, params: &str) -> String {
        let line =
            format!(r#"{{"jsonrpc":"2.0","id":{id},"method":"{method}","params":{params}}}"#);
        let out = hub.dispatch(conn, &line);
        assert!(!out.shutdown);
        out.lines.last().expect("a response").clone()
    }

    #[test]
    fn create_read_write_walkthrough() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        let created = call(
            &hub,
            &mut conn,
            1,
            "create",
            r#"{"firmware":"assert","seed":7,"harvester":{"voc":3.2,"r":220.0},"wait_session_ms":2000}"#,
        );
        assert!(created.contains(r#""session":1"#), "{created}");
        assert!(created.contains(r#""session_active":true"#), "{created}");

        let read = call(&hub, &mut conn, 2, "read", r#"{"addr":24576}"#);
        assert!(read.contains(r#""value":4353"#), "{read}"); // 0x1101

        let write = call(
            &hub,
            &mut conn,
            3,
            "write",
            r#"{"addr":24576,"value":48879}"#,
        );
        assert!(write.contains(r#""ack":true"#), "{write}");
        let read = call(&hub, &mut conn, 4, "read", r#"{"addr":24576}"#);
        assert!(read.contains(r#""value":48879"#), "{read}"); // 0xBEEF

        let pc = call(&hub, &mut conn, 5, "get_pc", "{}");
        assert!(pc.contains(r#""pc":"#), "{pc}");
    }

    #[test]
    fn engine_errors_surface_typed_on_the_wire() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        // No wait_session: no open session, so a read is a typed
        // NoSession error, not a string.
        call(&hub, &mut conn, 1, "create", r#"{"firmware":"spin"}"#);
        let err = call(&hub, &mut conn, 2, "read", r#"{"addr":24576}"#);
        assert!(err.contains(r#""code":-32002"#), "{err}");
        assert!(err.contains("NoSession"), "{err}");
    }

    /// Satellite: time travel against a session created with
    /// `record:false` is the dedicated typed `NoRecording` error with
    /// its own stable wire code, not a generic replay failure.
    #[test]
    fn time_travel_without_recording_has_a_dedicated_wire_code() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        call(
            &hub,
            &mut conn,
            1,
            "create",
            r#"{"firmware":"spin","record":false}"#,
        );
        let err = call(&hub, &mut conn, 2, "step_back", r#"{"n":1}"#);
        assert!(err.contains(r#""code":-32012"#), "{err}");
        assert!(err.contains("NoRecording"), "{err}");
        assert!(err.contains("step_back"), "{err}");
        let err = call(&hub, &mut conn, 3, "goto_time", r#"{"ms":1}"#);
        assert!(err.contains(r#""code":-32012"#), "{err}");
        let err = call(&hub, &mut conn, 4, "reverse_continue", "{}");
        assert!(err.contains(r#""code":-32012"#), "{err}");
    }

    #[test]
    fn analyze_reports_over_rpc() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        call(
            &hub,
            &mut conn,
            1,
            "create",
            r#"{"firmware":"spin","record":false}"#,
        );
        // The spin preset loops forever: the honest verdict from its
        // entry is unbounded, with the CFG fully recovered.
        let report = call(&hub, &mut conn, 2, "analyze", r#"{"name":"main"}"#);
        assert!(report.contains(r#""wcec_cycles":null"#), "{report}");
        assert!(report.contains(r#""unbounded_reason":"#), "{report}");
        assert!(report.contains(r#""blocks":"#), "{report}");
        assert!(report.contains(r#""ckpt_advice":"#), "{report}");
        // An unknown symbol is a parameter error, not a panic.
        let err = call(&hub, &mut conn, 3, "analyze", r#"{"name":"nope"}"#);
        assert!(err.contains(r#""code":-32602"#), "{err}");
    }

    #[test]
    fn unknown_method_and_bad_params_are_protocol_errors() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        let err = call(&hub, &mut conn, 1, "frobnicate", "{}");
        assert!(err.contains(r#""code":-32601"#), "{err}");
        let err = call(&hub, &mut conn, 2, "create", r#"{"firmware":"nope"}"#);
        assert!(err.contains(r#""code":-32602"#), "{err}");
        let err = call(&hub, &mut conn, 3, "read", r#"{"addr":99999}"#);
        assert!(err.contains(r#""code":-32602"#), "{err}");
    }

    #[test]
    fn event_subscription_streams_session_events() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        call(
            &hub,
            &mut conn,
            1,
            "create",
            r#"{"firmware":"assert","harvester":{"voc":3.2,"r":220.0}}"#,
        );
        // Subscribe from the start, then run until the assert opens a
        // session: the subscription must deliver the session-open event.
        call(
            &hub,
            &mut conn,
            2,
            "subscribe_events",
            r#"{"from_start":true}"#,
        );
        let line = r#"{"jsonrpc":"2.0","id":3,"method":"run_until","params":{"ms":2000}}"#;
        let out = hub.dispatch(&mut conn, line);
        let notes: Vec<&String> = out
            .lines
            .iter()
            .filter(|l| l.contains(r#""method":"event""#))
            .collect();
        assert!(
            notes.iter().any(|l| l.contains(r#""tag":"session-open""#)),
            "expected a session-open event, got {notes:?}"
        );
        // The default filter excludes the high-volume Vcap stream.
        assert!(
            notes.iter().all(|l| !l.contains(r#""tag":"energy""#)),
            "energy samples must be filtered by default"
        );
    }

    #[test]
    fn sessions_are_isolated() {
        let hub = SessionHub::new();
        let mut a = ConnState::new();
        let mut b = ConnState::new();
        let spec =
            r#"{"firmware":"assert","harvester":{"voc":3.2,"r":220.0},"wait_session_ms":2000}"#;
        call(&hub, &mut a, 1, "create", spec);
        call(&hub, &mut b, 1, "create", spec);
        assert_eq!(hub.session_count(), 2);
        call(&hub, &mut a, 2, "write", r#"{"addr":24576,"value":17}"#);
        call(&hub, &mut b, 2, "write", r#"{"addr":24576,"value":34}"#);
        let ra = call(&hub, &mut a, 3, "read", r#"{"addr":24576}"#);
        let rb = call(&hub, &mut b, 3, "read", r#"{"addr":24576}"#);
        assert!(ra.contains(r#""value":17"#), "{ra}");
        assert!(rb.contains(r#""value":34"#), "{rb}");
    }

    #[test]
    fn shutdown_flag_propagates() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        let out = hub.dispatch(
            &mut conn,
            r#"{"jsonrpc":"2.0","id":9,"method":"shutdown","params":{}}"#,
        );
        assert!(out.shutdown);
    }

    #[test]
    fn fleet_lifecycle_over_rpc() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        let created = call(
            &hub,
            &mut conn,
            1,
            "fleet_create",
            r#"{"tags":40,"seed":42,"d_min":0.4,"d_max":1.0}"#,
        );
        assert!(created.contains(r#""fleet":1"#), "{created}");
        assert!(created.contains(r#""tags":40"#), "{created}");

        let ran = call(&hub, &mut conn, 2, "fleet_run", r#"{"fleet":1,"ms":1500}"#);
        assert!(ran.contains(r#""rounds":"#), "{ran}");

        let status = call(&hub, &mut conn, 3, "fleet_status", r#"{"fleet":1,"tag":7}"#);
        assert!(status.contains(r#""tags":40"#), "{status}");
        assert!(status.contains(r#""unique_tags_read":"#), "{status}");
        assert!(status.contains(r#""distance_m":"#), "{status}");
        assert!(status.contains(r#""v_cap":"#), "{status}");

        // After 1.5 s of carrier at close range, most of a 40-tag
        // fleet has been read at least once.
        let unique: u64 = status
            .split(r#""unique_tags_read":"#)
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("parsable unique count");
        assert!(unique >= 20, "{status}");

        // Out-of-range tag detail is a parameter error, not a panic.
        let err = call(
            &hub,
            &mut conn,
            4,
            "fleet_status",
            r#"{"fleet":1,"tag":99}"#,
        );
        assert!(err.contains("outside the fleet"), "{err}");

        let gone = call(&hub, &mut conn, 5, "fleet_destroy", r#"{"fleet":1}"#);
        assert!(gone.contains(r#""destroyed":1"#), "{gone}");
        let err = call(&hub, &mut conn, 6, "fleet_status", r#"{"fleet":1}"#);
        assert!(err.contains("fleet 1 is gone"), "{err}");

        // Fleet IDs and session IDs are separate namespaces.
        let err = call(&hub, &mut conn, 7, "fleet_run", r#"{"fleet":1,"slots":1}"#);
        assert!(err.contains("error"), "{err}");
    }

    /// Satellite: `fleet_*` ops land on the replay tape, and the
    /// exported `.edbr` recording replays divergence-free — both
    /// through `verify_fleet` directly and over the `fleet_verify` RPC.
    #[test]
    fn fleet_sessions_export_verifiable_recordings() {
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        call(
            &hub,
            &mut conn,
            1,
            "fleet_create",
            r#"{"tags":30,"seed":5,"d_min":0.4,"d_max":0.9}"#,
        );
        call(&hub, &mut conn, 2, "fleet_run", r#"{"fleet":1,"ms":600}"#);
        call(&hub, &mut conn, 3, "fleet_run", r#"{"fleet":1,"slots":40}"#);
        call(&hub, &mut conn, 4, "fleet_run", r#"{"fleet":1,"ms":300}"#);

        let dir = std::env::temp_dir().join("edb-serve-fleet-tape-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.edbr");
        let path_str = path.to_str().unwrap().to_string();
        let exported = call(
            &hub,
            &mut conn,
            5,
            "fleet_export",
            &format!(r#"{{"fleet":1,"path":"{path_str}"}}"#),
        );
        assert!(exported.contains(r#""ops":3"#), "{exported}");

        // The artifact on disk replays from its embedded spec.
        let bytes = std::fs::read(&path).unwrap();
        let recording = edb_core::replay::Recording::from_bytes(&bytes).expect("parses");
        assert_eq!(verify_fleet(&recording), Ok(3));

        // And the RPC surface agrees.
        let verified = call(
            &hub,
            &mut conn,
            6,
            "fleet_verify",
            &format!(r#"{{"path":"{path_str}"}}"#),
        );
        assert!(verified.contains(r#""ok":true"#), "{verified}");
        assert!(verified.contains(r#""ops":3"#), "{verified}");

        // A corrupted artifact is rejected with a typed error.
        let mut broken = bytes.clone();
        let k = broken.len() / 2;
        broken[k] ^= 0x40;
        let broken_path = dir.join("broken.edbr");
        std::fs::write(&broken_path, &broken).unwrap();
        let err = call(
            &hub,
            &mut conn,
            7,
            "fleet_verify",
            &format!(r#"{{"path":"{}"}}"#, broken_path.to_str().unwrap()),
        );
        assert!(err.contains("error"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_determinism_over_rpc() {
        // Two fleets with the same seed must report identical status
        // after identical runs — the RPC surface keeps the engine's
        // reproducibility.
        let hub = SessionHub::new();
        let mut conn = ConnState::new();
        call(
            &hub,
            &mut conn,
            1,
            "fleet_create",
            r#"{"tags":25,"seed":9}"#,
        );
        call(
            &hub,
            &mut conn,
            2,
            "fleet_create",
            r#"{"tags":25,"seed":9}"#,
        );
        call(
            &hub,
            &mut conn,
            3,
            "fleet_run",
            r#"{"fleet":1,"slots":400}"#,
        );
        call(
            &hub,
            &mut conn,
            4,
            "fleet_run",
            r#"{"fleet":2,"slots":400}"#,
        );
        let a = call(&hub, &mut conn, 5, "fleet_status", r#"{"fleet":1,"tag":3}"#);
        let b = call(&hub, &mut conn, 6, "fleet_status", r#"{"fleet":2,"tag":3}"#);
        assert_eq!(
            a.replace(r#""fleet":1"#, "").replace(r#""id":5"#, ""),
            b.replace(r#""fleet":2"#, "").replace(r#""id":6"#, "")
        );
    }
}
