//! A fixed-width worker pool for request execution.
//!
//! The server parks every request's execution on this pool, so
//! `--threads N` bounds how many sessions make progress simultaneously.
//! Determinism does not depend on the width: a connection blocks until
//! its request's job completes (one outstanding request per connection)
//! and each session is locked while it steps, so the pool only changes
//! *wall-clock* overlap between sessions — never the byte stream any
//! one connection observes. The golden-transcript test replays the same
//! script at width 1 and width 4 and requires identical bytes.
//!
//! Offline stand-in note: with registry access this would be a tokio
//! runtime; the workspace vendors no async executor, so the pool is
//! plain `std::thread` + channels, which the deterministic design never
//! needed to be more than.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads draining a shared job queue.
pub struct WorkerPool {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    width: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `width` workers (clamped to at least 1).
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..width)
            .map(|k| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("edb-serve-worker-{k}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("queue lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                // A panicking job must not take the worker
                                // down with it; the submitter sees the
                                // panic through its dropped result channel.
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => return, // pool dropped
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(workers),
            width,
        }
    }

    /// The number of workers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs `job` on a worker and blocks until it finishes, returning
    /// its result.
    ///
    /// # Panics
    ///
    /// Panics if the job panicked on the worker or the pool is shut
    /// down.
    pub fn run<R: Send + 'static>(&self, job: impl FnOnce() -> R + Send + 'static) -> R {
        let (tx, rx) = mpsc::channel();
        {
            let guard = self.sender.lock().expect("sender lock");
            let sender = guard.as_ref().expect("pool is shut down");
            sender
                .send(Box::new(move || {
                    let _ = tx.send(job());
                }))
                .expect("workers alive");
        }
        rx.recv()
            .expect("job completed without a result (panicked?)")
    }

    /// Stops accepting jobs and joins every worker.
    pub fn shutdown(&self) {
        self.sender.lock().expect("sender lock").take();
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.run(|| 6 * 7), 42);
        let results: Vec<u32> = (0..16u32).map(|k| pool.run(move || k * k)).collect();
        assert_eq!(results[15], 225);
    }

    #[test]
    fn width_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.width(), 1);
        assert_eq!(pool.run(|| "ok"), "ok");
    }

    #[test]
    fn survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| panic!("job exploded"));
        }));
        assert!(caught.is_err());
        // The single worker is still alive and serving.
        assert_eq!(pool.run(|| 5), 5);
    }
}
