//! A 16-bit MSP430-class microcontroller for intermittent-computing
//! simulation.
//!
//! This crate is the processor substrate under the EDB reproduction. It
//! provides:
//!
//! * [`isa`] — a compact 16-bit instruction set (the "IVM-16") with binary
//!   encode/decode, per-instruction cycle costs, and a disassembler;
//! * [`asm`] — a two-pass assembler so that target applications (the
//!   paper's linked-list, Fibonacci, activity-recognition and RFID
//!   programs) can be written as readable assembly text;
//! * [`mem`] — the MSP430FR-style memory map with volatile SRAM and
//!   non-volatile FRAM, the split that intermittence bugs hinge on;
//! * [`cpu`] — an interpreter stepped **one instruction at a time**, so a
//!   power failure can interrupt execution between any two instructions.
//!
//! The machine deliberately mirrors the MSP430FR5969 on the WISP5 target
//! used by the paper: 16 registers, byte-addressed 64 KiB space, reset and
//! interrupt vectors at the top of FRAM, and bus semantics (unmapped reads
//! return `0xFFFF`) that reproduce the paper's "wild pointer write bricks
//! the device until reflash" failure mode.
//!
//! # Example
//!
//! Assemble and run a program to completion on continuous power:
//!
//! ```
//! use edb_mcu::{asm::assemble, Cpu, Memory, NullBus};
//!
//! let image = assemble(r#"
//!     .org 0x4400
//! start:
//!     movi r0, 21
//!     add  r0, r0          ; r0 = 42
//!     st   [r1 + 0x6000], r0
//!     halt
//!     .org 0xFFFE
//!     .word start
//! "#)?;
//! let mut mem = Memory::new();
//! image.load_into(&mut mem);
//! let mut cpu = Cpu::new();
//! cpu.reset(&mem);
//! let mut bus = NullBus;
//! while cpu.is_running() {
//!     cpu.step(&mut mem, &mut bus);
//! }
//! assert_eq!(mem.read_word(0x6000), 42);
//! # Ok::<(), edb_mcu::asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod cpu;
pub mod image;
pub mod isa;
pub mod mem;

pub use cpu::{Cpu, CpuState, Fault, NullBus, PortBus, StepOutcome};
pub use image::Image;
pub use isa::{AluOp, Cond, DecodeError, Instr, Reg};
pub use mem::{Memory, FRAM_END, FRAM_START, IRQ_VECTOR, RESET_VECTOR, SRAM_END, SRAM_START};
