//! The MSP430FR-style memory map: volatile SRAM + non-volatile FRAM.
//!
//! The volatile/non-volatile split is the load-bearing piece of the whole
//! reproduction: on a brown-out, [`Memory::power_cycle`] erases SRAM and
//! keeps FRAM, which is exactly the state discontinuity that causes
//! intermittence bugs.
//!
//! Bus semantics mirror a small MCU: reads from unmapped space return
//! `0xFFFF` (floating bus with pull-ups), writes to unmapped space are
//! dropped, and both increment a sticky fault counter that the debugger
//! can inspect. The wild-pointer write of the paper's Figure 6, aimed near
//! address zero after a `NULL` dereference chain, reads `0xFFFF` from
//! unmapped memory and then writes through it — landing on the reset
//! vector at the top of FRAM and bricking the device until reflash,
//! exactly the observed symptom ("the only way to recover is to re-flash
//! the device").

use crate::isa::Instr;
use serde::{Deserialize, Serialize};

/// First byte of volatile SRAM (inclusive).
pub const SRAM_START: u16 = 0x1C00;
/// One past the last byte of SRAM.
pub const SRAM_END: u16 = 0x2400;
/// First byte of non-volatile FRAM (inclusive).
pub const FRAM_START: u16 = 0x4400;
/// The last byte of FRAM is `0xFFFF`; [`FRAM_END`] is the exclusive bound
/// as a `u32` because it does not fit in `u16`.
pub const FRAM_END: u32 = 0x1_0000;
/// Address of the reset vector word (in FRAM, hence persistent — and
/// corruptible).
pub const RESET_VECTOR: u16 = 0xFFFE;
/// Address of the external-interrupt vector word.
pub const IRQ_VECTOR: u16 = 0xFFFC;

const SRAM_SIZE: usize = (SRAM_END - SRAM_START) as usize;
const FRAM_SIZE: usize = (FRAM_END - FRAM_START as u32) as usize;

/// SRAM word count (dirty tracking is word-granular, like DiCA's
/// write-probe hardware).
const SRAM_WORDS: usize = SRAM_SIZE / 2;
/// `u64` limbs in the dirty-word bitset.
const DIRTY_LIMBS: usize = SRAM_WORDS / 64;

/// The longest instruction encoding is two 16-bit words, so a cached
/// decode at address `pc` depends on the bytes `pc ..= pc + 3` only.
const MAX_INSTR_BYTES: u16 = 4;

/// Number of direct-mapped decode-cache slots (8 KiB of slots — small
/// enough to live in L1, to clone warm, and to flush in full on a
/// power cycle; hot loops on this class of MCU are far smaller).
const DECODE_SLOTS: usize = 1024;

/// Sentinel tag for an empty slot. `0xFFFF` can never tag a real entry
/// (its second byte would sit at address `0x0000`, which is unmapped,
/// and entries are only created when the whole first word is mapped) —
/// but a fetch *can* ask for `pc == 0xFFFF` after a computed jump, so
/// the lookup must reject the sentinel explicitly or an empty slot
/// reads as a phantom `Nop` hit there (found by `edb-fuzz`).
const DECODE_EMPTY: u16 = 0xFFFF;

/// One direct-mapped cache slot: the code address it caches (`tag`), the
/// decoded instruction, its size in words, and its cycle cost (also
/// predecoded, so a hit skips the `Instr::cycles` table too). Padded to
/// a 16-byte stride so indexing is a shift and no slot straddles a
/// host cache line.
#[derive(Clone, Copy)]
#[repr(align(16))]
struct DecodeSlot {
    tag: u16,
    size: u8,
    cycles: u8,
    instr: Instr,
}

const EMPTY_SLOT: DecodeSlot = DecodeSlot {
    tag: DECODE_EMPTY,
    size: 1,
    cycles: 1,
    instr: Instr::Nop,
};

/// A predecoded-instruction cache: a small direct-mapped table of
/// decoded [`Instr`]s keyed by code address (index `(pc >> 1) mod N`,
/// full-address tag).
///
/// The cache is *pure acceleration* — it never changes what a fetch
/// returns or which bus faults it counts:
///
/// * an entry is created only when both bytes of the instruction's first
///   word are mapped, so fetches that would count bus faults (unmapped or
///   straddling addresses) always take the uncached path and fault
///   exactly as before;
/// * any write landing in `pc ..= pc + 3` of a cached entry invalidates
///   it (self-modifying FRAM code, checkpoint restores into executable
///   SRAM);
/// * a power cycle invalidates every entry that read SRAM bytes.
///
/// Clones carry the warm table (8 KiB memcpy — snapshot/replay analyses
/// clone devices constantly, and the entries stay valid because the
/// memory bytes they decode are cloned with them).
#[derive(Clone)]
struct DecodeCache {
    // A fixed-size array stored inline (not a `Vec` or `Box`): the masked
    // index is statically in range, so the hit path compiles without a
    // bounds check or a pointer chase.
    slots: [DecodeSlot; DECODE_SLOTS],
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache {
            slots: [EMPTY_SLOT; DECODE_SLOTS],
            enabled: true,
            hits: 0,
            misses: 0,
        }
    }
}

impl DecodeCache {
    #[inline]
    fn index(addr: u16) -> usize {
        ((addr >> 1) as usize) & (DECODE_SLOTS - 1)
    }
}

// The cache is derived state, so snapshots carry no entries: it
// serializes as `null` and deserializes cold.
impl Serialize for DecodeCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for DecodeCache {
    fn from_value(_: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(DecodeCache::default())
    }
}

/// The target's memory: SRAM that dies with power and FRAM that survives.
///
/// # Example
///
/// ```
/// use edb_mcu::Memory;
/// let mut mem = Memory::new();
/// mem.write_word(0x1C00, 0x1234);   // SRAM
/// mem.write_word(0x4400, 0x5678);   // FRAM
/// mem.power_cycle();
/// assert_eq!(mem.read_word(0x1C00), 0);       // volatile: gone
/// assert_eq!(mem.read_word(0x4400), 0x5678);  // non-volatile: kept
/// ```
#[derive(Clone, Deserialize)]
pub struct Memory {
    sram: Vec<u8>,
    fram: Vec<u8>,
    bus_faults: u64,
    last_fault_addr: Option<u16>,
    decode_cache: DecodeCache,
    // Dirty-word bitset over SRAM, `Some` only while a differential
    // checkpoint strategy has tracking armed. `None` costs one branch on
    // the store path and keeps snapshot bytes identical to builds that
    // predate the field (the serializer below omits the key, and a
    // missing key deserializes as `None`).
    dirty_sram: Option<Vec<u64>>,
}

// Hand-written so the `dirty_sram` key is absent (not `null`) when
// tracking is off: recordings and state digests taken without a
// differential strategy must stay byte-identical to the derived layout
// this replaces. Field order matches the struct declaration.
impl Serialize for Memory {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![
            (Value::Str("sram".into()), self.sram.to_value()),
            (Value::Str("fram".into()), self.fram.to_value()),
            (Value::Str("bus_faults".into()), self.bus_faults.to_value()),
            (
                Value::Str("last_fault_addr".into()),
                self.last_fault_addr.to_value(),
            ),
            (
                Value::Str("decode_cache".into()),
                self.decode_cache.to_value(),
            ),
        ];
        if self.dirty_sram.is_some() {
            fields.push((Value::Str("dirty_sram".into()), self.dirty_sram.to_value()));
        }
        Value::Map(fields)
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("sram_bytes", &self.sram.len())
            .field("fram_bytes", &self.fram.len())
            .field("bus_faults", &self.bus_faults)
            .field("last_fault_addr", &self.last_fault_addr)
            .finish()
    }
}

impl Memory {
    /// Creates zeroed memory.
    pub fn new() -> Self {
        Memory {
            sram: vec![0; SRAM_SIZE],
            fram: vec![0; FRAM_SIZE],
            bus_faults: 0,
            last_fault_addr: None,
            decode_cache: DecodeCache::default(),
            dirty_sram: None,
        }
    }

    /// Whether `addr` lies in volatile SRAM.
    pub fn is_sram(addr: u16) -> bool {
        (SRAM_START..SRAM_END).contains(&addr)
    }

    /// Whether `addr` lies in non-volatile FRAM.
    pub fn is_fram(addr: u16) -> bool {
        addr >= FRAM_START
    }

    /// Whether `addr` maps to real storage at all.
    pub fn is_mapped(addr: u16) -> bool {
        Self::is_sram(addr) || Self::is_fram(addr)
    }

    /// Fetches and decodes the instruction at `pc` through the predecode
    /// cache.
    ///
    /// A hit returns the cached `(instr, size_in_words, cycles)` with no
    /// memory traffic; by construction a hit can only exist where the
    /// uncached fetch would not have faulted, so fault accounting is
    /// unchanged. A miss performs exactly the uncached sequence — a
    /// faulting word read at `pc`, a non-faulting peek at `pc + 2` — and
    /// caches the decoded result when the first word's bytes are both
    /// mapped.
    ///
    /// # Errors
    ///
    /// `Err(word0)` when the fetched word does not decode (the caller
    /// raises the illegal-instruction fault with it). Decode failures are
    /// never cached.
    #[inline]
    pub fn fetch_decoded(&mut self, pc: u16) -> Result<(Instr, u8, u8), u16> {
        let slot = self.decode_cache.slots[DecodeCache::index(pc)];
        if slot.tag == pc && pc != DECODE_EMPTY {
            self.decode_cache.hits += 1;
            return Ok((slot.instr, slot.size, slot.cycles));
        }
        self.decode_cache.misses += 1;
        let w0 = self.read_word(pc);
        let w1 = self.peek_word(pc.wrapping_add(2));
        match Instr::decode(w0, Some(w1)) {
            Ok((instr, size)) => {
                let cycles = instr.cycles() as u8;
                if self.decode_cache.enabled
                    && Self::is_mapped(pc)
                    && Self::is_mapped(pc.wrapping_add(1))
                {
                    self.decode_cache.slots[DecodeCache::index(pc)] = DecodeSlot {
                        tag: pc,
                        size,
                        cycles,
                        instr,
                    };
                }
                Ok((instr, size, cycles))
            }
            Err(_) => Err(w0),
        }
    }

    /// Cumulative predecode-cache `(hits, misses)` over the memory's
    /// lifetime. A miss is any fetch not served from the cache, including
    /// fetches made while the cache is disabled.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (self.decode_cache.hits, self.decode_cache.misses)
    }

    /// Enables or disables the predecode cache (disabling also drops all
    /// entries). The cache is on by default; turning it off exists for
    /// benchmarking the cold-decode path.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.decode_cache.enabled = enabled;
        self.decode_cache.slots.fill(EMPTY_SLOT);
    }

    /// Drops decode-cache entries that may have fetched the byte at
    /// `addr` (an entry at `pc` depends on `pc ..= pc + 3`).
    #[inline]
    fn invalidate_decode(&mut self, addr: u16) {
        for back in 0..MAX_INSTR_BYTES {
            let a = addr.wrapping_sub(back);
            let slot = &mut self.decode_cache.slots[DecodeCache::index(a)];
            if slot.tag == a {
                slot.tag = DECODE_EMPTY;
            }
        }
    }

    /// Reads one byte; unmapped addresses return `0xFF` and count a bus
    /// fault.
    pub fn read_byte(&mut self, addr: u16) -> u8 {
        if Self::is_sram(addr) {
            self.sram[(addr - SRAM_START) as usize]
        } else if Self::is_fram(addr) {
            self.fram[(addr - FRAM_START) as usize]
        } else {
            self.note_fault(addr);
            0xFF
        }
    }

    /// Writes one byte; unmapped addresses drop the write and count a bus
    /// fault.
    pub fn write_byte(&mut self, addr: u16, value: u8) {
        if Self::is_sram(addr) {
            self.sram[(addr - SRAM_START) as usize] = value;
            if let Some(bits) = self.dirty_sram.as_deref_mut() {
                let word = ((addr - SRAM_START) / 2) as usize;
                bits[word >> 6] |= 1u64 << (word & 63);
            }
            self.invalidate_decode(addr);
        } else if Self::is_fram(addr) {
            self.fram[(addr - FRAM_START) as usize] = value;
            self.invalidate_decode(addr);
        } else {
            self.note_fault(addr);
        }
    }

    /// Reads a little-endian word. The address wraps at the 64 KiB
    /// boundary, like the bus it models.
    pub fn read_word(&mut self, addr: u16) -> u16 {
        let lo = self.read_byte(addr) as u16;
        let hi = self.read_byte(addr.wrapping_add(1)) as u16;
        lo | (hi << 8)
    }

    /// Writes a little-endian word (wrapping at the 64 KiB boundary).
    pub fn write_word(&mut self, addr: u16, value: u16) {
        self.write_byte(addr, (value & 0xFF) as u8);
        self.write_byte(addr.wrapping_add(1), (value >> 8) as u8);
    }

    /// A non-faulting read for instrumentation (debugger memory views,
    /// ground-truth checks): unmapped space reads as `0xFF` without
    /// disturbing the fault counters.
    pub fn peek_byte(&self, addr: u16) -> u8 {
        if Self::is_sram(addr) {
            self.sram[(addr - SRAM_START) as usize]
        } else if Self::is_fram(addr) {
            self.fram[(addr - FRAM_START) as usize]
        } else {
            0xFF
        }
    }

    /// Non-faulting word read (see [`Memory::peek_byte`]).
    pub fn peek_word(&self, addr: u16) -> u16 {
        self.peek_byte(addr) as u16 | ((self.peek_byte(addr.wrapping_add(1)) as u16) << 8)
    }

    /// A non-faulting write for the debugger's `write` console command.
    /// Writes to unmapped space are dropped silently.
    pub fn poke_word(&mut self, addr: u16, value: u16) {
        let faults = self.bus_faults;
        let last = self.last_fault_addr;
        self.write_word(addr, value);
        self.bus_faults = faults;
        self.last_fault_addr = last;
    }

    /// Erases volatile state (a power cycle). FRAM is untouched.
    pub fn power_cycle(&mut self) {
        self.sram.fill(0);
        // The zero-fill rewrites every SRAM word; a tracker that survives
        // the cycle must see them all dirty (the restore path re-arms it
        // from the committed delta set anyway, this is the safe default).
        if let Some(bits) = self.dirty_sram.as_deref_mut() {
            bits.fill(u64::MAX);
        }
        // Any entry at `pc >= SRAM_START - 3` may have fetched an SRAM
        // byte; entries at `SRAM_END` and above cannot (FRAM starts well
        // past SRAM, so no instruction straddles back into it).
        let lo = SRAM_START - (MAX_INSTR_BYTES - 1);
        for slot in self.decode_cache.slots.iter_mut() {
            if (lo..SRAM_END).contains(&slot.tag) {
                slot.tag = DECODE_EMPTY;
            }
        }
    }

    /// The raw SRAM image (`SRAM_START ..`), for whole-memory oracles
    /// (differential fuzzing, snapshot diffing) that would otherwise
    /// peek byte by byte.
    pub fn sram(&self) -> &[u8] {
        &self.sram
    }

    /// The raw FRAM image (`FRAM_START ..`), see [`Memory::sram`].
    pub fn fram(&self) -> &[u8] {
        &self.fram
    }

    /// Number of accesses to unmapped space so far (sticky across power
    /// cycles — it is bench instrumentation, not target state).
    pub fn bus_faults(&self) -> u64 {
        self.bus_faults
    }

    /// The most recent faulting address, if any.
    pub fn last_fault_addr(&self) -> Option<u16> {
        self.last_fault_addr
    }

    /// Arms or disarms the DiCA-style dirty-word write probe. Arming
    /// starts from an all-clean set; disarming drops the bitset (and the
    /// branch in the store path with it).
    pub fn set_dirty_tracking(&mut self, enabled: bool) {
        self.dirty_sram = enabled.then(|| vec![0u64; DIRTY_LIMBS]);
    }

    /// Whether the dirty-word probe is armed.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty_sram.is_some()
    }

    /// Word addresses (aligned, ascending) of every SRAM word written
    /// since the probe was armed or last reseeded. Empty when disarmed.
    pub fn dirty_word_addrs(&self) -> Vec<u16> {
        let Some(bits) = self.dirty_sram.as_deref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (limb_idx, &limb) in bits.iter().enumerate() {
            let mut rest = limb;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                out.push(SRAM_START + ((limb_idx * 64 + bit) as u16) * 2);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Replaces the dirty set wholesale (no-op when disarmed). A
    /// differential strategy reseeds the cumulative dirty-since-base set
    /// after committing a delta or restoring one.
    pub fn seed_dirty_words(&mut self, addrs: &[u16]) {
        let Some(bits) = self.dirty_sram.as_deref_mut() else {
            return;
        };
        bits.fill(0);
        for &addr in addrs {
            if Self::is_sram(addr) {
                let word = ((addr - SRAM_START) / 2) as usize;
                bits[word >> 6] |= 1u64 << (word & 63);
            }
        }
    }

    fn note_fault(&mut self, addr: u16) {
        self.bus_faults += 1;
        self.last_fault_addr = Some(addr);
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_and_fram_are_disjoint_and_sized() {
        assert!(!Memory::is_sram(FRAM_START));
        assert!(!Memory::is_fram(SRAM_START));
        assert!(Memory::is_mapped(0x1C00));
        assert!(Memory::is_mapped(0xFFFF));
        assert!(!Memory::is_mapped(0x0000));
        assert!(!Memory::is_mapped(0x3000));
    }

    #[test]
    fn word_access_is_little_endian() {
        let mut mem = Memory::new();
        mem.write_word(0x4400, 0xABCD);
        assert_eq!(mem.read_byte(0x4400), 0xCD);
        assert_eq!(mem.read_byte(0x4401), 0xAB);
    }

    #[test]
    fn unmapped_reads_pull_high_and_fault() {
        let mut mem = Memory::new();
        assert_eq!(mem.read_word(0x0000), 0xFFFF);
        assert_eq!(mem.bus_faults(), 2);
        assert_eq!(mem.last_fault_addr(), Some(0x0001));
    }

    #[test]
    fn unmapped_writes_are_dropped() {
        let mut mem = Memory::new();
        mem.write_word(0x0010, 0x1234);
        assert_eq!(mem.bus_faults(), 2);
        assert_eq!(mem.peek_word(0x0010), 0xFFFF);
    }

    #[test]
    fn power_cycle_clears_only_sram() {
        let mut mem = Memory::new();
        mem.write_word(0x1C10, 7);
        mem.write_word(0x5000, 9);
        mem.power_cycle();
        assert_eq!(mem.read_word(0x1C10), 0);
        assert_eq!(mem.read_word(0x5000), 9);
    }

    #[test]
    fn peek_and_poke_do_not_fault() {
        let mut mem = Memory::new();
        assert_eq!(mem.peek_word(0x0000), 0xFFFF);
        mem.poke_word(0x0000, 5);
        assert_eq!(mem.bus_faults(), 0);
    }

    #[test]
    fn vectors_live_in_fram() {
        assert!(Memory::is_fram(RESET_VECTOR));
        assert!(Memory::is_fram(IRQ_VECTOR));
        let mut mem = Memory::new();
        mem.write_word(RESET_VECTOR, 0x4400);
        mem.power_cycle();
        assert_eq!(mem.read_word(RESET_VECTOR), 0x4400);
    }

    #[test]
    fn decode_cache_hits_return_the_same_instruction() {
        let mut mem = Memory::new();
        let (w0, w1) = (Instr::Movi {
            rd: crate::isa::Reg::new(3),
            imm: 0xBEEF,
        })
        .encode();
        mem.write_word(0x4400, w0);
        mem.write_word(0x4402, w1.unwrap());
        let cold = mem.fetch_decoded(0x4400).unwrap();
        let warm = mem.fetch_decoded(0x4400).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold.1, 2, "two-word instruction");
        assert_eq!(mem.bus_faults(), 0);
    }

    #[test]
    fn decode_cache_invalidates_on_writes_into_the_span() {
        let mut mem = Memory::new();
        let (nop, _) = Instr::Nop.encode();
        mem.write_word(0x4400, nop);
        assert_eq!(mem.fetch_decoded(0x4400).unwrap().0, Instr::Nop);
        // Overwrite the cached word: the next fetch must re-decode.
        let (halt, _) = Instr::Halt.encode();
        mem.write_word(0x4400, halt);
        assert_eq!(mem.fetch_decoded(0x4400).unwrap().0, Instr::Halt);
        // A write into the *second* word of a cached two-word instruction
        // also invalidates (the entry spans pc ..= pc + 3).
        let (w0, w1) = (Instr::Movi {
            rd: crate::isa::Reg::new(0),
            imm: 1,
        })
        .encode();
        mem.write_word(0x4400, w0);
        mem.write_word(0x4402, w1.unwrap());
        assert_eq!(mem.fetch_decoded(0x4400).unwrap().1, 2);
        mem.write_word(0x4402, 7);
        let (i, _, _) = mem.fetch_decoded(0x4400).unwrap();
        assert_eq!(
            i,
            Instr::Movi {
                rd: crate::isa::Reg::new(0),
                imm: 7
            },
            "patched immediate must be fetched, not the stale decode"
        );
    }

    #[test]
    fn decode_cache_invalidates_on_poke_and_power_cycle() {
        let mut mem = Memory::new();
        let (nop, _) = Instr::Nop.encode();
        // SRAM-resident code (checkpoint restores write here).
        mem.write_word(0x1C00, nop);
        assert_eq!(mem.fetch_decoded(0x1C00).unwrap().0, Instr::Nop);
        let (halt, _) = Instr::Halt.encode();
        mem.poke_word(0x1C00, halt);
        assert_eq!(
            mem.fetch_decoded(0x1C00).unwrap().0,
            Instr::Halt,
            "non-faulting pokes must invalidate like writes"
        );
        // A power cycle zeroes SRAM: the cached decode must not survive.
        mem.power_cycle();
        assert_eq!(mem.peek_word(0x1C00), 0);
        assert_eq!(
            mem.fetch_decoded(0x1C00).unwrap().0,
            Instr::Nop,
            "zeroed SRAM decodes as nop, not the stale halt"
        );
    }

    #[test]
    fn decode_cache_preserves_fault_accounting() {
        let mut mem = Memory::new();
        // Unmapped fetch: faults every time, cached never (reads 0xFFFF,
        // whose opcode nibble is reserved).
        for round in 1..=3u64 {
            assert_eq!(mem.fetch_decoded(0x0000), Err(0xFFFF));
            assert_eq!(mem.bus_faults(), 2 * round, "two byte faults per fetch");
        }
        // A fetch whose first word straddles mapped/unmapped space also
        // keeps faulting (the straddle byte is the unmapped one).
        let before = mem.bus_faults();
        let _ = mem.fetch_decoded(0x23FF);
        let _ = mem.fetch_decoded(0x23FF);
        assert_eq!(mem.bus_faults(), before + 2);
        // Illegal words are not cached and keep failing.
        mem.write_word(0x4400, 0xF000);
        assert_eq!(mem.fetch_decoded(0x4400), Err(0xF000));
        assert_eq!(mem.fetch_decoded(0x4400), Err(0xF000));
    }

    #[test]
    fn fetch_at_the_empty_sentinel_address_is_not_a_phantom_hit() {
        // pc == 0xFFFF equals the empty-slot tag; the lookup must still
        // take the uncached path (reading 0xFFFF + the unmapped 0x0000
        // byte) instead of serving the sentinel slot's nop. Found by
        // edb-fuzz: a patched jump target sent the cpu here and the
        // cached and cold configurations disagreed.
        let mut mem = Memory::new();
        let r = mem.fetch_decoded(0xFFFF);
        assert_eq!(mem.bus_faults(), 1, "the 0x0000 byte fault is counted");
        let mut cold = Memory::new();
        cold.set_decode_cache_enabled(false);
        assert_eq!(r, cold.fetch_decoded(0xFFFF), "cached == cold at 0xFFFF");
    }

    #[test]
    fn decode_cache_can_be_disabled_and_snapshots_stay_correct() {
        let filled = |m: &Memory| m.decode_cache.slots.iter().any(|s| s.tag != DECODE_EMPTY);
        let mut mem = Memory::new();
        let (nop, _) = Instr::Nop.encode();
        mem.write_word(0x4400, nop);
        mem.set_decode_cache_enabled(false);
        assert_eq!(mem.fetch_decoded(0x4400).unwrap().0, Instr::Nop);
        assert!(!filled(&mem), "disabled: never fills");
        mem.set_decode_cache_enabled(true);
        let _ = mem.fetch_decoded(0x4400);
        assert!(filled(&mem));
        // Clones carry the warm cache, and entries stay coherent with
        // the clone's own memory: a patch to the clone invalidates only
        // the clone, not the original.
        let mut snap = mem.clone();
        assert!(filled(&snap), "clones stay warm");
        let (halt, _) = Instr::Halt.encode();
        snap.write_word(0x4400, halt);
        assert_eq!(snap.fetch_decoded(0x4400).unwrap().0, Instr::Halt);
        assert_eq!(mem.fetch_decoded(0x4400).unwrap().0, Instr::Nop);
        // Serialized snapshots deserialize cold but fetch correctly.
        let value = mem.to_value();
        let mut back = Memory::from_value(&value).unwrap();
        assert!(!filled(&back), "deserialized: cold");
        assert_eq!(back.fetch_decoded(0x4400).unwrap().0, Instr::Nop);
    }

    #[test]
    fn decode_cache_conflicting_addresses_stay_correct() {
        // Two code addresses that map to the same direct-mapped slot
        // (indices are `(pc >> 1) mod N`): the cache must evict, never
        // serve one address's decode for the other.
        let a = 0x4400u16;
        let b = a + (DECODE_SLOTS as u16) * 2;
        assert_eq!(DecodeCache::index(a), DecodeCache::index(b));
        let mut mem = Memory::new();
        let (nop, _) = Instr::Nop.encode();
        let (halt, _) = Instr::Halt.encode();
        mem.write_word(a, nop);
        mem.write_word(b, halt);
        for _ in 0..3 {
            assert_eq!(mem.fetch_decoded(a).unwrap().0, Instr::Nop);
            assert_eq!(mem.fetch_decoded(b).unwrap().0, Instr::Halt);
        }
    }

    #[test]
    fn dirty_tracking_records_sram_word_writes() {
        let mut mem = Memory::new();
        assert!(!mem.dirty_tracking());
        mem.write_word(0x1C00, 1); // untracked: probe not armed yet
        mem.set_dirty_tracking(true);
        assert!(mem.dirty_word_addrs().is_empty());
        mem.write_word(0x1C10, 0xABCD); // one aligned word
        mem.write_byte(0x1C23, 9); // odd byte: its containing word
        mem.write_word(0x1C31, 0xFFFF); // unaligned word: spans two words
        mem.write_word(0x5000, 7); // FRAM: never tracked
        assert_eq!(mem.dirty_word_addrs(), vec![0x1C10, 0x1C22, 0x1C30, 0x1C32]);
        // Reseeding replaces the set (restore re-arms from the delta).
        mem.seed_dirty_words(&[0x1C40, 0x0002 /* not SRAM: dropped */]);
        assert_eq!(mem.dirty_word_addrs(), vec![0x1C40]);
        // A power cycle rewrites all of SRAM: everything is dirty.
        mem.power_cycle();
        assert_eq!(mem.dirty_word_addrs().len(), SRAM_WORDS);
        mem.set_dirty_tracking(false);
        assert!(mem.dirty_word_addrs().is_empty());
    }

    #[test]
    fn serialization_omits_the_dirty_field_when_disarmed() {
        let mut mem = Memory::new();
        mem.write_word(0x1C00, 0x1234);
        let clean = mem.to_value();
        let keys: Vec<&str> = clean
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str().unwrap())
            .collect();
        assert_eq!(
            keys,
            [
                "sram",
                "fram",
                "bus_faults",
                "last_fault_addr",
                "decode_cache"
            ],
            "disarmed snapshots must keep the pre-zoo field set"
        );
        // Armed snapshots carry the set and round-trip it.
        mem.set_dirty_tracking(true);
        mem.write_word(0x1C02, 5);
        let armed = mem.to_value();
        assert!(armed.get_field("dirty_sram").is_some());
        let back = Memory::from_value(&armed).unwrap();
        assert!(back.dirty_tracking());
        assert_eq!(back.dirty_word_addrs(), vec![0x1C02]);
        // And a disarmed snapshot reads back disarmed.
        let back = Memory::from_value(&clean).unwrap();
        assert!(!back.dirty_tracking());
    }

    #[test]
    fn word_read_wraps_at_top_of_memory() {
        let mut mem = Memory::new();
        mem.write_byte(0xFFFF, 0x12);
        // Low byte from 0xFFFF, high byte wraps to 0x0000 (unmapped, 0xFF).
        assert_eq!(mem.read_word(0xFFFF), 0xFF12);
    }
}
