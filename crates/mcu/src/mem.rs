//! The MSP430FR-style memory map: volatile SRAM + non-volatile FRAM.
//!
//! The volatile/non-volatile split is the load-bearing piece of the whole
//! reproduction: on a brown-out, [`Memory::power_cycle`] erases SRAM and
//! keeps FRAM, which is exactly the state discontinuity that causes
//! intermittence bugs.
//!
//! Bus semantics mirror a small MCU: reads from unmapped space return
//! `0xFFFF` (floating bus with pull-ups), writes to unmapped space are
//! dropped, and both increment a sticky fault counter that the debugger
//! can inspect. The wild-pointer write of the paper's Figure 6, aimed near
//! address zero after a `NULL` dereference chain, reads `0xFFFF` from
//! unmapped memory and then writes through it — landing on the reset
//! vector at the top of FRAM and bricking the device until reflash,
//! exactly the observed symptom ("the only way to recover is to re-flash
//! the device").

use serde::{Deserialize, Serialize};

/// First byte of volatile SRAM (inclusive).
pub const SRAM_START: u16 = 0x1C00;
/// One past the last byte of SRAM.
pub const SRAM_END: u16 = 0x2400;
/// First byte of non-volatile FRAM (inclusive).
pub const FRAM_START: u16 = 0x4400;
/// The last byte of FRAM is `0xFFFF`; [`FRAM_END`] is the exclusive bound
/// as a `u32` because it does not fit in `u16`.
pub const FRAM_END: u32 = 0x1_0000;
/// Address of the reset vector word (in FRAM, hence persistent — and
/// corruptible).
pub const RESET_VECTOR: u16 = 0xFFFE;
/// Address of the external-interrupt vector word.
pub const IRQ_VECTOR: u16 = 0xFFFC;

const SRAM_SIZE: usize = (SRAM_END - SRAM_START) as usize;
const FRAM_SIZE: usize = (FRAM_END - FRAM_START as u32) as usize;

/// The target's memory: SRAM that dies with power and FRAM that survives.
///
/// # Example
///
/// ```
/// use edb_mcu::Memory;
/// let mut mem = Memory::new();
/// mem.write_word(0x1C00, 0x1234);   // SRAM
/// mem.write_word(0x4400, 0x5678);   // FRAM
/// mem.power_cycle();
/// assert_eq!(mem.read_word(0x1C00), 0);       // volatile: gone
/// assert_eq!(mem.read_word(0x4400), 0x5678);  // non-volatile: kept
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Memory {
    sram: Vec<u8>,
    fram: Vec<u8>,
    bus_faults: u64,
    last_fault_addr: Option<u16>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("sram_bytes", &self.sram.len())
            .field("fram_bytes", &self.fram.len())
            .field("bus_faults", &self.bus_faults)
            .field("last_fault_addr", &self.last_fault_addr)
            .finish()
    }
}

impl Memory {
    /// Creates zeroed memory.
    pub fn new() -> Self {
        Memory {
            sram: vec![0; SRAM_SIZE],
            fram: vec![0; FRAM_SIZE],
            bus_faults: 0,
            last_fault_addr: None,
        }
    }

    /// Whether `addr` lies in volatile SRAM.
    pub fn is_sram(addr: u16) -> bool {
        (SRAM_START..SRAM_END).contains(&addr)
    }

    /// Whether `addr` lies in non-volatile FRAM.
    pub fn is_fram(addr: u16) -> bool {
        addr >= FRAM_START
    }

    /// Whether `addr` maps to real storage at all.
    pub fn is_mapped(addr: u16) -> bool {
        Self::is_sram(addr) || Self::is_fram(addr)
    }

    /// Reads one byte; unmapped addresses return `0xFF` and count a bus
    /// fault.
    pub fn read_byte(&mut self, addr: u16) -> u8 {
        if Self::is_sram(addr) {
            self.sram[(addr - SRAM_START) as usize]
        } else if Self::is_fram(addr) {
            self.fram[(addr - FRAM_START) as usize]
        } else {
            self.note_fault(addr);
            0xFF
        }
    }

    /// Writes one byte; unmapped addresses drop the write and count a bus
    /// fault.
    pub fn write_byte(&mut self, addr: u16, value: u8) {
        if Self::is_sram(addr) {
            self.sram[(addr - SRAM_START) as usize] = value;
        } else if Self::is_fram(addr) {
            self.fram[(addr - FRAM_START) as usize] = value;
        } else {
            self.note_fault(addr);
        }
    }

    /// Reads a little-endian word. The address wraps at the 64 KiB
    /// boundary, like the bus it models.
    pub fn read_word(&mut self, addr: u16) -> u16 {
        let lo = self.read_byte(addr) as u16;
        let hi = self.read_byte(addr.wrapping_add(1)) as u16;
        lo | (hi << 8)
    }

    /// Writes a little-endian word (wrapping at the 64 KiB boundary).
    pub fn write_word(&mut self, addr: u16, value: u16) {
        self.write_byte(addr, (value & 0xFF) as u8);
        self.write_byte(addr.wrapping_add(1), (value >> 8) as u8);
    }

    /// A non-faulting read for instrumentation (debugger memory views,
    /// ground-truth checks): unmapped space reads as `0xFF` without
    /// disturbing the fault counters.
    pub fn peek_byte(&self, addr: u16) -> u8 {
        if Self::is_sram(addr) {
            self.sram[(addr - SRAM_START) as usize]
        } else if Self::is_fram(addr) {
            self.fram[(addr - FRAM_START) as usize]
        } else {
            0xFF
        }
    }

    /// Non-faulting word read (see [`Memory::peek_byte`]).
    pub fn peek_word(&self, addr: u16) -> u16 {
        self.peek_byte(addr) as u16 | ((self.peek_byte(addr.wrapping_add(1)) as u16) << 8)
    }

    /// A non-faulting write for the debugger's `write` console command.
    /// Writes to unmapped space are dropped silently.
    pub fn poke_word(&mut self, addr: u16, value: u16) {
        let faults = self.bus_faults;
        let last = self.last_fault_addr;
        self.write_word(addr, value);
        self.bus_faults = faults;
        self.last_fault_addr = last;
    }

    /// Erases volatile state (a power cycle). FRAM is untouched.
    pub fn power_cycle(&mut self) {
        self.sram.fill(0);
    }

    /// Number of accesses to unmapped space so far (sticky across power
    /// cycles — it is bench instrumentation, not target state).
    pub fn bus_faults(&self) -> u64 {
        self.bus_faults
    }

    /// The most recent faulting address, if any.
    pub fn last_fault_addr(&self) -> Option<u16> {
        self.last_fault_addr
    }

    fn note_fault(&mut self, addr: u16) {
        self.bus_faults += 1;
        self.last_fault_addr = Some(addr);
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_and_fram_are_disjoint_and_sized() {
        assert!(!Memory::is_sram(FRAM_START));
        assert!(!Memory::is_fram(SRAM_START));
        assert!(Memory::is_mapped(0x1C00));
        assert!(Memory::is_mapped(0xFFFF));
        assert!(!Memory::is_mapped(0x0000));
        assert!(!Memory::is_mapped(0x3000));
    }

    #[test]
    fn word_access_is_little_endian() {
        let mut mem = Memory::new();
        mem.write_word(0x4400, 0xABCD);
        assert_eq!(mem.read_byte(0x4400), 0xCD);
        assert_eq!(mem.read_byte(0x4401), 0xAB);
    }

    #[test]
    fn unmapped_reads_pull_high_and_fault() {
        let mut mem = Memory::new();
        assert_eq!(mem.read_word(0x0000), 0xFFFF);
        assert_eq!(mem.bus_faults(), 2);
        assert_eq!(mem.last_fault_addr(), Some(0x0001));
    }

    #[test]
    fn unmapped_writes_are_dropped() {
        let mut mem = Memory::new();
        mem.write_word(0x0010, 0x1234);
        assert_eq!(mem.bus_faults(), 2);
        assert_eq!(mem.peek_word(0x0010), 0xFFFF);
    }

    #[test]
    fn power_cycle_clears_only_sram() {
        let mut mem = Memory::new();
        mem.write_word(0x1C10, 7);
        mem.write_word(0x5000, 9);
        mem.power_cycle();
        assert_eq!(mem.read_word(0x1C10), 0);
        assert_eq!(mem.read_word(0x5000), 9);
    }

    #[test]
    fn peek_and_poke_do_not_fault() {
        let mut mem = Memory::new();
        assert_eq!(mem.peek_word(0x0000), 0xFFFF);
        mem.poke_word(0x0000, 5);
        assert_eq!(mem.bus_faults(), 0);
    }

    #[test]
    fn vectors_live_in_fram() {
        assert!(Memory::is_fram(RESET_VECTOR));
        assert!(Memory::is_fram(IRQ_VECTOR));
        let mut mem = Memory::new();
        mem.write_word(RESET_VECTOR, 0x4400);
        mem.power_cycle();
        assert_eq!(mem.read_word(RESET_VECTOR), 0x4400);
    }

    #[test]
    fn word_read_wraps_at_top_of_memory() {
        let mut mem = Memory::new();
        mem.write_byte(0xFFFF, 0x12);
        // Low byte from 0xFFFF, high byte wraps to 0x0000 (unmapped, 0xFF).
        assert_eq!(mem.read_word(0xFFFF), 0xFF12);
    }
}
