//! Loadable program images produced by the assembler.

use crate::mem::Memory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An assembled program: byte segments at absolute addresses plus the
/// symbol table.
///
/// Loading an image is the simulation's "reflash": it writes every segment
/// into (typically) FRAM, including the reset vector. The symbol table is
/// kept so tests and the debug console can refer to data structures by
/// name instead of magic addresses.
///
/// # Example
///
/// ```
/// use edb_mcu::{asm::assemble, Memory};
/// let image = assemble(".org 0x4400\nvalue: .word 42\n.org 0xFFFE\n.word value")?;
/// let mut mem = Memory::new();
/// image.load_into(&mut mem);
/// assert_eq!(mem.read_word(image.symbol("value").unwrap()), 42);
/// # Ok::<(), edb_mcu::asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Image {
    segments: Vec<(u16, Vec<u8>)>,
    symbols: BTreeMap<String, u16>,
}

impl Image {
    /// Creates an empty image.
    pub fn new() -> Self {
        Image::default()
    }

    /// Appends a byte segment starting at `addr`.
    pub fn push_segment(&mut self, addr: u16, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.segments.push((addr, bytes));
        }
    }

    /// Defines a symbol.
    pub fn define_symbol(&mut self, name: impl Into<String>, addr: u16) {
        self.symbols.insert(name.into(), addr);
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// All symbols, sorted by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u16)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// The `(address, bytes)` segments in assembly order.
    pub fn segments(&self) -> &[(u16, Vec<u8>)] {
        &self.segments
    }

    /// Total payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.segments.iter().map(|(_, b)| b.len()).sum()
    }

    /// Writes every segment into memory — the simulated "reflash".
    ///
    /// Uses non-faulting pokes so that loading an image never trips the
    /// bus-fault instrumentation.
    pub fn load_into(&self, mem: &mut Memory) {
        for (start, bytes) in &self.segments {
            for (i, &b) in bytes.iter().enumerate() {
                let lo = mem.peek_byte(start.wrapping_add(i as u16)); // force no-op read? no
                let _ = lo;
                // poke via word would double-write; write bytes directly
                // through the fault-preserving path:
                let addr = start.wrapping_add(i as u16);
                let faults = mem.bus_faults();
                mem.write_byte(addr, b);
                debug_assert!(
                    mem.bus_faults() == faults,
                    "image writes outside mapped memory at {addr:#06x}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_writes_all_segments() {
        let mut img = Image::new();
        img.push_segment(0x4400, vec![1, 2, 3]);
        img.push_segment(0x5000, vec![9]);
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        assert_eq!(mem.peek_byte(0x4400), 1);
        assert_eq!(mem.peek_byte(0x4402), 3);
        assert_eq!(mem.peek_byte(0x5000), 9);
    }

    #[test]
    fn empty_segments_are_dropped() {
        let mut img = Image::new();
        img.push_segment(0x4400, vec![]);
        assert!(img.segments().is_empty());
        assert_eq!(img.size_bytes(), 0);
    }

    #[test]
    fn symbols_resolve() {
        let mut img = Image::new();
        img.define_symbol("main", 0x4400);
        assert_eq!(img.symbol("main"), Some(0x4400));
        assert_eq!(img.symbol("missing"), None);
        assert_eq!(img.symbols().count(), 1);
    }
}
