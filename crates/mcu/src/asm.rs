//! A two-pass assembler for IVM-16 assembly text.
//!
//! The target applications of the EDB reproduction (the paper's
//! linked-list, Fibonacci, activity-recognition and RFID programs) are
//! written in this assembly language, so that the simulated device runs
//! *real machine code* whose execution can be cut short by a power
//! failure between any two instructions.
//!
//! # Syntax
//!
//! ```text
//! ; comment until end of line
//! .equ  LIST_HEAD, 0x6000       ; named constant
//! .org  0x4400                  ; set location counter
//! main:                          ; label
//!     movi sp, 0x2400
//!     movi r0, LIST_HEAD + 2    ; expressions: + and -
//!     ld   r1, [r0 + 4]         ; word load, base + byte offset
//!     add  r1, 10               ; immediate form auto-selected
//!     cmp  r1, r2
//!     jnz  main
//!     out  0x02, r1             ; port write
//!     halt
//! buffer: .space 16
//! msg:    .asciz "hello"
//! .org 0xFFFE
//! .word main                    ; reset vector
//! ```
//!
//! Registers are `r0`–`r15`; `sp` is an alias for `r15`. Numbers may be
//! decimal, `0x` hex, `0b` binary, or `'c'` character literals, with an
//! optional leading `-`.

use crate::image::Image;
use crate::isa::{AluOp, Cond, Instr, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly failure, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles `source` into an [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line for syntax errors,
/// unknown mnemonics/registers, undefined or duplicate symbols, and
/// values out of range.
///
/// # Example
///
/// ```
/// use edb_mcu::asm::assemble;
/// let image = assemble(".org 0x4400\nstart: halt\n.org 0xFFFE\n.word start")?;
/// assert_eq!(image.symbol("start"), Some(0x4400));
/// # Ok::<(), edb_mcu::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let lines = parse_lines(source)?;
    let symbols = pass1(&lines)?;
    pass2(&lines, &symbols)
}

// ---------------------------------------------------------------------
// Lexing / line parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Register(Reg),
    Expr(ExprNode),
    Mem { base: Reg, offset: ExprNode },
}

#[derive(Debug, Clone, PartialEq)]
enum ExprNode {
    Num(i64),
    Sym(String),
    Add(Box<ExprNode>, Box<ExprNode>),
    Sub(Box<ExprNode>, Box<ExprNode>),
}

#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    Org(ExprNode),
    Word(Vec<ExprNode>),
    Byte(Vec<ExprNode>),
    Space(ExprNode),
    Ascii(Vec<u8>),
    Equ(String, ExprNode),
    Instr(String, Vec<Operand>),
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    label: Option<String>,
    stmt: Option<Stmt>,
}

fn parse_lines(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let text = strip_comment(raw).trim().to_string();
        if text.is_empty() {
            continue;
        }
        let (label, rest) = split_label(&text, number)?;
        let stmt = if rest.is_empty() {
            None
        } else {
            Some(parse_stmt(rest, number)?)
        };
        out.push(Line {
            number,
            label,
            stmt,
        });
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // A ';' inside a character or string literal does not start a comment.
    let mut in_str = false;
    let mut in_char = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            ';' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

fn split_label(text: &str, number: usize) -> Result<(Option<String>, &str), AsmError> {
    if let Some(colon) = text.find(':') {
        let candidate = &text[..colon];
        if !candidate.is_empty()
            && candidate.chars().next().map(is_ident_start) == Some(true)
            && candidate.chars().all(is_ident)
        {
            return Ok((Some(candidate.to_string()), text[colon + 1..].trim()));
        }
        if candidate.chars().all(|c| c.is_ascii_whitespace()) {
            return err(number, "empty label");
        }
    }
    Ok((None, text))
}

fn parse_stmt(text: &str, number: usize) -> Result<Stmt, AsmError> {
    let (head, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let head_lc = head.to_ascii_lowercase();
    match head_lc.as_str() {
        ".org" => Ok(Stmt::Org(parse_expr(rest, number)?)),
        ".word" => Ok(Stmt::Word(parse_expr_list(rest, number)?)),
        ".byte" => Ok(Stmt::Byte(parse_expr_list(rest, number)?)),
        ".space" => Ok(Stmt::Space(parse_expr(rest, number)?)),
        ".ascii" | ".asciz" => {
            let mut bytes = parse_string(rest, number)?;
            if head_lc == ".asciz" {
                bytes.push(0);
            }
            Ok(Stmt::Ascii(bytes))
        }
        ".equ" => {
            let (name, expr) = match rest.split_once(',') {
                Some((n, e)) => (n.trim(), e.trim()),
                None => return err(number, ".equ requires `NAME, value`"),
            };
            if name.is_empty() || !name.chars().next().map(is_ident_start).unwrap_or(false) {
                return err(number, format!("bad .equ name `{name}`"));
            }
            Ok(Stmt::Equ(name.to_string(), parse_expr(expr, number)?))
        }
        d if d.starts_with('.') => err(number, format!("unknown directive `{head}`")),
        _ => {
            let operands = parse_operands(rest, number)?;
            Ok(Stmt::Instr(head_lc, operands))
        }
    }
}

fn parse_string(text: &str, number: usize) -> Result<Vec<u8>, AsmError> {
    let t = text.trim();
    if t.len() < 2 || !t.starts_with('"') || !t.ends_with('"') {
        return err(number, "expected a double-quoted string");
    }
    let inner = &t[1..t.len() - 1];
    let mut bytes = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => bytes.push(b'\n'),
                Some('t') => bytes.push(b'\t'),
                Some('0') => bytes.push(0),
                Some('\\') => bytes.push(b'\\'),
                Some('"') => bytes.push(b'"'),
                other => return err(number, format!("bad escape `\\{other:?}`")),
            }
        } else {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(bytes)
}

/// Splits on top-level commas (commas inside `[...]` belong to nothing —
/// the syntax has none, but be robust).
fn parse_operands(text: &str, number: usize) -> Result<Vec<Operand>, AsmError> {
    let t = text.trim();
    if t.is_empty() {
        return Ok(Vec::new());
    }
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in t.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&t[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&t[start..]);
    parts
        .into_iter()
        .map(|p| parse_operand(p.trim(), number))
        .collect()
}

fn parse_operand(text: &str, number: usize) -> Result<Operand, AsmError> {
    if text.is_empty() {
        return err(number, "empty operand");
    }
    if let Some(reg) = parse_register(text) {
        return Ok(Operand::Register(reg));
    }
    if text.starts_with('[') {
        if !text.ends_with(']') {
            return err(number, format!("unterminated memory operand `{text}`"));
        }
        let inner = text[1..text.len() - 1].trim();
        // Forms: [rb], [rb + expr], [rb - expr]
        let (base_txt, off_txt, negate) = match split_first_top_level(inner, &['+', '-']) {
            Some((b, o, sign)) => (b.trim(), o.trim(), sign == '-'),
            None => (inner, "", false),
        };
        let base = parse_register(base_txt).ok_or_else(|| AsmError {
            line: number,
            message: format!("memory operand base must be a register, got `{base_txt}`"),
        })?;
        let offset = if off_txt.is_empty() {
            ExprNode::Num(0)
        } else {
            let e = parse_expr(off_txt, number)?;
            if negate {
                ExprNode::Sub(Box::new(ExprNode::Num(0)), Box::new(e))
            } else {
                e
            }
        };
        return Ok(Operand::Mem { base, offset });
    }
    let text = text.strip_prefix('#').unwrap_or(text);
    Ok(Operand::Expr(parse_expr(text, number)?))
}

fn split_first_top_level<'a>(text: &'a str, ops: &[char]) -> Option<(&'a str, &'a str, char)> {
    // Find the first +/- that is a binary operator (not a leading sign).
    for (i, c) in text.char_indices() {
        if ops.contains(&c) && i > 0 {
            return Some((&text[..i], &text[i + 1..], c));
        }
    }
    None
}

fn parse_register(text: &str) -> Option<Reg> {
    let t = text.to_ascii_lowercase();
    if t == "sp" {
        return Some(Reg::SP);
    }
    let idx = t.strip_prefix('r')?.parse::<u8>().ok()?;
    if idx < 16 {
        Some(Reg::new(idx))
    } else {
        None
    }
}

fn parse_expr_list(text: &str, number: usize) -> Result<Vec<ExprNode>, AsmError> {
    text.split(',')
        .map(|p| parse_expr(p.trim(), number))
        .collect()
}

fn parse_expr(text: &str, number: usize) -> Result<ExprNode, AsmError> {
    let t = text.trim();
    if t.is_empty() {
        return err(number, "empty expression");
    }
    // Left-associative + / - over atoms.
    let mut atoms: Vec<(char, &str)> = Vec::new();
    let mut op = '+';
    let mut start = 0usize;
    let bytes: Vec<char> = t.chars().collect();
    let mut i = 0usize;
    let mut in_char = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\'' {
            in_char = !in_char;
        }
        if (c == '+' || c == '-') && i > start && !in_char {
            atoms.push((op, t[start..i].trim()));
            op = c;
            start = i + 1;
        }
        i += 1;
    }
    atoms.push((op, t[start..].trim()));

    let mut node: Option<ExprNode> = None;
    for (sign, atom) in atoms {
        let a = parse_atom(atom, number)?;
        node = Some(match (node, sign) {
            (None, '+') => a,
            (None, '-') => ExprNode::Sub(Box::new(ExprNode::Num(0)), Box::new(a)),
            (Some(n), '+') => ExprNode::Add(Box::new(n), Box::new(a)),
            (Some(n), '-') => ExprNode::Sub(Box::new(n), Box::new(a)),
            _ => unreachable!(),
        });
    }
    Ok(node.expect("at least one atom"))
}

fn parse_atom(text: &str, number: usize) -> Result<ExprNode, AsmError> {
    let t = text.trim();
    if t.is_empty() {
        return err(number, "empty term in expression");
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return match i64::from_str_radix(hex, 16) {
            Ok(v) => Ok(ExprNode::Num(v)),
            Err(_) => err(number, format!("bad hex literal `{t}`")),
        };
    }
    if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        return match i64::from_str_radix(bin, 2) {
            Ok(v) => Ok(ExprNode::Num(v)),
            Err(_) => err(number, format!("bad binary literal `{t}`")),
        };
    }
    if t.starts_with('\'') && t.ends_with('\'') && t.len() >= 3 {
        let inner = &t[1..t.len() - 1];
        let ch = match inner {
            "\\n" => '\n',
            "\\t" => '\t',
            "\\0" => '\0',
            "\\\\" => '\\',
            s if s.chars().count() == 1 => s.chars().next().expect("one char"),
            _ => return err(number, format!("bad character literal `{t}`")),
        };
        return Ok(ExprNode::Num(ch as i64));
    }
    if t.chars().next().map(|c| c.is_ascii_digit()) == Some(true) {
        return match t.parse::<i64>() {
            Ok(v) => Ok(ExprNode::Num(v)),
            Err(_) => err(number, format!("bad decimal literal `{t}`")),
        };
    }
    if t.chars().next().map(is_ident_start) == Some(true) && t.chars().all(is_ident) {
        return Ok(ExprNode::Sym(t.to_string()));
    }
    err(number, format!("cannot parse expression term `{t}`"))
}

// ---------------------------------------------------------------------
// Symbol resolution
// ---------------------------------------------------------------------

fn eval(expr: &ExprNode, symbols: &HashMap<String, i64>, line: usize) -> Result<i64, AsmError> {
    match expr {
        ExprNode::Num(v) => Ok(*v),
        ExprNode::Sym(name) => symbols.get(name).copied().ok_or_else(|| AsmError {
            line,
            message: format!("undefined symbol `{name}`"),
        }),
        ExprNode::Add(a, b) => Ok(eval(a, symbols, line)? + eval(b, symbols, line)?),
        ExprNode::Sub(a, b) => Ok(eval(a, symbols, line)? - eval(b, symbols, line)?),
    }
}

fn to_u16(value: i64, line: usize, what: &str) -> Result<u16, AsmError> {
    if (-(0x8000i64)..=0xFFFF).contains(&value) {
        Ok(value as u16)
    } else {
        err(
            line,
            format!("{what} value {value} does not fit in 16 bits"),
        )
    }
}

fn to_u8(value: i64, line: usize, what: &str) -> Result<u8, AsmError> {
    if (-(0x80i64)..=0xFF).contains(&value) {
        Ok(value as u8)
    } else {
        err(line, format!("{what} value {value} does not fit in 8 bits"))
    }
}

/// Number of words a statement occupies (syntactically determined, so
/// pass 1 can lay out addresses before symbol values are known).
fn stmt_size_bytes(stmt: &Stmt, line: usize) -> Result<Option<usize>, AsmError> {
    Ok(match stmt {
        Stmt::Org(_) | Stmt::Equ(..) => None,
        Stmt::Word(list) => Some(list.len() * 2),
        Stmt::Byte(list) => Some(list.len()),
        Stmt::Space(_) => None, // handled specially (needs evaluation)
        Stmt::Ascii(bytes) => Some(bytes.len()),
        Stmt::Instr(mnemonic, operands) => Some(instr_size_words(mnemonic, operands, line)? * 2),
    })
}

fn alu_from_mnemonic(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "add" => Add,
        "sub" => Sub,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "sar" => Sar,
        "mul" => Mul,
        "adc" => Adc,
        "sbc" => Sbc,
        "neg" => Neg,
        "not" => Not,
        _ => return None,
    })
}

fn cond_from_mnemonic(m: &str) -> Option<Cond> {
    use Cond::*;
    Some(match m {
        "jmp" => Always,
        "jz" | "jeq" => Z,
        "jnz" | "jne" => Nz,
        "jc" | "jhs" => C,
        "jnc" | "jlo" => Nc,
        "jn" => N,
        "jnn" => Nn,
        "jge" => Ge,
        "jl" | "jlt" => Lt,
        "jgt" => Gt,
        "jle" => Le,
        _ => return None,
    })
}

fn instr_size_words(mnemonic: &str, operands: &[Operand], line: usize) -> Result<usize, AsmError> {
    let m = mnemonic.trim_end_matches('i');
    let has_imm_suffix = mnemonic.ends_with('i') && alu_from_mnemonic(m).is_some();
    Ok(match mnemonic {
        "nop" | "halt" | "ret" | "reti" | "ei" | "di" => 1,
        "mov" => 1,
        "movi" | "li" => 2,
        "ld" | "st" | "ldb" | "stb" => 2,
        "cmp" => match operands.get(1) {
            Some(Operand::Register(_)) => 1,
            _ => 2,
        },
        "cmpi" => 2,
        "call" => match operands.first() {
            Some(Operand::Register(_)) => 1, // treated as callr
            _ => 2,
        },
        "callr" | "jmpr" => 1,
        "push" | "pop" => 1,
        "in" | "out" => 2,
        _ if cond_from_mnemonic(mnemonic).is_some() => 2,
        _ if alu_from_mnemonic(mnemonic).is_some() => match operands.get(1) {
            Some(Operand::Register(_)) => 1,
            Some(_) => 2,
            None if matches!(mnemonic, "neg" | "not") => 1,
            None => return err(line, format!("`{mnemonic}` needs two operands")),
        },
        _ if has_imm_suffix => 2,
        _ => return err(line, format!("unknown mnemonic `{mnemonic}`")),
    })
}

fn pass1(lines: &[Line]) -> Result<HashMap<String, i64>, AsmError> {
    let mut symbols: HashMap<String, i64> = HashMap::new();
    let mut lc: i64 = 0;
    for line in lines {
        if let Some(label) = &line.label {
            if symbols.contains_key(label) {
                return err(line.number, format!("duplicate symbol `{label}`"));
            }
            symbols.insert(label.clone(), lc);
        }
        if let Some(stmt) = &line.stmt {
            match stmt {
                Stmt::Org(expr) => {
                    // .org may reference earlier symbols only.
                    lc = eval(expr, &symbols, line.number)?;
                    // Re-bind a label on the same line to the new origin.
                    if let Some(label) = &line.label {
                        symbols.insert(label.clone(), lc);
                    }
                }
                Stmt::Equ(name, expr) => {
                    if symbols.contains_key(name) {
                        return err(line.number, format!("duplicate symbol `{name}`"));
                    }
                    let v = eval(expr, &symbols, line.number)?;
                    symbols.insert(name.clone(), v);
                }
                Stmt::Space(expr) => {
                    lc += eval(expr, &symbols, line.number)?;
                }
                other => {
                    if let Some(sz) = stmt_size_bytes(other, line.number)? {
                        lc += sz as i64;
                    }
                }
            }
        }
    }
    Ok(symbols)
}

fn pass2(lines: &[Line], symbols: &HashMap<String, i64>) -> Result<Image, AsmError> {
    let mut image = Image::new();
    for (name, &value) in symbols {
        if (0..=0xFFFF).contains(&value) {
            image.define_symbol(name.clone(), value as u16);
        }
    }
    let mut seg_start: i64 = 0;
    let mut seg: Vec<u8> = Vec::new();
    let flush = |image: &mut Image, seg: &mut Vec<u8>, seg_start: i64| {
        if !seg.is_empty() {
            image.push_segment(seg_start as u16, std::mem::take(seg));
        }
    };

    for line in lines {
        let Some(stmt) = &line.stmt else { continue };
        match stmt {
            Stmt::Equ(..) => {}
            Stmt::Org(expr) => {
                flush(&mut image, &mut seg, seg_start);
                seg_start = eval(expr, symbols, line.number)?;
            }
            Stmt::Space(expr) => {
                let n = eval(expr, symbols, line.number)?;
                if n < 0 {
                    return err(line.number, ".space size cannot be negative");
                }
                seg.extend(std::iter::repeat_n(0u8, n as usize));
            }
            Stmt::Word(list) => {
                for e in list {
                    let v = to_u16(eval(e, symbols, line.number)?, line.number, ".word")?;
                    seg.extend_from_slice(&v.to_le_bytes());
                }
            }
            Stmt::Byte(list) => {
                for e in list {
                    let v = to_u8(eval(e, symbols, line.number)?, line.number, ".byte")?;
                    seg.push(v);
                }
            }
            Stmt::Ascii(bytes) => {
                seg.extend_from_slice(bytes);
            }
            Stmt::Instr(mnemonic, operands) => {
                let instr = encode_instr(mnemonic, operands, symbols, line.number)?;
                let (w0, w1) = instr.encode();
                seg.extend_from_slice(&w0.to_le_bytes());
                if let Some(w1) = w1 {
                    seg.extend_from_slice(&w1.to_le_bytes());
                }
            }
        }
    }
    flush(&mut image, &mut seg, seg_start);
    Ok(image)
}

fn expect_reg(op: Option<&Operand>, line: usize, what: &str) -> Result<Reg, AsmError> {
    match op {
        Some(Operand::Register(r)) => Ok(*r),
        other => err(line, format!("{what} must be a register, got {other:?}")),
    }
}

fn expect_expr_u16(
    op: Option<&Operand>,
    symbols: &HashMap<String, i64>,
    line: usize,
    what: &str,
) -> Result<u16, AsmError> {
    match op {
        Some(Operand::Expr(e)) => to_u16(eval(e, symbols, line)?, line, what),
        other => err(line, format!("{what} must be an expression, got {other:?}")),
    }
}

fn expect_mem(
    op: Option<&Operand>,
    symbols: &HashMap<String, i64>,
    line: usize,
) -> Result<(Reg, u16), AsmError> {
    match op {
        Some(Operand::Mem { base, offset }) => {
            let off = eval(offset, symbols, line)?;
            // Offsets are added mod 2^16, so negative offsets wrap.
            Ok((*base, off as u16))
        }
        other => err(
            line,
            format!("expected memory operand `[rb + off]`, got {other:?}"),
        ),
    }
}

fn arity(operands: &[Operand], n: usize, line: usize, mnemonic: &str) -> Result<(), AsmError> {
    if operands.len() != n {
        err(
            line,
            format!("`{mnemonic}` takes {n} operand(s), got {}", operands.len()),
        )
    } else {
        Ok(())
    }
}

fn encode_instr(
    mnemonic: &str,
    operands: &[Operand],
    symbols: &HashMap<String, i64>,
    line: usize,
) -> Result<Instr, AsmError> {
    use Instr::*;
    match mnemonic {
        "nop" => {
            arity(operands, 0, line, mnemonic)?;
            Ok(Nop)
        }
        "halt" => {
            arity(operands, 0, line, mnemonic)?;
            Ok(Halt)
        }
        "ret" => {
            arity(operands, 0, line, mnemonic)?;
            Ok(Ret)
        }
        "reti" => {
            arity(operands, 0, line, mnemonic)?;
            Ok(Reti)
        }
        "ei" => {
            arity(operands, 0, line, mnemonic)?;
            Ok(Ei)
        }
        "di" => {
            arity(operands, 0, line, mnemonic)?;
            Ok(Di)
        }
        "mov" => {
            arity(operands, 2, line, mnemonic)?;
            Ok(Mov {
                rd: expect_reg(operands.first(), line, "destination")?,
                rs: expect_reg(operands.get(1), line, "source")?,
            })
        }
        "movi" | "li" => {
            arity(operands, 2, line, mnemonic)?;
            Ok(Movi {
                rd: expect_reg(operands.first(), line, "destination")?,
                imm: expect_expr_u16(operands.get(1), symbols, line, "immediate")?,
            })
        }
        "ld" | "ldb" => {
            arity(operands, 2, line, mnemonic)?;
            let rd = expect_reg(operands.first(), line, "destination")?;
            let (rb, off) = expect_mem(operands.get(1), symbols, line)?;
            Ok(if mnemonic == "ld" {
                Ld { rd, rb, off }
            } else {
                Ldb { rd, rb, off }
            })
        }
        "st" | "stb" => {
            arity(operands, 2, line, mnemonic)?;
            let (ra, off) = expect_mem(operands.first(), symbols, line)?;
            let rs = expect_reg(operands.get(1), line, "source")?;
            Ok(if mnemonic == "st" {
                St { ra, off, rs }
            } else {
                Stb { ra, off, rs }
            })
        }
        "cmp" | "cmpi" => {
            arity(operands, 2, line, mnemonic)?;
            let rd = expect_reg(operands.first(), line, "left operand")?;
            match operands.get(1) {
                Some(Operand::Register(rs)) if mnemonic == "cmp" => Ok(Cmp { rd, rs: *rs }),
                Some(Operand::Expr(e)) => Ok(Cmpi {
                    rd,
                    imm: to_u16(eval(e, symbols, line)?, line, "immediate")?,
                }),
                other => err(line, format!("bad cmp operand {other:?}")),
            }
        }
        "call" => {
            arity(operands, 1, line, mnemonic)?;
            match operands.first() {
                Some(Operand::Register(rb)) => Ok(Callr { rb: *rb }),
                _ => Ok(Call {
                    target: expect_expr_u16(operands.first(), symbols, line, "target")?,
                }),
            }
        }
        "callr" => {
            arity(operands, 1, line, mnemonic)?;
            Ok(Callr {
                rb: expect_reg(operands.first(), line, "target register")?,
            })
        }
        "jmpr" => {
            arity(operands, 1, line, mnemonic)?;
            Ok(Jmpr {
                rb: expect_reg(operands.first(), line, "target register")?,
            })
        }
        "push" => {
            arity(operands, 1, line, mnemonic)?;
            Ok(Push {
                rs: expect_reg(operands.first(), line, "source")?,
            })
        }
        "pop" => {
            arity(operands, 1, line, mnemonic)?;
            Ok(Pop {
                rd: expect_reg(operands.first(), line, "destination")?,
            })
        }
        "in" => {
            arity(operands, 2, line, mnemonic)?;
            let rd = expect_reg(operands.first(), line, "destination")?;
            let port = match operands.get(1) {
                Some(Operand::Expr(e)) => to_u8(eval(e, symbols, line)?, line, "port")?,
                other => return err(line, format!("port must be an expression, got {other:?}")),
            };
            Ok(In { rd, port })
        }
        "out" => {
            arity(operands, 2, line, mnemonic)?;
            let port = match operands.first() {
                Some(Operand::Expr(e)) => to_u8(eval(e, symbols, line)?, line, "port")?,
                other => return err(line, format!("port must be an expression, got {other:?}")),
            };
            let rs = expect_reg(operands.get(1), line, "source")?;
            Ok(Out { port, rs })
        }
        _ => {
            if let Some(cond) = cond_from_mnemonic(mnemonic) {
                arity(operands, 1, line, mnemonic)?;
                return Ok(J {
                    cond,
                    target: expect_expr_u16(operands.first(), symbols, line, "target")?,
                });
            }
            // ALU register / immediate forms, with auto-selection and an
            // explicit `...i` suffix accepted.
            let (stem, forced_imm) = match alu_from_mnemonic(mnemonic) {
                Some(op) => (op, false),
                None => {
                    let base = mnemonic.strip_suffix('i').unwrap_or(mnemonic);
                    match alu_from_mnemonic(base) {
                        Some(op) => (op, true),
                        None => return err(line, format!("unknown mnemonic `{mnemonic}`")),
                    }
                }
            };
            // `neg`/`not` accept one or two operands: `neg r0` = r0 ← −r0.
            if matches!(stem, AluOp::Neg | AluOp::Not) && operands.len() == 1 {
                let rd = expect_reg(operands.first(), line, "operand")?;
                return Ok(Alu {
                    op: stem,
                    rd,
                    rs: rd,
                });
            }
            arity(operands, 2, line, mnemonic)?;
            let rd = expect_reg(operands.first(), line, "destination")?;
            match operands.get(1) {
                Some(Operand::Register(rs)) if !forced_imm => Ok(Alu {
                    op: stem,
                    rd,
                    rs: *rs,
                }),
                Some(Operand::Expr(e)) => Ok(Alui {
                    op: stem,
                    rd,
                    imm: to_u16(eval(e, symbols, line)?, line, "immediate")?,
                }),
                other => err(line, format!("bad ALU operand {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------

/// Disassembles `bytes` (starting at address `base`) into
/// `(address, text)` lines; undecodable words render as `.word 0x....`.
///
/// # Example
///
/// ```
/// use edb_mcu::asm::{assemble, disassemble};
/// let image = assemble(".org 0x4400\n movi r1, 0x2A\n halt")?;
/// let (addr, bytes) = &image.segments()[0];
/// let listing = disassemble(bytes, *addr);
/// assert!(listing[0].1.contains("movi r1"));
/// assert_eq!(listing[1].1, "halt");
/// # Ok::<(), edb_mcu::asm::AsmError>(())
/// ```
pub fn disassemble(bytes: &[u8], base: u16) -> Vec<(u16, String)> {
    use crate::isa::Instr;
    let mut out = Vec::new();
    let words: Vec<u16> = bytes
        .chunks(2)
        .map(|c| {
            if c.len() == 2 {
                u16::from_le_bytes([c[0], c[1]])
            } else {
                c[0] as u16
            }
        })
        .collect();
    let mut i = 0usize;
    while i < words.len() {
        let addr = base.wrapping_add((i * 2) as u16);
        let w0 = words[i];
        let w1 = words.get(i + 1).copied();
        match Instr::decode(w0, w1) {
            Ok((instr, size)) => {
                out.push((addr, instr.to_string()));
                i += size as usize;
            }
            Err(_) => {
                out.push((addr, format!(".word {w0:#06x}")));
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, NullBus};
    use crate::mem::Memory;

    fn run_to_halt(source: &str) -> (Cpu, Memory) {
        let image = assemble(source).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        for _ in 0..100_000 {
            if !cpu.is_running() {
                break;
            }
            cpu.step(&mut mem, &mut bus);
        }
        assert!(!cpu.is_running(), "program did not halt");
        (cpu, mem)
    }

    #[test]
    fn assembles_and_runs_arithmetic() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r0, 6
                movi r1, 7
                mul  r0, r1
                halt
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0], 42);
    }

    #[test]
    fn labels_and_branches() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r0, 0
                movi r1, 10
            loop:
                add  r0, 1
                cmp  r0, r1
                jnz  loop
                halt
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0], 10);
    }

    #[test]
    fn equ_and_expressions() {
        let (_, mut mem) = run_to_halt(
            r#"
            .equ BASE, 0x6000
            .equ SLOT, BASE + 4
            .org 0x4400
            start:
                movi r0, 0xAB
                movi r1, SLOT
                st   [r1 + 2], r0
                halt
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(mem.read_word(0x6006), 0xAB);
    }

    #[test]
    fn memory_operand_forms() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r1, data
                ld   r0, [r1]
                ld   r2, [r1 + 2]
                ldb  r3, [r1 + 4]
                halt
            data: .word 0x1111, 0x2222
                  .byte 0x33
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0], 0x1111);
        assert_eq!(cpu.regs[2], 0x2222);
        assert_eq!(cpu.regs[3], 0x33);
    }

    #[test]
    fn negative_offsets_wrap() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r1, data + 2
                ld   r0, [r1 - 2]
                halt
            data: .word 0xBEEF
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0], 0xBEEF);
    }

    #[test]
    fn auto_immediate_alu_and_cmp() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r0, 5
                add  r0, 10      ; immediate form auto-selected
                cmp  r0, 15      ; cmpi auto-selected
                jnz  bad
                movi r1, 1
                halt
            bad:
                movi r1, 2
                halt
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0], 15);
        assert_eq!(cpu.regs[1], 1);
    }

    #[test]
    fn strings_and_bytes() {
        let image = assemble(
            r#"
            .org 0x5000
            msg: .asciz "hi\n"
            "#,
        )
        .expect("assembles");
        let (addr, bytes) = &image.segments()[0];
        assert_eq!(*addr, 0x5000);
        assert_eq!(bytes, &vec![b'h', b'i', b'\n', 0]);
    }

    #[test]
    fn char_literals() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r0, 'A'
                halt
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0], 65);
    }

    #[test]
    fn comment_with_semicolon_in_string() {
        let image = assemble(".org 0x5000\nmsg: .ascii \"a;b\" ; real comment").expect("ok");
        assert_eq!(image.segments()[0].1, vec![b'a', b';', b'b']);
    }

    #[test]
    fn error_reports_line_number() {
        let e = assemble(".org 0x4400\n frobnicate r0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn undefined_symbol_is_an_error() {
        let e = assemble(".org 0x4400\n jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a: .word 1\na: .word 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn forward_references_resolve() {
        let image = assemble(
            r#"
            .org 0x4400
            start: jmp later
            later: halt
            .org 0xFFFE
            .word start
            "#,
        )
        .expect("assembles");
        assert_eq!(image.symbol("later"), Some(0x4404));
    }

    #[test]
    fn space_directive_reserves_zeroed_bytes() {
        let image = assemble(".org 0x5000\nbuf: .space 4\nafter: .word 1").expect("ok");
        assert_eq!(image.symbol("after"), Some(0x5004));
        assert_eq!(image.segments()[0].1, vec![0, 0, 0, 0, 1, 0]);
    }

    #[test]
    fn disassembly_round_trips_mnemonics() {
        let src = r#"
            .org 0x4400
            s:  movi r1, 0x2A
                add  r1, r1
                push r1
                pop  r2
                out  0x02, r2
                halt
        "#;
        let image = assemble(src).expect("assembles");
        let (addr, bytes) = &image.segments()[0];
        let listing = disassemble(bytes, *addr);
        let text: Vec<&str> = listing.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            text,
            vec![
                "movi r1, 0x2a",
                "add r1, r1",
                "push r1",
                "pop r2",
                "out 0x02, r2",
                "halt"
            ]
        );
    }

    #[test]
    fn neg_single_operand_form() {
        let (cpu, _) = run_to_halt(
            r#"
            .org 0x4400
            start:
                movi r0, 5
                neg  r0
                halt
            .org 0xFFFE
            .word start
            "#,
        );
        assert_eq!(cpu.regs[0] as i16, -5);
    }

    #[test]
    fn in_out_ports_assemble() {
        let image = assemble(".org 0x4400\n in r0, 0x07\n out 0x03, r0\n").expect("ok");
        let listing = disassemble(&image.segments()[0].1, 0x4400);
        assert_eq!(listing[0].1, "in r0, 0x07");
        assert_eq!(listing[1].1, "out 0x03, r0");
    }
}
