//! The IVM-16 interpreter.
//!
//! The CPU is stepped **one instruction at a time** by the device
//! simulation; each step reports its cycle cost so the electrical model
//! can integrate exactly that much charge out of the storage capacitor.
//! A power failure therefore lands between two instructions — never
//! inside one — matching the atomicity a real MCU's brown-out reset
//! provides at the architectural level.

use crate::isa::{AluOp, Cond, Instr};
use crate::mem::{Memory, IRQ_VECTOR, RESET_VECTOR};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Access to the peripheral port space for `in`/`out` instructions.
///
/// The device crate implements this with the full WISP-like peripheral
/// set; tests can use [`NullBus`].
pub trait PortBus {
    /// Reads a 16-bit value from `port`.
    fn port_in(&mut self, port: u8) -> u16;
    /// Writes a 16-bit value to `port`.
    fn port_out(&mut self, port: u8, value: u16);
}

/// A bus with nothing attached: reads return 0, writes vanish.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBus;

impl PortBus for NullBus {
    fn port_in(&mut self, _port: u8) -> u16 {
        0
    }
    fn port_out(&mut self, _port: u8, _value: u16) {}
}

/// Condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Zero.
    pub z: bool,
    /// Negative (bit 15 of the result).
    pub n: bool,
    /// Carry (or *not borrow* for subtraction, MSP430-style).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Flags {
    fn to_word(self, ie: bool) -> u16 {
        (self.z as u16)
            | (self.n as u16) << 1
            | (self.c as u16) << 2
            | (self.v as u16) << 3
            | (ie as u16) << 4
    }

    fn from_word(word: u16) -> (Flags, bool) {
        (
            Flags {
                z: word & 1 != 0,
                n: word & 2 != 0,
                c: word & 4 != 0,
                v: word & 8 != 0,
            },
            word & 16 != 0,
        )
    }
}

/// Why the CPU stopped running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Fetch decoded a reserved/illegal opcode — the classic symptom of
    /// vectoring into garbage after non-volatile state corruption.
    IllegalInstruction {
        /// Address of the offending word.
        pc: u16,
        /// The word that failed to decode.
        word: u16,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#06x} at {pc:#06x}")
            }
        }
    }
}

/// Execution state of the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuState {
    /// Fetching and executing.
    Running,
    /// Stopped by `halt` until the next reset.
    Halted,
    /// Stopped by a fault until the next reset.
    Faulted(Fault),
}

/// What one [`Cpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Clock cycles consumed (0 when halted/faulted).
    pub cycles: u32,
    /// The instruction that retired, if one did.
    pub retired: Option<Instr>,
    /// Whether this step was an interrupt entry rather than an ordinary
    /// instruction.
    pub irq_entry: bool,
}

/// The processor core: 16 registers, PC, flags, one external IRQ line.
///
/// # Example
///
/// ```
/// use edb_mcu::{Cpu, Memory, NullBus, Instr, Reg};
/// let mut mem = Memory::new();
/// // movi r0, 7; halt — assembled by hand at the reset target.
/// let (w0, w1) = (Instr::Movi { rd: Reg::new(0), imm: 7 }).encode();
/// mem.write_word(0x4400, w0);
/// mem.write_word(0x4402, w1.unwrap());
/// let (h0, _) = Instr::Halt.encode();
/// mem.write_word(0x4404, h0);
/// mem.write_word(0xFFFE, 0x4400);
/// let mut cpu = Cpu::new();
/// cpu.reset(&mem);
/// let mut bus = NullBus;
/// while cpu.is_running() {
///     cpu.step(&mut mem, &mut bus);
/// }
/// assert_eq!(cpu.regs[0], 7);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cpu {
    /// General-purpose registers; `regs[15]` is the stack pointer by
    /// convention.
    pub regs: [u16; 16],
    /// Program counter.
    pub pc: u16,
    /// Condition flags.
    pub flags: Flags,
    /// Global interrupt enable.
    pub ie: bool,
    state: CpuState,
    irq_pending: bool,
    /// Total cycles retired since the last reset.
    pub cycles: u64,
    /// Total instructions retired since the last reset.
    pub instructions: u64,
}

impl Cpu {
    /// Creates a CPU in the halted state; call [`Cpu::reset`] before
    /// stepping.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 16],
            pc: 0,
            flags: Flags::default(),
            ie: false,
            state: CpuState::Halted,
            irq_pending: false,
            cycles: 0,
            instructions: 0,
        }
    }

    /// Power-on / brown-out-recovery reset: registers and flags cleared,
    /// interrupts disabled, PC loaded from the reset vector in FRAM.
    pub fn reset(&mut self, mem: &Memory) {
        self.regs = [0; 16];
        self.flags = Flags::default();
        self.ie = false;
        self.irq_pending = false;
        self.pc = mem.peek_word(RESET_VECTOR);
        self.state = CpuState::Running;
        self.cycles = 0;
        self.instructions = 0;
    }

    /// Whether the CPU is fetching and executing.
    pub fn is_running(&self) -> bool {
        self.state == CpuState::Running
    }

    /// The execution state.
    pub fn state(&self) -> CpuState {
        self.state
    }

    /// Latches the external interrupt line; taken at the next instruction
    /// boundary if `ie` is set.
    pub fn raise_irq(&mut self) {
        self.irq_pending = true;
    }

    /// Whether an interrupt is latched but not yet taken.
    pub fn irq_pending(&self) -> bool {
        self.irq_pending
    }

    fn push(&mut self, mem: &mut Memory, value: u16) {
        let sp = self.regs[15].wrapping_sub(2);
        self.regs[15] = sp;
        mem.write_word(sp, value);
    }

    fn pop(&mut self, mem: &mut Memory) -> u16 {
        let sp = self.regs[15];
        let v = mem.read_word(sp);
        self.regs[15] = sp.wrapping_add(2);
        v
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        let f = self.flags;
        match cond {
            Cond::Always => true,
            Cond::Z => f.z,
            Cond::Nz => !f.z,
            Cond::C => f.c,
            Cond::Nc => !f.c,
            Cond::N => f.n,
            Cond::Nn => !f.n,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
        }
    }

    fn set_zn(&mut self, result: u16) {
        self.flags.z = result == 0;
        self.flags.n = result & 0x8000 != 0;
    }

    fn add_with_carry(&mut self, a: u16, b: u16, carry_in: bool) -> u16 {
        let wide = a as u32 + b as u32 + carry_in as u32;
        let result = wide as u16;
        self.flags.c = wide > 0xFFFF;
        self.flags.v = ((a ^ result) & (b ^ result) & 0x8000) != 0;
        self.set_zn(result);
        result
    }

    fn sub_with_borrow(&mut self, a: u16, b: u16, borrow_in: bool) -> u16 {
        // MSP430 convention: C is "not borrow".
        let wide = a as i32 - b as i32 - borrow_in as i32;
        let result = wide as u16;
        self.flags.c = wide >= 0;
        self.flags.v = ((a ^ b) & (a ^ result) & 0x8000) != 0;
        self.set_zn(result);
        result
    }

    fn alu(&mut self, op: AluOp, a: u16, b: u16) -> u16 {
        match op {
            AluOp::Add => self.add_with_carry(a, b, false),
            AluOp::Adc => {
                let c = self.flags.c;
                self.add_with_carry(a, b, c)
            }
            AluOp::Sub => self.sub_with_borrow(a, b, false),
            AluOp::Sbc => {
                let borrow = !self.flags.c;
                self.sub_with_borrow(a, b, borrow)
            }
            AluOp::And => {
                let r = a & b;
                self.set_zn(r);
                self.flags.c = false;
                self.flags.v = false;
                r
            }
            AluOp::Or => {
                let r = a | b;
                self.set_zn(r);
                self.flags.c = false;
                self.flags.v = false;
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                self.set_zn(r);
                self.flags.c = false;
                self.flags.v = false;
                r
            }
            AluOp::Shl => {
                let sh = (b & 0xF) as u32;
                let wide = (a as u32) << sh;
                let r = wide as u16;
                self.flags.c = sh > 0 && (wide & 0x1_0000) != 0;
                self.flags.v = false;
                self.set_zn(r);
                r
            }
            AluOp::Shr => {
                let sh = (b & 0xF) as u32;
                let r = if sh == 0 { a } else { a >> sh };
                self.flags.c = sh > 0 && (a >> (sh - 1)) & 1 != 0;
                self.flags.v = false;
                self.set_zn(r);
                r
            }
            AluOp::Sar => {
                let sh = (b & 0xF) as u32;
                let r = ((a as i16) >> sh) as u16;
                self.flags.c = sh > 0 && ((a as i16) >> (sh - 1)) & 1 != 0;
                self.flags.v = false;
                self.set_zn(r);
                r
            }
            AluOp::Mul => {
                let r = a.wrapping_mul(b);
                self.flags.c = false;
                self.flags.v = false;
                self.set_zn(r);
                r
            }
            AluOp::Neg => {
                let r = (b as i16).wrapping_neg() as u16;
                self.flags.c = r == 0; // not-borrow of 0 - b
                self.flags.v = b == 0x8000;
                self.set_zn(r);
                r
            }
            AluOp::Not => {
                let r = !b;
                self.flags.c = false;
                self.flags.v = false;
                self.set_zn(r);
                r
            }
        }
    }

    /// Interrupt entry: pushes `pc` and the flags word, clears `ie`, and
    /// vectors through [`IRQ_VECTOR`]. Cold — taken at most once per
    /// peripheral event, never on the straight-line dispatch path.
    #[cold]
    fn take_irq(&mut self, mem: &mut Memory) -> StepOutcome {
        self.irq_pending = false;
        let flags_word = self.flags.to_word(self.ie);
        let pc = self.pc;
        self.push(mem, pc);
        self.push(mem, flags_word);
        self.ie = false;
        self.pc = mem.read_word(IRQ_VECTOR);
        self.cycles += 6;
        StepOutcome {
            cycles: 6,
            retired: None,
            irq_entry: true,
        }
    }

    /// Latches an illegal-instruction fault. Cold — a faulted CPU stays
    /// faulted until reset, so this runs at most once per power-on.
    #[cold]
    fn fault_illegal(&mut self, pc: u16, word: u16) -> StepOutcome {
        self.state = CpuState::Faulted(Fault::IllegalInstruction { pc, word });
        StepOutcome {
            cycles: 0,
            retired: None,
            irq_entry: false,
        }
    }

    /// Executes one instruction (or takes a pending interrupt) and returns
    /// what happened. Returns `cycles: 0` when halted or faulted.
    ///
    /// Inline so the per-quantum simulation loop absorbs the call and the
    /// dispatch sees the caller's concrete [`PortBus`].
    #[inline(always)]
    pub fn step(&mut self, mem: &mut Memory, bus: &mut dyn PortBus) -> StepOutcome {
        if self.state != CpuState::Running {
            return StepOutcome {
                cycles: 0,
                retired: None,
                irq_entry: false,
            };
        }

        if self.irq_pending && self.ie {
            return self.take_irq(mem);
        }

        let pc = self.pc;
        let (instr, size, cycles) = match mem.fetch_decoded(pc) {
            Ok(ok) => ok,
            Err(word) => return self.fault_illegal(pc, word),
        };
        self.pc = pc.wrapping_add(size as u16 * 2);

        use Instr::*;
        match instr {
            Nop => {}
            Halt => self.state = CpuState::Halted,
            Ret => self.pc = self.pop(mem),
            Reti => {
                let flags_word = self.pop(mem);
                let (flags, ie) = Flags::from_word(flags_word);
                self.flags = flags;
                self.ie = ie;
                self.pc = self.pop(mem);
            }
            Ei => self.ie = true,
            Di => self.ie = false,
            Mov { rd, rs } => self.regs[rd.index()] = self.regs[rs.index()],
            Movi { rd, imm } => self.regs[rd.index()] = imm,
            Ld { rd, rb, off } => {
                let addr = self.regs[rb.index()].wrapping_add(off);
                self.regs[rd.index()] = mem.read_word(addr);
            }
            St { ra, off, rs } => {
                let addr = self.regs[ra.index()].wrapping_add(off);
                mem.write_word(addr, self.regs[rs.index()]);
            }
            Ldb { rd, rb, off } => {
                let addr = self.regs[rb.index()].wrapping_add(off);
                self.regs[rd.index()] = mem.read_byte(addr) as u16;
            }
            Stb { ra, off, rs } => {
                let addr = self.regs[ra.index()].wrapping_add(off);
                mem.write_byte(addr, (self.regs[rs.index()] & 0xFF) as u8);
            }
            Alu { op, rd, rs } => {
                let a = self.regs[rd.index()];
                let b = self.regs[rs.index()];
                self.regs[rd.index()] = self.alu(op, a, b);
            }
            Alui { op, rd, imm } => {
                let a = self.regs[rd.index()];
                self.regs[rd.index()] = self.alu(op, a, imm);
            }
            Cmp { rd, rs } => {
                let (a, b) = (self.regs[rd.index()], self.regs[rs.index()]);
                let _ = self.sub_with_borrow(a, b, false);
            }
            Cmpi { rd, imm } => {
                let a = self.regs[rd.index()];
                let _ = self.sub_with_borrow(a, imm, false);
            }
            J { cond, target } => {
                if self.cond_holds(cond) {
                    self.pc = target;
                }
            }
            Call { target } => {
                let ret = self.pc;
                self.push(mem, ret);
                self.pc = target;
            }
            Callr { rb } => {
                let ret = self.pc;
                let target = self.regs[rb.index()];
                self.push(mem, ret);
                self.pc = target;
            }
            Jmpr { rb } => self.pc = self.regs[rb.index()],
            Push { rs } => {
                let v = self.regs[rs.index()];
                self.push(mem, v);
            }
            Pop { rd } => {
                let v = self.pop(mem);
                self.regs[rd.index()] = v;
            }
            In { rd, port } => self.regs[rd.index()] = bus.port_in(port),
            Out { port, rs } => bus.port_out(port, self.regs[rs.index()]),
        }

        let cycles = cycles as u32;
        self.cycles += cycles as u64;
        self.instructions += 1;
        StepOutcome {
            cycles,
            retired: Some(instr),
            irq_entry: false,
        }
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn load(mem: &mut Memory, at: u16, prog: &[Instr]) {
        let mut addr = at;
        for &i in prog {
            let (w0, w1) = i.encode();
            mem.write_word(addr, w0);
            addr = addr.wrapping_add(2);
            if let Some(w1) = w1 {
                mem.write_word(addr, w1);
                addr = addr.wrapping_add(2);
            }
        }
        mem.write_word(RESET_VECTOR, at);
    }

    fn run(mem: &mut Memory, max_steps: usize) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.reset(mem);
        let mut bus = NullBus;
        for _ in 0..max_steps {
            if !cpu.is_running() {
                break;
            }
            cpu.step(mem, &mut bus);
        }
        cpu
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn arithmetic_and_flags() {
        use Instr::*;
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi { rd: r(0), imm: 10 },
                Movi { rd: r(1), imm: 3 },
                Alu {
                    op: AluOp::Sub,
                    rd: r(0),
                    rs: r(1),
                },
                Halt,
            ],
        );
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[0], 7);
        assert!(!cpu.flags.z);
        assert!(!cpu.flags.n);
        assert!(cpu.flags.c, "no borrow → carry set (MSP430 convention)");
    }

    #[test]
    fn overflow_flag_on_signed_add() {
        use Instr::*;
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi {
                    rd: r(0),
                    imm: 0x7FFF,
                },
                Alui {
                    op: AluOp::Add,
                    rd: r(0),
                    imm: 1,
                },
                Halt,
            ],
        );
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[0], 0x8000);
        assert!(cpu.flags.v);
        assert!(cpu.flags.n);
    }

    #[test]
    fn signed_branches() {
        use Instr::*;
        // if (-5 < 3) r2 = 1 else r2 = 2
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi {
                    rd: r(0),
                    imm: (-5i16) as u16,
                },
                Movi { rd: r(1), imm: 3 },
                Cmp { rd: r(0), rs: r(1) },
                J {
                    cond: Cond::Lt,
                    // movi(4) + movi(4) + cmp(2) + j(4) + movi(4) + halt(2)
                    target: 0x4400 + 20,
                },
                Movi { rd: r(2), imm: 2 },
                Halt,
                Movi { rd: r(2), imm: 1 },
                Halt,
            ],
        );
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[2], 1, "signed less-than must take the branch");
    }

    #[test]
    fn unsigned_branches_differ_from_signed() {
        use Instr::*;
        // 0xFFFB (65531 unsigned, -5 signed) vs 3: unsigned-ge (jc) holds.
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi {
                    rd: r(0),
                    imm: 0xFFFB,
                },
                Cmpi { rd: r(0), imm: 3 },
                J {
                    cond: Cond::C,
                    target: 0x4400 + 4 + 4 + 4 + 4 + 2,
                },
                Movi { rd: r(2), imm: 2 },
                Halt,
                Movi { rd: r(2), imm: 1 },
                Halt,
            ],
        );
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[2], 1);
    }

    #[test]
    fn call_ret_uses_stack() {
        use Instr::*;
        let base = 0x4400u16;
        let mut mem = Memory::new();
        // movi sp, 0x2400; call f; halt; f: movi r0, 9; ret
        let prog = [
            Movi {
                rd: Reg::SP,
                imm: 0x2400,
            },
            Call { target: base + 10 },
            Halt,
            Movi { rd: r(0), imm: 9 },
            Ret,
        ];
        load(&mut mem, base, &prog);
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[0], 9);
        assert_eq!(cpu.state(), CpuState::Halted);
        assert_eq!(cpu.regs[15], 0x2400, "stack balanced after ret");
    }

    #[test]
    fn push_pop_round_trip() {
        use Instr::*;
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi {
                    rd: Reg::SP,
                    imm: 0x2400,
                },
                Movi {
                    rd: r(0),
                    imm: 0xCAFE,
                },
                Push { rs: r(0) },
                Pop { rd: r(1) },
                Halt,
            ],
        );
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[1], 0xCAFE);
    }

    #[test]
    fn self_modifying_code_executes_the_new_bytes() {
        use Instr::*;
        let mut mem = Memory::new();
        // The program overwrites an instruction it has *already executed*
        // (and therefore already decode-cached) with `halt`, then jumps
        // back to it. A stale cache would re-run the old instruction and
        // loop forever; correct invalidation halts with the markers set.
        let target = 0x4408u16; // address of `movi r2, 7` below
        let (halt_w0, _) = Halt.encode();
        load(
            &mut mem,
            0x4400,
            &[
                Movi {
                    rd: r(0),
                    imm: target,
                },
                Movi {
                    rd: r(1),
                    imm: halt_w0,
                },
                Movi { rd: r(2), imm: 7 }, // at `target`; becomes `halt`
                St {
                    ra: r(0),
                    off: 0,
                    rs: r(1),
                },
                Movi { rd: r(3), imm: 1 },
                Jmpr { rb: r(0) },
            ],
        );
        let cpu = run(&mut mem, 50);
        assert_eq!(cpu.state(), CpuState::Halted, "patched halt must run");
        assert_eq!(cpu.regs[2], 7, "original instruction ran first");
        assert_eq!(cpu.regs[3], 1, "patch sequence completed");
    }

    #[test]
    fn illegal_instruction_faults_until_reset() {
        let mut mem = Memory::new();
        mem.write_word(0x4400, 0xF123);
        mem.write_word(RESET_VECTOR, 0x4400);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        let out = cpu.step(&mut mem, &mut bus);
        assert_eq!(out.cycles, 0);
        assert!(matches!(cpu.state(), CpuState::Faulted(_)));
        // Still faulted on further steps.
        let out = cpu.step(&mut mem, &mut bus);
        assert_eq!(out.cycles, 0);
        // Reset clears the fault.
        cpu.reset(&mem);
        assert!(cpu.is_running());
    }

    #[test]
    fn irq_entry_and_reti() {
        use Instr::*;
        let base = 0x4400u16;
        let isr = 0x5000u16;
        let mut mem = Memory::new();
        // main: movi sp, 0x2400; ei; movi r0, 1; (loop) jmp loop
        let prog = [
            Movi {
                rd: Reg::SP,
                imm: 0x2400,
            },
            Ei,
            Movi { rd: r(0), imm: 1 },
            J {
                cond: Cond::Always,
                target: base + 10,
            },
        ];
        load(&mut mem, base, &prog);
        // isr: movi r1, 7; reti
        let isr_prog = [Movi { rd: r(1), imm: 7 }, Reti];
        let mut addr = isr;
        for &i in &isr_prog {
            let (w0, w1) = i.encode();
            mem.write_word(addr, w0);
            addr += 2;
            if let Some(w) = w1 {
                mem.write_word(addr, w);
                addr += 2;
            }
        }
        mem.write_word(IRQ_VECTOR, isr);

        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        for _ in 0..5 {
            cpu.step(&mut mem, &mut bus);
        }
        cpu.raise_irq();
        let entry = cpu.step(&mut mem, &mut bus);
        assert!(entry.irq_entry);
        assert!(!cpu.ie, "interrupts masked during ISR");
        // Run the ISR to completion.
        for _ in 0..3 {
            cpu.step(&mut mem, &mut bus);
        }
        assert_eq!(cpu.regs[1], 7);
        assert!(cpu.ie, "reti restores interrupt enable");
        assert_eq!(cpu.regs[15], 0x2400, "stack balanced after reti");
    }

    #[test]
    fn irq_ignored_when_masked() {
        use Instr::*;
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[Movi { rd: r(0), imm: 1 }, Movi { rd: r(0), imm: 2 }, Halt],
        );
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        cpu.raise_irq();
        let mut bus = NullBus;
        let out = cpu.step(&mut mem, &mut bus);
        assert!(!out.irq_entry, "ie is false after reset");
        assert!(cpu.irq_pending(), "irq stays latched");
    }

    #[test]
    fn port_io_reaches_the_bus() {
        use Instr::*;
        #[derive(Default)]
        struct Recorder {
            written: Vec<(u8, u16)>,
        }
        impl PortBus for Recorder {
            fn port_in(&mut self, port: u8) -> u16 {
                port as u16 * 10
            }
            fn port_out(&mut self, port: u8, value: u16) {
                self.written.push((port, value));
            }
        }
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[In { rd: r(0), port: 3 }, Out { port: 5, rs: r(0) }, Halt],
        );
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = Recorder::default();
        while cpu.is_running() {
            cpu.step(&mut mem, &mut bus);
        }
        assert_eq!(cpu.regs[0], 30);
        assert_eq!(bus.written, vec![(5, 30)]);
    }

    #[test]
    fn wild_pointer_write_can_corrupt_reset_vector() {
        use Instr::*;
        // Simulates the tail end of the paper's Figure 6 failure: a NULL
        // dereference chain reads 0xFFFF from unmapped memory, then writes
        // through it, landing on the reset vector.
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi { rd: r(0), imm: 0 }, // e->next == NULL
                Ld {
                    rd: r(1),
                    rb: r(0),
                    off: 2,
                }, // read NULL->next: bus returns 0xFFFF
                Movi {
                    rd: r(2),
                    imm: 0xDEAD,
                },
                St {
                    ra: r(1),
                    off: 0,
                    rs: r(2),
                }, // wild write to 0xFFFF..0x0000 region
                Halt,
            ],
        );
        let _ = run(&mut mem, 100);
        // The wild word write straddles 0xFFFF (FRAM) and 0x0000
        // (unmapped): the reset vector's high byte is corrupted.
        assert_ne!(mem.peek_word(RESET_VECTOR), 0x4400);
        // After the next "reboot" the CPU vectors into garbage and faults.
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        let mut faulted = false;
        for _ in 0..1000 {
            cpu.step(&mut mem, &mut bus);
            if matches!(cpu.state(), CpuState::Faulted(_)) {
                faulted = true;
                break;
            }
            if matches!(cpu.state(), CpuState::Halted) {
                break;
            }
        }
        // Either it faults immediately or halts harmlessly; the key
        // persistent-corruption property is the vector change above.
        let _ = faulted;
    }

    #[test]
    fn shift_flags() {
        use Instr::*;
        let mut mem = Memory::new();
        load(
            &mut mem,
            0x4400,
            &[
                Movi {
                    rd: r(0),
                    imm: 0x8001,
                },
                Alui {
                    op: AluOp::Shl,
                    rd: r(0),
                    imm: 1,
                },
                Halt,
            ],
        );
        let cpu = run(&mut mem, 100);
        assert_eq!(cpu.regs[0], 0x0002);
        assert!(cpu.flags.c, "bit 15 shifted out into carry");
    }

    #[test]
    fn cycle_accounting_accumulates() {
        use Instr::*;
        let mut mem = Memory::new();
        load(&mut mem, 0x4400, &[Movi { rd: r(0), imm: 1 }, Nop, Halt]);
        let cpu = run(&mut mem, 10);
        assert_eq!(cpu.instructions, 3);
        assert_eq!(cpu.cycles, 2 + 1 + 1);
    }
}
