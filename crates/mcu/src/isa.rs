//! The IVM-16 instruction set: definition, binary encoding, decoding,
//! cycle costs, and textual form.
//!
//! # Encoding
//!
//! Every instruction is one or two 16-bit words. The first word packs four
//! nibbles `[op:4][a:4][b:4][c:4]`; instructions that carry an immediate,
//! offset, or target address place it in a second word.
//!
//! | op  | mnemonic form                 | a      | b    | c      | word 1 |
//! |-----|-------------------------------|--------|------|--------|--------|
//! | 0x0 | `nop/halt/ret/reti/ei/di`     | —      | —    | sub-op | —      |
//! | 0x1 | `mov rd, rs`                  | rd     | rs   | —      | —      |
//! | 0x2 | `movi rd, #imm`               | rd     | —    | —      | imm    |
//! | 0x3 | `ld rd, [rb + off]`           | rd     | rb   | —      | off    |
//! | 0x4 | `st [ra + off], rs`           | ra     | rs   | —      | off    |
//! | 0x5 | `ldb rd, [rb + off]`          | rd     | rb   | —      | off    |
//! | 0x6 | `stb [ra + off], rs`          | ra     | rs   | —      | off    |
//! | 0x7 | `<alu> rd, rs`                | rd     | rs   | alu-op | —      |
//! | 0x8 | `<alu>i rd, #imm`             | rd     | —    | alu-op | imm    |
//! | 0x9 | `cmp rd, rs` / `cmpi rd,#imm` | rd     | rs   | 0 / 1  | (imm)  |
//! | 0xA | `j<cond> target`              | —      | —    | cond   | target |
//! | 0xB | `call t` / `callr rb`/`jmpr`  | —      | rb   | 0/1/2  | (t)    |
//! | 0xC | `push rs` / `pop rd`          | rd/rs  | —    | 0 / 1  | —      |
//! | 0xD | `in rd, port`                 | rd     | —    | —      | port   |
//! | 0xE | `out port, rs`                | rs     | —    | —      | port   |
//!
//! Opcode `0xF` is reserved; executing it (or any malformed word) faults
//! the CPU until the next reboot — which is precisely what happens when a
//! wild pointer write corrupts the reset vector and the machine vectors
//! into garbage.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A register index `r0`–`r15`.
///
/// By software convention `r15` is the stack pointer (`sp`), used
/// implicitly by `push`, `pop`, `call`, `ret` and interrupt entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The stack pointer alias, `r15`.
    pub const SP: Reg = Reg(15);

    /// Creates a register from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Self {
        assert!(index < 16, "register index out of range: {index}");
        Reg(index)
    }

    /// The register index, 0–15.
    #[inline]
    pub fn index(self) -> usize {
        // Masked so the register-file access compiles without a bounds
        // check: the constructor and the decoder both guarantee < 16, but
        // that invariant is invisible once a `Reg` round-trips through the
        // decode cache.
        (self.0 & 15) as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 15 {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Arithmetic/logic operations available in register and immediate form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Shl = 5,
    Shr = 6,
    Sar = 7,
    Mul = 8,
    Adc = 9,
    Sbc = 10,
    Neg = 11,
    Not = 12,
}

impl AluOp {
    /// Decodes the 4-bit ALU sub-opcode.
    pub fn from_code(code: u8) -> Option<AluOp> {
        use AluOp::*;
        Some(match code {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Or,
            4 => Xor,
            5 => Shl,
            6 => Shr,
            7 => Sar,
            8 => Mul,
            9 => Adc,
            10 => Sbc,
            11 => Neg,
            12 => Not,
            _ => return None,
        })
    }

    /// Mnemonic stem (`add`, `sub`, ...).
    pub fn mnemonic(self) -> &'static str {
        use AluOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Sar => "sar",
            Mul => "mul",
            Adc => "adc",
            Sbc => "sbc",
            Neg => "neg",
            Not => "not",
        }
    }
}

/// Branch conditions for `j<cond>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Cond {
    /// Unconditional (`jmp`).
    Always = 0,
    /// Zero / equal (`jz`, `jeq`).
    Z = 1,
    /// Not zero / not equal (`jnz`, `jne`).
    Nz = 2,
    /// Carry set / unsigned ≥ (`jc`, `jhs`).
    C = 3,
    /// Carry clear / unsigned < (`jnc`, `jlo`).
    Nc = 4,
    /// Negative (`jn`).
    N = 5,
    /// Non-negative (`jnn`).
    Nn = 6,
    /// Signed ≥ (`jge`).
    Ge = 7,
    /// Signed < (`jl`).
    Lt = 8,
    /// Signed > (`jgt`).
    Gt = 9,
    /// Signed ≤ (`jle`).
    Le = 10,
}

impl Cond {
    /// Decodes the 4-bit condition code.
    pub fn from_code(code: u8) -> Option<Cond> {
        use Cond::*;
        Some(match code {
            0 => Always,
            1 => Z,
            2 => Nz,
            3 => C,
            4 => Nc,
            5 => N,
            6 => Nn,
            7 => Ge,
            8 => Lt,
            9 => Gt,
            10 => Le,
            _ => return None,
        })
    }

    /// Branch mnemonic (`jmp`, `jz`, ...).
    pub fn mnemonic(self) -> &'static str {
        use Cond::*;
        match self {
            Always => "jmp",
            Z => "jz",
            Nz => "jnz",
            C => "jc",
            Nc => "jnc",
            N => "jn",
            Nn => "jnn",
            Ge => "jge",
            Lt => "jl",
            Gt => "jgt",
            Le => "jle",
        }
    }
}

/// One decoded IVM-16 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the CPU until the next reset.
    Halt,
    /// Return from subroutine: `pc ← pop`.
    Ret,
    /// Return from interrupt: `flags+IE ← pop; pc ← pop`.
    Reti,
    /// Enable interrupts.
    Ei,
    /// Disable interrupts.
    Di,
    /// `rd ← rs`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd ← imm`.
    Movi {
        /// Destination register.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
    },
    /// `rd ← mem16[rb + off]`.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base register.
        rb: Reg,
        /// Byte offset added to the base.
        off: u16,
    },
    /// `mem16[ra + off] ← rs`.
    St {
        /// Base register.
        ra: Reg,
        /// Byte offset added to the base.
        off: u16,
        /// Source register.
        rs: Reg,
    },
    /// `rd ← zext(mem8[rb + off])`.
    Ldb {
        /// Destination register.
        rd: Reg,
        /// Base register.
        rb: Reg,
        /// Byte offset added to the base.
        off: u16,
    },
    /// `mem8[ra + off] ← low8(rs)`.
    Stb {
        /// Base register.
        ra: Reg,
        /// Byte offset added to the base.
        off: u16,
        /// Source register.
        rs: Reg,
    },
    /// `rd ← rd <op> rs` (for `Neg`/`Not`: `rd ← <op> rs`).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and usually first-operand) register.
        rd: Reg,
        /// Second-operand register.
        rs: Reg,
    },
    /// `rd ← rd <op> imm`.
    Alui {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
    },
    /// Compare registers: set flags from `rd − rs`.
    Cmp {
        /// Left-hand register.
        rd: Reg,
        /// Right-hand register.
        rs: Reg,
    },
    /// Compare with immediate: set flags from `rd − imm`.
    Cmpi {
        /// Left-hand register.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
    },
    /// Conditional (or unconditional) absolute jump.
    J {
        /// Condition.
        cond: Cond,
        /// Absolute target address.
        target: u16,
    },
    /// `push pc_next; pc ← target`.
    Call {
        /// Absolute target address.
        target: u16,
    },
    /// `push pc_next; pc ← rb` (indirect call).
    Callr {
        /// Register holding the target address.
        rb: Reg,
    },
    /// `pc ← rb` (indirect jump).
    Jmpr {
        /// Register holding the target address.
        rb: Reg,
    },
    /// `sp ← sp − 2; mem16[sp] ← rs`.
    Push {
        /// Source register.
        rs: Reg,
    },
    /// `rd ← mem16[sp]; sp ← sp + 2`.
    Pop {
        /// Destination register.
        rd: Reg,
    },
    /// `rd ← port[imm8]` — read a peripheral port.
    In {
        /// Destination register.
        rd: Reg,
        /// Port number.
        port: u8,
    },
    /// `port[imm8] ← rs` — write a peripheral port.
    Out {
        /// Port number.
        port: u8,
        /// Source register.
        rs: Reg,
    },
}

/// Why a word sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// The reserved opcode `0xF` or an undefined sub-opcode.
    IllegalOpcode {
        /// The offending first word.
        word: u16,
    },
    /// The instruction needs a second word but none was supplied.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::IllegalOpcode { word } => write!(f, "illegal opcode word {word:#06x}"),
            DecodeError::Truncated => write!(f, "truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn nibbles(word: u16) -> (u8, u8, u8, u8) {
    (
        (word >> 12) as u8,
        ((word >> 8) & 0xF) as u8,
        ((word >> 4) & 0xF) as u8,
        (word & 0xF) as u8,
    )
}

fn pack(op: u8, a: u8, b: u8, c: u8) -> u16 {
    ((op as u16) << 12) | ((a as u16) << 8) | ((b as u16) << 4) | c as u16
}

impl Instr {
    /// Encodes the instruction into one or two words.
    pub fn encode(self) -> (u16, Option<u16>) {
        use Instr::*;
        match self {
            Nop => (pack(0x0, 0, 0, 0), None),
            Halt => (pack(0x0, 0, 0, 1), None),
            Ret => (pack(0x0, 0, 0, 2), None),
            Reti => (pack(0x0, 0, 0, 3), None),
            Ei => (pack(0x0, 0, 0, 4), None),
            Di => (pack(0x0, 0, 0, 5), None),
            Mov { rd, rs } => (pack(0x1, rd.0, rs.0, 0), None),
            Movi { rd, imm } => (pack(0x2, rd.0, 0, 0), Some(imm)),
            Ld { rd, rb, off } => (pack(0x3, rd.0, rb.0, 0), Some(off)),
            St { ra, off, rs } => (pack(0x4, ra.0, rs.0, 0), Some(off)),
            Ldb { rd, rb, off } => (pack(0x5, rd.0, rb.0, 0), Some(off)),
            Stb { ra, off, rs } => (pack(0x6, ra.0, rs.0, 0), Some(off)),
            Alu { op, rd, rs } => (pack(0x7, rd.0, rs.0, op as u8), None),
            Alui { op, rd, imm } => (pack(0x8, rd.0, 0, op as u8), Some(imm)),
            Cmp { rd, rs } => (pack(0x9, rd.0, rs.0, 0), None),
            Cmpi { rd, imm } => (pack(0x9, rd.0, 0, 1), Some(imm)),
            J { cond, target } => (pack(0xA, 0, 0, cond as u8), Some(target)),
            Call { target } => (pack(0xB, 0, 0, 0), Some(target)),
            Callr { rb } => (pack(0xB, 0, rb.0, 1), None),
            Jmpr { rb } => (pack(0xB, 0, rb.0, 2), None),
            Push { rs } => (pack(0xC, rs.0, 0, 0), None),
            Pop { rd } => (pack(0xC, rd.0, 0, 1), None),
            In { rd, port } => (pack(0xD, rd.0, 0, 0), Some(port as u16)),
            Out { port, rs } => (pack(0xE, rs.0, 0, 0), Some(port as u16)),
        }
    }

    /// Decodes an instruction from its first word and an optional
    /// following word (`fetch_next` is only consulted when needed).
    ///
    /// Returns the instruction and its size in words.
    ///
    /// # Errors
    ///
    /// [`DecodeError::IllegalOpcode`] for reserved encodings;
    /// [`DecodeError::Truncated`] when a required second word is absent.
    pub fn decode(word0: u16, word1: Option<u16>) -> Result<(Instr, u8), DecodeError> {
        use Instr::*;
        let (op, a, b, c) = nibbles(word0);
        let ra = Reg(a);
        let rb = Reg(b);
        let need = |w: Option<u16>| w.ok_or(DecodeError::Truncated);
        let ill = DecodeError::IllegalOpcode { word: word0 };
        Ok(match op {
            0x0 => (
                match c {
                    0 => Nop,
                    1 => Halt,
                    2 => Ret,
                    3 => Reti,
                    4 => Ei,
                    5 => Di,
                    _ => return Err(ill),
                },
                1,
            ),
            0x1 => (Mov { rd: ra, rs: rb }, 1),
            0x2 => (
                Movi {
                    rd: ra,
                    imm: need(word1)?,
                },
                2,
            ),
            0x3 => (
                Ld {
                    rd: ra,
                    rb,
                    off: need(word1)?,
                },
                2,
            ),
            0x4 => (
                St {
                    ra,
                    off: need(word1)?,
                    rs: rb,
                },
                2,
            ),
            0x5 => (
                Ldb {
                    rd: ra,
                    rb,
                    off: need(word1)?,
                },
                2,
            ),
            0x6 => (
                Stb {
                    ra,
                    off: need(word1)?,
                    rs: rb,
                },
                2,
            ),
            0x7 => (
                Alu {
                    op: AluOp::from_code(c).ok_or(ill)?,
                    rd: ra,
                    rs: rb,
                },
                1,
            ),
            0x8 => (
                Alui {
                    op: AluOp::from_code(c).ok_or(ill)?,
                    rd: ra,
                    imm: need(word1)?,
                },
                2,
            ),
            0x9 => match c {
                0 => (Cmp { rd: ra, rs: rb }, 1),
                1 => (
                    Cmpi {
                        rd: ra,
                        imm: need(word1)?,
                    },
                    2,
                ),
                _ => return Err(ill),
            },
            0xA => (
                J {
                    cond: Cond::from_code(c).ok_or(ill)?,
                    target: need(word1)?,
                },
                2,
            ),
            0xB => match c {
                0 => (
                    Call {
                        target: need(word1)?,
                    },
                    2,
                ),
                1 => (Callr { rb }, 1),
                2 => (Jmpr { rb }, 1),
                _ => return Err(ill),
            },
            0xC => match c {
                0 => (Push { rs: ra }, 1),
                1 => (Pop { rd: ra }, 1),
                _ => return Err(ill),
            },
            0xD => (
                In {
                    rd: ra,
                    port: (need(word1)? & 0xFF) as u8,
                },
                2,
            ),
            0xE => (
                Out {
                    port: (need(word1)? & 0xFF) as u8,
                    rs: ra,
                },
                2,
            ),
            _ => return Err(ill),
        })
    }

    /// Size of the instruction in 16-bit words (1 or 2).
    pub fn size_words(self) -> u8 {
        match self.encode() {
            (_, None) => 1,
            (_, Some(_)) => 2,
        }
    }

    /// Clock cycles consumed by the instruction, in the spirit of MSP430
    /// timing: memory accesses and flow control cost more; `mul` is a
    /// multi-cycle operation.
    pub fn cycles(self) -> u32 {
        use Instr::*;
        match self {
            Nop | Halt | Ei | Di => 1,
            Mov { .. } => 1,
            Movi { .. } => 2,
            Ld { .. } | St { .. } | Ldb { .. } | Stb { .. } => 3,
            Alu { op: AluOp::Mul, .. } => 8,
            Alu { .. } => 1,
            Alui { op: AluOp::Mul, .. } => 9,
            Alui { .. } => 2,
            Cmp { .. } => 1,
            Cmpi { .. } => 2,
            J { .. } => 2,
            Call { .. } => 4,
            Callr { .. } | Jmpr { .. } => 3,
            Ret => 3,
            Reti => 5,
            Push { .. } => 3,
            Pop { .. } => 2,
            In { .. } | Out { .. } => 2,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Ret => write!(f, "ret"),
            Reti => write!(f, "reti"),
            Ei => write!(f, "ei"),
            Di => write!(f, "di"),
            Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Movi { rd, imm } => write!(f, "movi {rd}, {imm:#x}"),
            Ld { rd, rb, off } => write!(f, "ld {rd}, [{rb} + {off:#x}]"),
            St { ra, off, rs } => write!(f, "st [{ra} + {off:#x}], {rs}"),
            Ldb { rd, rb, off } => write!(f, "ldb {rd}, [{rb} + {off:#x}]"),
            Stb { ra, off, rs } => write!(f, "stb [{ra} + {off:#x}], {rs}"),
            Alu { op, rd, rs } => write!(f, "{} {rd}, {rs}", op.mnemonic()),
            Alui { op, rd, imm } => write!(f, "{}i {rd}, {imm:#x}", op.mnemonic()),
            Cmp { rd, rs } => write!(f, "cmp {rd}, {rs}"),
            Cmpi { rd, imm } => write!(f, "cmpi {rd}, {imm:#x}"),
            J { cond, target } => write!(f, "{} {target:#06x}", cond.mnemonic()),
            Call { target } => write!(f, "call {target:#06x}"),
            Callr { rb } => write!(f, "callr {rb}"),
            Jmpr { rb } => write!(f, "jmpr {rb}"),
            Push { rs } => write!(f, "push {rs}"),
            Pop { rd } => write!(f, "pop {rd}"),
            In { rd, port } => write!(f, "in {rd}, {port:#04x}"),
            Out { port, rs } => write!(f, "out {port:#04x}, {rs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use Instr::*;
        let r = Reg::new;
        vec![
            Nop,
            Halt,
            Ret,
            Reti,
            Ei,
            Di,
            Mov { rd: r(1), rs: r(2) },
            Movi {
                rd: r(3),
                imm: 0xBEEF,
            },
            Ld {
                rd: r(4),
                rb: r(5),
                off: 0x10,
            },
            St {
                ra: r(6),
                off: 0x20,
                rs: r(7),
            },
            Ldb {
                rd: r(8),
                rb: r(9),
                off: 1,
            },
            Stb {
                ra: r(10),
                off: 2,
                rs: r(11),
            },
            Alu {
                op: AluOp::Add,
                rd: r(0),
                rs: r(1),
            },
            Alu {
                op: AluOp::Mul,
                rd: r(2),
                rs: r(3),
            },
            Alui {
                op: AluOp::Xor,
                rd: r(4),
                imm: 0x5555,
            },
            Cmp { rd: r(5), rs: r(6) },
            Cmpi {
                rd: r(7),
                imm: 1234,
            },
            J {
                cond: Cond::Nz,
                target: 0x4400,
            },
            Call { target: 0x5000 },
            Callr { rb: r(3) },
            Jmpr { rb: r(4) },
            Push { rs: r(12) },
            Pop { rd: r(13) },
            In { rd: r(1), port: 7 },
            Out { port: 9, rs: r(2) },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for instr in all_sample_instrs() {
            let (w0, w1) = instr.encode();
            let (decoded, size) = Instr::decode(w0, w1).expect("decodes");
            assert_eq!(decoded, instr, "round trip failed for {instr}");
            assert_eq!(size, instr.size_words());
            assert_eq!(size == 2, w1.is_some());
        }
    }

    #[test]
    fn reserved_opcode_is_illegal() {
        assert!(matches!(
            Instr::decode(0xF000, Some(0)),
            Err(DecodeError::IllegalOpcode { .. })
        ));
    }

    #[test]
    fn truncated_immediate_errors() {
        let (w0, _) = Instr::Movi {
            rd: Reg::new(0),
            imm: 1,
        }
        .encode();
        assert_eq!(Instr::decode(w0, None), Err(DecodeError::Truncated));
    }

    #[test]
    fn undefined_sys_subop_is_illegal() {
        assert!(Instr::decode(pack(0x0, 0, 0, 9), None).is_err());
    }

    #[test]
    fn cycle_costs_are_positive_and_mul_is_slow() {
        for instr in all_sample_instrs() {
            assert!(instr.cycles() >= 1);
        }
        assert!(
            Instr::Alu {
                op: AluOp::Mul,
                rd: Reg::new(0),
                rs: Reg::new(1)
            }
            .cycles()
                > Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg::new(0),
                    rs: Reg::new(1)
                }
                .cycles()
        );
    }

    #[test]
    fn display_forms_are_parsable_mnemonics() {
        assert_eq!(
            format!(
                "{}",
                Instr::Ld {
                    rd: Reg::new(2),
                    rb: Reg::new(15),
                    off: 4
                }
            ),
            "ld r2, [sp + 0x4]"
        );
        assert_eq!(format!("{}", Instr::Halt), "halt");
    }

    #[test]
    fn sp_is_r15() {
        assert_eq!(Reg::SP, Reg::new(15));
        assert_eq!(format!("{}", Reg::SP), "sp");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_index_validated() {
        let _ = Reg::new(16);
    }
}
