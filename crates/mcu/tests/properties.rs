//! Property-based tests for the processor substrate.

use edb_mcu::asm::{assemble, disassemble};
use edb_mcu::{AluOp, Cond, Cpu, Instr, Memory, NullBus, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
        Just(AluOp::Mul),
        Just(AluOp::Adc),
        Just(AluOp::Sbc),
        Just(AluOp::Neg),
        Just(AluOp::Not),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Always),
        Just(Cond::Z),
        Just(Cond::Nz),
        Just(Cond::C),
        Just(Cond::Nc),
        Just(Cond::N),
        Just(Cond::Nn),
        Just(Cond::Ge),
        Just(Cond::Lt),
        Just(Cond::Gt),
        Just(Cond::Le),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        Just(Instr::Reti),
        Just(Instr::Ei),
        Just(Instr::Di),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Movi { rd, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rd, rb, off)| Instr::Ld { rd, rb, off }),
        (arb_reg(), any::<u16>(), arb_reg()).prop_map(|(ra, off, rs)| Instr::St { ra, off, rs }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rd, rb, off)| Instr::Ldb { rd, rb, off }),
        (arb_reg(), any::<u16>(), arb_reg()).prop_map(|(ra, off, rs)| Instr::Stb { ra, off, rs }),
        (arb_alu_op(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs)| Instr::Alu { op, rd, rs }),
        (arb_alu_op(), arb_reg(), any::<u16>()).prop_map(|(op, rd, imm)| Instr::Alui {
            op,
            rd,
            imm
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Cmp { rd, rs }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Cmpi { rd, imm }),
        (arb_cond(), any::<u16>()).prop_map(|(cond, target)| Instr::J { cond, target }),
        any::<u16>().prop_map(|target| Instr::Call { target }),
        arb_reg().prop_map(|rb| Instr::Callr { rb }),
        arb_reg().prop_map(|rb| Instr::Jmpr { rb }),
        arb_reg().prop_map(|rs| Instr::Push { rs }),
        arb_reg().prop_map(|rd| Instr::Pop { rd }),
        (arb_reg(), any::<u8>()).prop_map(|(rd, port)| Instr::In { rd, port }),
        (any::<u8>(), arb_reg()).prop_map(|(port, rs)| Instr::Out { port, rs }),
    ]
}

proptest! {
    /// Binary encode → decode is the identity for every instruction.
    #[test]
    fn encode_decode_identity(instr in arb_instr()) {
        let (w0, w1) = instr.encode();
        let (decoded, size) = Instr::decode(w0, w1).expect("round trip decodes");
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(size, instr.size_words());
    }

    /// Display → assemble → disassemble reproduces the mnemonic text for
    /// instructions that round-trip textually (all of them, by
    /// construction of `Display`).
    #[test]
    fn text_round_trip(instrs in prop::collection::vec(arb_instr(), 1..20)) {
        let mut src = String::from(".org 0x4400\n");
        for i in &instrs {
            src.push_str(&format!("    {i}\n"));
        }
        let image = assemble(&src).expect("display form assembles");
        let (addr, bytes) = &image.segments()[0];
        let listing = disassemble(bytes, *addr);
        prop_assert_eq!(listing.len(), instrs.len());
        for ((_, text), orig) in listing.iter().zip(&instrs) {
            prop_assert_eq!(text.clone(), orig.to_string());
        }
    }

    /// ALU reference semantics: the interpreter's add/sub/mul agree with
    /// wrapping integer arithmetic for arbitrary inputs.
    #[test]
    fn alu_matches_reference(a in any::<u16>(), b in any::<u16>()) {
        let cases = [
            (AluOp::Add, a.wrapping_add(b)),
            (AluOp::Sub, a.wrapping_sub(b)),
            (AluOp::And, a & b),
            (AluOp::Or, a | b),
            (AluOp::Xor, a ^ b),
            (AluOp::Mul, a.wrapping_mul(b)),
        ];
        for (op, expected) in cases {
            let src = format!(
                ".org 0x4400\ns: movi r0, {a}\n movi r1, {b}\n {} r0, r1\n halt\n.org 0xFFFE\n.word s\n",
                op.mnemonic()
            );
            let image = assemble(&src).expect("assembles");
            let mut mem = Memory::new();
            image.load_into(&mut mem);
            let mut cpu = Cpu::new();
            cpu.reset(&mem);
            let mut bus = NullBus;
            for _ in 0..10 {
                if !cpu.is_running() { break; }
                cpu.step(&mut mem, &mut bus);
            }
            prop_assert_eq!(cpu.regs[0], expected, "op {}", op.mnemonic());
        }
    }

    /// Signed comparison branches agree with Rust's `i16` ordering.
    #[test]
    fn signed_compare_matches_i16(a in any::<i16>(), b in any::<i16>()) {
        let src = format!(
            ".org 0x4400\ns: movi r0, {ua}\n movi r1, {ub}\n cmp r0, r1\n jl less\n movi r2, 0\n halt\nless: movi r2, 1\n halt\n.org 0xFFFE\n.word s\n",
            ua = a as u16,
            ub = b as u16,
        );
        let image = assemble(&src).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        for _ in 0..20 {
            if !cpu.is_running() { break; }
            cpu.step(&mut mem, &mut bus);
        }
        prop_assert_eq!(cpu.regs[2] == 1, a < b, "{} < {}", a, b);
    }

    /// Unsigned comparison branches agree with Rust's `u16` ordering.
    #[test]
    fn unsigned_compare_matches_u16(a in any::<u16>(), b in any::<u16>()) {
        let src = format!(
            ".org 0x4400\ns: movi r0, {a}\n movi r1, {b}\n cmp r0, r1\n jlo less\n movi r2, 0\n halt\nless: movi r2, 1\n halt\n.org 0xFFFE\n.word s\n",
        );
        let image = assemble(&src).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        for _ in 0..20 {
            if !cpu.is_running() { break; }
            cpu.step(&mut mem, &mut bus);
        }
        prop_assert_eq!(cpu.regs[2] == 1, a < b, "{} < {}", a, b);
    }

    /// Memory power-cycling erases all of SRAM and nothing in FRAM, for
    /// arbitrary write patterns.
    #[test]
    fn power_cycle_respects_volatility(
        writes in prop::collection::vec((any::<u16>(), any::<u16>()), 1..100)
    ) {
        let mut mem = Memory::new();
        let mut fram_shadow: Vec<(u16, u16)> = Vec::new();
        for (addr, value) in &writes {
            mem.write_word(*addr, *value);
            if Memory::is_fram(*addr) && Memory::is_fram(addr.wrapping_add(1)) {
                fram_shadow.retain(|(a, _)| a != addr);
                fram_shadow.push((*addr, *value));
            }
        }
        mem.power_cycle();
        for a in edb_mcu::SRAM_START..edb_mcu::SRAM_END {
            prop_assert_eq!(mem.peek_byte(a), 0);
        }
        // Last-writer-wins shadow check, skipping addresses later
        // overlapped by other writes (word writes span two bytes).
        for (addr, value) in fram_shadow {
            let overlapped = writes.iter().rev()
                .take_while(|(a, v)| !(a == &addr && v == &value))
                .any(|(a, _)| {
                    let d = a.wrapping_sub(addr);
                    d == 1 || d == 0xFFFF
                });
            if !overlapped {
                prop_assert_eq!(mem.peek_word(addr), value);
            }
        }
    }

    /// The assembler is total: arbitrary line soup either assembles or
    /// returns a line-numbered error — it never panics.
    #[test]
    fn assembler_total_on_garbage(
        lines in prop::collection::vec("[ -~]{0,40}", 0..30)
    ) {
        let src = lines.join("\n");
        match assemble(&src) {
            Ok(image) => {
                // Anything that assembles must also load cleanly.
                let mut mem = Memory::new();
                let in_bounds = image.segments().iter().all(|(start, bytes)| {
                    bytes.iter().enumerate().all(|(i, _)| {
                        Memory::is_mapped(start.wrapping_add(i as u16))
                    })
                });
                if in_bounds {
                    image.load_into(&mut mem);
                }
            }
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    /// Structured-but-random instruction text always assembles, loads,
    /// and disassembles to the same mnemonics.
    #[test]
    fn random_valid_text_round_trips(
        ops in prop::collection::vec((0u8..4, 0u8..14, 0u8..14, 0u16..0x100), 1..25)
    ) {
        let mut src = String::from(".org 0x4400\n");
        for (kind, a, b, imm) in ops {
            let line = match kind {
                0 => format!("add r{a}, r{b}"),
                1 => format!("movi r{a}, {imm}"),
                2 => format!("ld r{a}, [r{b} + {imm}]"),
                _ => format!("st [r{a} + {imm}], r{b}"),
            };
            src.push_str(&line);
            src.push('\n');
        }
        let image = assemble(&src).expect("valid text assembles");
        let (addr, bytes) = &image.segments()[0];
        let listing = disassemble(bytes, *addr);
        prop_assert!(!listing.is_empty());
        let reassembled = assemble(&format!(
            ".org 0x4400\n{}",
            listing.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>().join("\n")
        )).expect("disassembly reassembles");
        prop_assert_eq!(reassembled.segments()[0].1.clone(), bytes.clone());
    }

    /// Full assembler round trip through a *loaded memory*: assemble →
    /// load image → read the bytes back off the bus → disassemble →
    /// reassemble must reproduce the identical image. This pins the
    /// loader and the peek path into the loop, not just the encoder.
    #[test]
    fn assemble_load_disassemble_reassemble_identity(
        instrs in prop::collection::vec(arb_instr(), 1..30)
    ) {
        let mut src = String::from(".org 0x4400\n");
        for i in &instrs {
            src.push_str(&format!("    {i}\n"));
        }
        let image = assemble(&src).expect("display form assembles");
        let (base, bytes) = &image.segments()[0];

        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let from_mem: Vec<u8> = (0..bytes.len() as u16)
            .map(|i| mem.peek_byte(base.wrapping_add(i)))
            .collect();
        prop_assert_eq!(&from_mem, bytes, "loader must be byte-faithful");

        let listing = disassemble(&from_mem, *base);
        let relisted = format!(
            ".org 0x4400\n{}",
            listing.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>().join("\n")
        );
        let image2 = assemble(&relisted).expect("disassembly reassembles");
        prop_assert_eq!(image2.segments()[0].1.clone(), bytes.clone());
    }

    /// The CPU never spontaneously un-halts: once halted or faulted it
    /// stays that way through arbitrary further stepping (only reset
    /// revives it).
    #[test]
    fn halt_is_sticky(extra_steps in 1usize..50) {
        let image = assemble(".org 0x4400\ns: halt\n.org 0xFFFE\n.word s\n").expect("ok");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.reset(&mem);
        let mut bus = NullBus;
        cpu.step(&mut mem, &mut bus);
        prop_assert!(!cpu.is_running());
        let insns = cpu.instructions;
        for _ in 0..extra_steps {
            let out = cpu.step(&mut mem, &mut bus);
            prop_assert_eq!(out.cycles, 0);
        }
        prop_assert_eq!(cpu.instructions, insns);
    }
}
