//! Property-based tests for the RFID substrate.

use edb_rfid::crc::{crc16, crc5};
use edb_rfid::{Channel, Command, DecodeFailure, Frame, Reader, ReaderConfig, TagReply};
use proptest::prelude::*;

proptest! {
    /// Every command encodes to bytes that decode back to itself.
    #[test]
    fn command_round_trip(q in 0u8..16, session in 0u8..16, rn in any::<u16>()) {
        for cmd in [
            Command::Query { q, session },
            Command::QueryRep { session },
            Command::Ack { rn },
        ] {
            prop_assert_eq!(Command::decode(&cmd.encode()), Ok(cmd));
        }
    }

    /// Every reply encodes to bytes that decode back to itself.
    #[test]
    fn reply_round_trip(rn in any::<u16>(), epc in any::<[u8; 12]>()) {
        for reply in [TagReply::Rn16 { rn }, TagReply::Epc { epc }] {
            prop_assert_eq!(TagReply::decode(&reply.encode()), Ok(reply));
        }
    }

    /// Any single bit flip in a command frame is detected (CRC-5 has
    /// Hamming distance ≥ 2 over these short frames).
    #[test]
    fn single_flip_never_passes_command_crc(
        q in 0u8..16,
        session in 0u8..16,
        byte_idx in 0usize..3,
        bit in 0u8..8,
    ) {
        let cmd = Command::Query { q, session };
        let mut bytes = cmd.encode();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        // Either the CRC catches it, or the type byte changed to garbage.
        prop_assert_ne!(Command::decode(&bytes), Ok(cmd));
    }

    /// Any single bit flip in a reply frame is detected.
    #[test]
    fn single_flip_never_passes_reply_crc(
        epc in any::<[u8; 12]>(),
        byte_idx in 0usize..15,
        bit in 0u8..8,
    ) {
        let reply = TagReply::Epc { epc };
        let mut bytes = reply.encode();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert_ne!(TagReply::decode(&bytes), Ok(reply));
    }

    /// CRC-16 linearity sanity: crc(x) == crc(y) iff their difference is
    /// in the code — for random unequal short messages expect inequality
    /// nearly always; we only assert determinism here.
    #[test]
    fn crcs_are_deterministic(data in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(crc16(&data), crc16(&data));
        prop_assert_eq!(crc5(&data), crc5(&data));
        prop_assert!(crc5(&data) < 32);
    }

    /// The channel at BER 0 is the identity; at any BER the frame length
    /// is preserved.
    #[test]
    fn channel_preserves_length(seed in any::<u64>(), ber in 0.0f64..0.4) {
        let mut ch = Channel::new(seed);
        ch.set_ber(ber);
        let frame = Frame::reply(TagReply::Epc { epc: [0xAB; 12] });
        let out = ch.transmit(frame.clone());
        prop_assert_eq!(out.bytes.len(), frame.bytes.len());
        prop_assert_eq!(out.downlink, frame.downlink);
    }

    /// Corrupted frames either fail CRC or (vanishingly) alias to another
    /// valid frame — they never panic the decoder.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = Command::decode(&bytes);
        let _ = TagReply::decode(&bytes);
        // Reaching here without panic is the property.
    }

    /// The reader emits exactly `1 + reps_per_round` commands per round,
    /// all within one query period.
    #[test]
    fn reader_round_structure(reps in 1u32..6) {
        let base = ReaderConfig::paper_setup();
        let cfg = ReaderConfig {
            reps_per_round: reps,
            // Keep the round strictly inside the query period.
            query_period: edb_energy::SimTime::from_ns(
                base.rep_gap.as_ns() * (reps as u64 + 2),
            ),
            ..base
        };
        let mut r = Reader::new(cfg);
        let mut count_round1 = 0;
        let mut t = edb_energy::SimTime::ZERO;
        let end = cfg.query_period;
        while t < end {
            if let Some(ev) = r.poll(t) {
                if ev.start < end {
                    count_round1 += 1;
                }
            }
            t = t.advance_ns(500_000);
        }
        prop_assert_eq!(count_round1, 1 + reps as usize);
    }
}

#[test]
fn garbage_decode_is_an_error_not_a_panic() {
    assert_eq!(Command::decode(&[0x51]), Err(DecodeFailure::BadLength));
}
