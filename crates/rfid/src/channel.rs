//! The RF channel: corruption in flight.
//!
//! §5.3.4 of the paper: "A decoder is necessary to separate messages that
//! were corrupted in flight from valid messages that the target
//! application failed to parse." This module is where the corruption
//! happens — a seeded, distance-scaled bit-flip model applied to frames
//! as they cross the air gap.

use crate::message::Frame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A lossy byte-oriented channel between the reader and the tag.
///
/// Each bit of a transiting frame flips independently with probability
/// `ber(distance)`, where the bit error rate grows quadratically with
/// distance from a floor at the reference distance. Deterministic for a
/// given seed.
///
/// # Example
///
/// ```
/// use edb_rfid::{Channel, Command, Frame};
/// let mut ch = Channel::new(42);
/// let frame = ch.transmit(Frame::command(Command::Query { q: 0, session: 0 }));
/// // At the default 1 m the frame almost always survives intact.
/// assert_eq!(frame.bytes.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    rng: StdRng,
    distance_m: f64,
    ber_at_ref: f64,
    ref_distance_m: f64,
    frames_sent: u64,
    bits_flipped: u64,
}

impl Channel {
    /// Creates a channel at the paper's 1 m setup with a low residual bit
    /// error rate (≈2×10⁻⁴ per bit, so a few percent of frames take a
    /// hit — consistent with the paper's 86 % response rate having
    /// corruption as a minor contributor).
    pub fn new(seed: u64) -> Self {
        Channel {
            rng: StdRng::seed_from_u64(seed),
            distance_m: 1.0,
            ber_at_ref: 2e-4,
            ref_distance_m: 1.0,
            frames_sent: 0,
            bits_flipped: 0,
        }
    }

    /// Sets the tag-to-reader distance (meters); BER scales as `d²`.
    ///
    /// # Panics
    ///
    /// Panics if `meters` is not strictly positive.
    pub fn set_distance(&mut self, meters: f64) {
        assert!(meters > 0.0, "distance must be positive");
        self.distance_m = meters;
    }

    /// Overrides the bit error rate at the reference distance.
    pub fn set_ber(&mut self, ber: f64) {
        self.ber_at_ref = ber.clamp(0.0, 1.0);
    }

    /// The present per-bit flip probability.
    pub fn ber(&self) -> f64 {
        let scale = (self.distance_m / self.ref_distance_m).powi(2);
        (self.ber_at_ref * scale).clamp(0.0, 0.5)
    }

    /// Passes a frame through the channel, possibly flipping bits.
    pub fn transmit(&mut self, mut frame: Frame) -> Frame {
        self.frames_sent += 1;
        let ber = self.ber();
        if ber > 0.0 {
            for byte in &mut frame.bytes {
                for bit in 0..8 {
                    if self.rng.gen_bool(ber) {
                        *byte ^= 1 << bit;
                        self.bits_flipped += 1;
                    }
                }
            }
        }
        frame
    }

    /// Total frames that have crossed the channel.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total bits flipped so far.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Command, DecodeFailure};

    #[test]
    fn zero_ber_is_lossless() {
        let mut ch = Channel::new(1);
        ch.set_ber(0.0);
        for _ in 0..100 {
            let f = ch.transmit(Frame::command(Command::Query { q: 0, session: 0 }));
            assert_eq!(f.describe(), Ok("CMD_QUERY"));
        }
        assert_eq!(ch.bits_flipped(), 0);
    }

    #[test]
    fn high_ber_corrupts_frames() {
        let mut ch = Channel::new(2);
        ch.set_ber(0.2);
        let mut corrupted = 0;
        let mut crc_failures = 0;
        for _ in 0..200 {
            let f = ch.transmit(Frame::command(Command::Query { q: 0, session: 0 }));
            match f.describe() {
                Err(DecodeFailure::BadCrc) => {
                    corrupted += 1;
                    crc_failures += 1;
                }
                Err(_) => corrupted += 1,
                Ok(_) => {}
            }
        }
        assert!(corrupted > 150, "only {corrupted} corrupted at BER 0.2");
        assert!(
            crc_failures > 0,
            "some corruption must survive the type byte"
        );
        assert!(ch.bits_flipped() > 0);
    }

    #[test]
    fn ber_scales_with_distance() {
        let mut ch = Channel::new(3);
        let near = ch.ber();
        ch.set_distance(3.0);
        assert!((ch.ber() - near * 9.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Channel::new(7);
        let mut b = Channel::new(7);
        a.set_ber(0.05);
        b.set_ber(0.05);
        for _ in 0..50 {
            let fa = a.transmit(Frame::command(Command::Ack { rn: 99 }));
            let fb = b.transmit(Frame::command(Command::Ack { rn: 99 }));
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn ber_is_capped() {
        let mut ch = Channel::new(4);
        ch.set_distance(1000.0);
        assert!(ch.ber() <= 0.5);
    }
}
