//! The EPC Gen2 CRCs.
//!
//! Commands carry a CRC-5 (polynomial x⁵+x³+1, preset `0b01001`); tag
//! replies carry the CCITT CRC-16 (polynomial 0x1021, preset 0xFFFF,
//! result complemented), matching the EPC UHF Class-1 Gen-2 specification
//! closely enough that both ends — target firmware written in VM assembly
//! and EDB's host-side monitor — compute the same checks the real WISP
//! firmware performs.

/// Computes the Gen2 CRC-5 over `bits.len()*8` bits of `bytes`.
///
/// # Example
///
/// ```
/// use edb_rfid::crc::crc5;
/// let c = crc5(&[0x80, 0x40]);
/// assert!(c < 32);
/// ```
pub fn crc5(bytes: &[u8]) -> u8 {
    let mut crc: u8 = 0b01001; // Gen2 preset
    for &byte in bytes {
        for bit in (0..8).rev() {
            let input = (byte >> bit) & 1;
            let msb = (crc >> 4) & 1;
            crc = (crc << 1) & 0x1F;
            if input ^ msb == 1 {
                crc ^= 0b01001; // x^5 + x^3 + 1 → taps at bits 3 and 0
            }
        }
    }
    crc & 0x1F
}

/// Computes the Gen2/CCITT CRC-16 (poly 0x1021, init 0xFFFF, output
/// complemented) over `bytes`.
///
/// # Example
///
/// ```
/// use edb_rfid::crc::crc16;
/// // Appending a frame's CRC-16 (little-endian complemented form checks
/// // via recomputation, not via the residue trick).
/// let payload = [0x30, 0x00, 0x11, 0x22];
/// let c = crc16(&payload);
/// assert_eq!(c, crc16(&payload));
/// ```
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in bytes {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc5_is_five_bits() {
        for seed in 0..=255u8 {
            assert!(crc5(&[seed, seed ^ 0x5A]) < 32);
        }
    }

    #[test]
    fn crc5_detects_single_bit_flips() {
        let data = [0xA5, 0x3C];
        let good = crc5(&data);
        for byte in 0..2 {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc5(&bad), good, "flip {byte}/{bit} undetected");
            }
        }
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        let data = [0x12, 0x34, 0x56, 0x78, 0x9A];
        let good = crc16(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc16(&bad), good);
            }
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CCITT-FALSE of "123456789" is 0x29B1; complemented → 0xD64E.
        assert_eq!(crc16(b"123456789"), !0x29B1);
    }

    #[test]
    fn crc16_empty_is_complement_of_preset() {
        assert_eq!(crc16(&[]), !0xFFFF);
    }

    #[test]
    fn crc5_empty_is_the_preset() {
        // Zero payload bits shift nothing through the register: the
        // Gen2 preset comes back unchanged (and within 5 bits).
        assert_eq!(crc5(&[]), 0b01001);
    }

    #[test]
    fn crc16_detects_flips_in_a_max_length_epc_body() {
        // The longest Gen2 body we frame: type byte + 96-bit EPC.
        let mut body = [0u8; 13];
        body[0] = 0xA2;
        for (i, b) in body.iter_mut().enumerate().skip(1) {
            *b = (i as u8).wrapping_mul(0x1F) ^ 0xA5;
        }
        let good = crc16(&body);
        for byte in 0..body.len() {
            for bit in 0..8 {
                let mut bad = body;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc16(&bad), good, "flip {byte}/{bit} undetected");
            }
        }
    }
}
