//! Gen2 slotted-ALOHA inventory with Q-slot collision arbitration.
//!
//! The single-tag [`Reader`](crate::Reader) broadcasts `Query{q: 0}` on
//! a fixed cadence — with one tag there is nothing to arbitrate. A
//! *fleet* sharing one carrier needs the real Gen2 mechanism: the
//! reader opens a round of `2^q` slots, every tag draws a random slot
//! counter, and each `QueryRep` advances the round by one slot. A slot
//! with exactly one replier completes the RN16 → `Ack` → EPC handshake;
//! a slot where several tags backscatter at once is a *collision* — the
//! reader hears garble and no EPC is read; an unclaimed slot is *empty*.
//!
//! The reader adapts `q` with the classic floating-point Q algorithm
//! (Schoute-style): collisions push `q_fp` up by `c`, empties pull it
//! down by `c`, singles leave it alone. When `round(q_fp)` drifts off
//! the round's `q`, the reader cuts the round short with a
//! [`QueryAdjust`](crate::Command::QueryAdjust) so the fleet redraws
//! under the new slot count. At steady state `q` hovers near
//! `log2(population)`, where the single-slot rate peaks — the
//! convergence the `q_converges_under_collision_storm` test pins.
//!
//! This module is pure protocol: slot outcomes come *in* from the
//! energy/tag layer (`edb-core::fleet` binds the two), command frames
//! and timing come *out*. Everything is deterministic — the reader
//! holds no RNG at all; randomness lives in the per-tag streams.

use crate::message::Command;
use edb_energy::SimTime;
use serde::{Deserialize, Serialize};

/// What the reader heard in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// Nobody backscattered; the slot timed out.
    Empty,
    /// Exactly one tag replied and the full EPC handshake succeeded.
    Single,
    /// Exactly one tag replied but the reply arrived corrupt — the
    /// reader hears garble it cannot ACK, indistinguishable from a
    /// collision at the Q algorithm.
    Corrupt,
    /// Two or more tags backscattered on top of each other: no EPC.
    Collision,
}

/// Parameters of the floating-point Q algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QParams {
    /// Initial slot-count exponent.
    pub q0: u8,
    /// Step applied to `q_fp` per collision (up) or empty slot (down).
    /// The standard recommends `0.1 ≤ c ≤ 0.5`.
    pub c: f64,
    /// Lower clamp on `q`.
    pub q_min: u8,
    /// Upper clamp on `q` (15 is the Gen2 field width).
    pub q_max: u8,
}

impl QParams {
    /// A mid-range starting point (`q0 = 4`, `c = 0.35`) that reaches
    /// both a lone tag and a dense fleet within a few rounds.
    pub fn adaptive() -> Self {
        QParams {
            q0: 4,
            c: 0.35,
            q_min: 0,
            q_max: 15,
        }
    }

    /// `q` frozen at a fixed exponent — `frozen(0)` reproduces the
    /// legacy single-tag reader's `Query{q: 0}` behavior.
    pub fn frozen(q: u8) -> Self {
        QParams {
            q0: q,
            c: 0.0,
            q_min: q,
            q_max: q,
        }
    }
}

/// The floating-point Q adaptation state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QAlgorithm {
    params: QParams,
    q_fp: f64,
}

impl QAlgorithm {
    /// Starts at `params.q0`.
    pub fn new(params: QParams) -> Self {
        QAlgorithm {
            params,
            q_fp: f64::from(params.q0),
        }
    }

    /// The integer exponent the next round should use.
    pub fn q(&self) -> u8 {
        let q = self.q_fp.round();
        (q.max(f64::from(self.params.q_min)) as u8).min(self.params.q_max)
    }

    /// The raw floating-point state (for drift hysteresis).
    pub fn q_fp(&self) -> f64 {
        self.q_fp
    }

    /// Folds one slot outcome into `q_fp`. Corrupt slots count as
    /// collisions: the reader cannot tell garbled-by-noise from
    /// garbled-by-overlap.
    pub fn observe(&mut self, outcome: SlotOutcome) {
        let (lo, hi) = (f64::from(self.params.q_min), f64::from(self.params.q_max));
        match outcome {
            SlotOutcome::Collision | SlotOutcome::Corrupt => {
                self.q_fp = (self.q_fp + self.params.c).min(hi);
            }
            SlotOutcome::Empty => {
                self.q_fp = (self.q_fp - self.params.c).max(lo);
            }
            SlotOutcome::Single => {}
        }
    }
}

/// Air-interface timing of the fleet reader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gen2Timing {
    /// Air time per frame byte (commands and backscatter alike).
    pub byte_time: SimTime,
    /// How long the reader waits on an unclaimed slot before moving on
    /// (the `T1 + T3` no-reply window).
    pub empty_slot_timeout: SimTime,
}

impl Gen2Timing {
    /// A dense-reader link budget: 100 µs/byte (a faster Gen2 profile
    /// than the paper's conservative single-tag cadence) and a 300 µs
    /// no-reply window.
    pub fn dense_reader() -> Self {
        Gen2Timing {
            byte_time: SimTime::from_us(100),
            empty_slot_timeout: SimTime::from_us(300),
        }
    }

    /// Air time of an `n`-byte frame.
    pub fn air_time(&self, n_bytes: usize) -> SimTime {
        SimTime::from_ns(n_bytes as u64 * self.byte_time.as_ns())
    }
}

/// Cumulative inventory statistics, mergeable across fleet shards.
///
/// Every field is an exact integer count, so a sharded run merged in
/// shard order is bit-identical to a serial run — the property the
/// fleet determinism tests hold the bench harness to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gen2Stats {
    /// Inventory rounds opened (Query + QueryAdjust).
    pub rounds: u64,
    /// `Query` commands sent.
    pub queries: u64,
    /// `QueryRep` commands sent.
    pub query_reps: u64,
    /// `QueryAdjust` commands sent (mid-round Q corrections).
    pub query_adjusts: u64,
    /// Slots that timed out with no reply.
    pub empty_slots: u64,
    /// Slots with exactly one clean reply (EPC read).
    pub single_slots: u64,
    /// Slots with one reply that arrived corrupt.
    pub corrupt_slots: u64,
    /// Slots where two or more tags collided.
    pub collision_slots: u64,
    /// EPCs successfully read.
    pub epcs_read: u64,
}

impl Gen2Stats {
    /// Total slots arbitrated.
    pub fn slots(&self) -> u64 {
        self.empty_slots + self.single_slots + self.corrupt_slots + self.collision_slots
    }

    /// Adds another shard's counts into this one.
    pub fn merge(&mut self, other: &Gen2Stats) {
        self.rounds += other.rounds;
        self.queries += other.queries;
        self.query_reps += other.query_reps;
        self.query_adjusts += other.query_adjusts;
        self.empty_slots += other.empty_slots;
        self.single_slots += other.single_slots;
        self.corrupt_slots += other.corrupt_slots;
        self.collision_slots += other.collision_slots;
        self.epcs_read += other.epcs_read;
    }
}

/// The fleet reader's inventory state machine.
///
/// Drive it slot by slot: [`open_round`](Gen2Reader::open_round) yields
/// the round-opening command and slot budget, then alternate
/// [`next_slot`](Gen2Reader::next_slot) /
/// [`report_slot`](Gen2Reader::report_slot) until the budget is spent
/// or `report_slot` demands a restart (Q drifted — the next
/// `open_round` emits `QueryAdjust` instead of `Query`).
#[derive(Debug, Clone)]
pub struct Gen2Reader {
    timing: Gen2Timing,
    session: u8,
    q_alg: QAlgorithm,
    round_q: u8,
    adjust_pending: bool,
    q_min_seen: u8,
    q_max_seen: u8,
    stats: Gen2Stats,
}

impl Gen2Reader {
    /// A reader before its first round.
    pub fn new(timing: Gen2Timing, session: u8, q: QParams) -> Self {
        let q_alg = QAlgorithm::new(q);
        let q0 = q_alg.q();
        Gen2Reader {
            timing,
            session,
            q_alg,
            round_q: q0,
            adjust_pending: false,
            q_min_seen: q0,
            q_max_seen: q0,
            stats: Gen2Stats::default(),
        }
    }

    /// The air timing in force.
    pub fn timing(&self) -> Gen2Timing {
        self.timing
    }

    /// The exponent of the round in progress.
    pub fn q(&self) -> u8 {
        self.round_q
    }

    /// Lowest and highest `q` any round has used — the adaptation range.
    pub fn q_range_seen(&self) -> (u8, u8) {
        (self.q_min_seen, self.q_max_seen)
    }

    /// Counters so far.
    pub fn stats(&self) -> Gen2Stats {
        self.stats
    }

    /// Opens a round: returns the command to put on the air and the
    /// number of slots the round runs (`2^q`). The first slot of the
    /// round is implicit in the opening command itself — tags holding
    /// counter 0 reply right after it, without a `QueryRep`.
    pub fn open_round(&mut self) -> (Command, u32) {
        let q = self.q_alg.q();
        let command = if self.adjust_pending {
            self.adjust_pending = false;
            self.stats.query_adjusts += 1;
            let updn = match q.cmp(&self.round_q) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
            Command::QueryAdjust {
                session: self.session,
                updn,
            }
        } else {
            self.stats.queries += 1;
            Command::Query {
                q,
                session: self.session,
            }
        };
        self.round_q = q;
        self.q_min_seen = self.q_min_seen.min(q);
        self.q_max_seen = self.q_max_seen.max(q);
        self.stats.rounds += 1;
        (command, 1u32 << q)
    }

    /// Advances the round to its next slot (`QueryRep`).
    pub fn next_slot(&mut self) -> Command {
        self.stats.query_reps += 1;
        Command::QueryRep {
            session: self.session,
        }
    }

    /// Reports what the slot produced. Returns `true` when the Q
    /// algorithm wants the round restarted: the caller should stop
    /// issuing `QueryRep`s and call
    /// [`open_round`](Gen2Reader::open_round), which will emit the
    /// `QueryAdjust`.
    ///
    /// Restarts use a full-step hysteresis — `q_fp` must have drifted a
    /// whole exponent from the round's `q`, not merely crossed a
    /// rounding boundary. Without it, `q_fp` sitting near `x.5` at
    /// steady state aborts rounds every couple of slots and inventory
    /// throughput collapses; with it, mid-round corrections still land
    /// within ~⌈1/c⌉ slots of a genuine population shift. (A finished
    /// round always reopens at the freshly rounded `q` regardless.)
    pub fn report_slot(&mut self, outcome: SlotOutcome) -> bool {
        match outcome {
            SlotOutcome::Empty => self.stats.empty_slots += 1,
            SlotOutcome::Single => {
                self.stats.single_slots += 1;
                self.stats.epcs_read += 1;
            }
            SlotOutcome::Corrupt => self.stats.corrupt_slots += 1,
            SlotOutcome::Collision => self.stats.collision_slots += 1,
        }
        self.q_alg.observe(outcome);
        if (self.q_alg.q_fp() - f64::from(self.round_q)).abs() >= 1.0 {
            self.adjust_pending = true;
        }
        self.adjust_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the same per-tag stream generator the fleet uses.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Runs `rounds` inventory rounds over `n` ideal always-powered
    /// tags (pure protocol, no energy), returning the reader.
    fn inventory_ideal_tags(n: usize, seed: u64, rounds: usize, q: QParams) -> Gen2Reader {
        let mut reader = Gen2Reader::new(Gen2Timing::dense_reader(), 0, q);
        let mut rng: Vec<u64> = (0..n as u64).map(|i| seed ^ (i << 1) | 1).collect();
        let mut inventoried = vec![false; n];
        for _ in 0..rounds {
            let (_cmd, slots) = reader.open_round();
            let mask = u64::from(slots - 1);
            let mut counter: Vec<u64> =
                rng.iter_mut().map(|state| splitmix(state) & mask).collect();
            let mut restart = false;
            for slot in 0..slots {
                if slot > 0 {
                    let _ = reader.next_slot();
                }
                let responders: Vec<usize> = (0..n)
                    .filter(|&i| !inventoried[i] && counter[i] == 0)
                    .collect();
                let outcome = match responders.len() {
                    0 => SlotOutcome::Empty,
                    1 => {
                        inventoried[responders[0]] = true;
                        SlotOutcome::Single
                    }
                    _ => {
                        for &i in &responders {
                            counter[i] = splitmix(&mut rng[i]) & mask;
                            // A redraw of 0 contends again next slot.
                            counter[i] = counter[i].wrapping_add(1);
                        }
                        SlotOutcome::Collision
                    }
                };
                for c in counter.iter_mut() {
                    *c = c.saturating_sub(1);
                }
                if reader.report_slot(outcome) {
                    restart = true;
                    break;
                }
            }
            if !restart {
                // Natural round end: the next open_round sends Query.
            }
        }
        reader
    }

    #[test]
    fn q_converges_under_collision_storm() {
        // 500 always-powered tags against q0 = 0: every early slot is a
        // collision storm. The Q algorithm must climb to the population
        // optimum (log2 500 ≈ 9) and hold in its neighborhood.
        for seed in [7u64, 1234, 0xDEAD_BEEF] {
            let reader = inventory_ideal_tags(500, seed, 400, QParams::adaptive());
            // The final q reflects whatever tail population is left, so
            // pin the *range* instead: the climb must have reached the
            // 500-tag optimum neighborhood without wild overshoot.
            let (_, q_max) = reader.q_range_seen();
            assert!(
                (8..=12).contains(&q_max),
                "seed {seed}: peak q = {q_max}, expected near log2(500) ≈ 9"
            );
            let stats = reader.stats();
            assert!(
                stats.collision_slots > 0 && stats.query_adjusts > 0,
                "the storm must actually have triggered adaptation: {stats:?}"
            );
            // Once adapted, singles dominate collisions overall — the
            // whole point of climbing q.
            assert!(
                stats.single_slots > stats.collision_slots / 4,
                "inventory must make progress: {stats:?}"
            );
            assert!(stats.epcs_read >= 450, "most tags read: {stats:?}");
        }
    }

    #[test]
    fn frozen_q_never_adjusts() {
        let reader = inventory_ideal_tags(5, 99, 50, QParams::frozen(0));
        assert_eq!(reader.q(), 0);
        let stats = reader.stats();
        assert_eq!(stats.query_adjusts, 0);
        assert_eq!(stats.queries, stats.rounds);
        // q = 0 means one slot per round, carried by the Query itself.
        assert_eq!(stats.query_reps, 0);
    }

    #[test]
    fn q_algorithm_steps_and_clamps() {
        let mut alg = QAlgorithm::new(QParams {
            q0: 1,
            c: 0.5,
            q_min: 0,
            q_max: 2,
        });
        assert_eq!(alg.q(), 1);
        alg.observe(SlotOutcome::Collision);
        alg.observe(SlotOutcome::Collision);
        assert_eq!(alg.q(), 2);
        for _ in 0..10 {
            alg.observe(SlotOutcome::Collision);
        }
        assert_eq!(alg.q(), 2, "clamped at q_max");
        for _ in 0..10 {
            alg.observe(SlotOutcome::Empty);
        }
        assert_eq!(alg.q(), 0, "clamped at q_min");
        let before = alg;
        alg.observe(SlotOutcome::Single);
        assert_eq!(alg, before, "singles leave q_fp untouched");
    }

    #[test]
    fn corrupt_counts_as_collision_for_adaptation() {
        let mut a = QAlgorithm::new(QParams::adaptive());
        let mut b = QAlgorithm::new(QParams::adaptive());
        a.observe(SlotOutcome::Collision);
        b.observe(SlotOutcome::Corrupt);
        assert_eq!(a, b);
    }

    #[test]
    fn open_round_emits_adjust_after_drift() {
        let mut reader = Gen2Reader::new(
            Gen2Timing::dense_reader(),
            3,
            QParams {
                q0: 0,
                c: 1.0,
                q_min: 0,
                q_max: 15,
            },
        );
        let (cmd, slots) = reader.open_round();
        assert!(matches!(cmd, Command::Query { q: 0, session: 3 }));
        assert_eq!(slots, 1);
        // One collision at c = 1.0 moves q 0 → 1: restart demanded.
        assert!(reader.report_slot(SlotOutcome::Collision));
        let (cmd, slots) = reader.open_round();
        assert!(
            matches!(
                cmd,
                Command::QueryAdjust {
                    session: 3,
                    updn: 1
                }
            ),
            "{cmd:?}"
        );
        assert_eq!(slots, 2);
        assert_eq!(reader.q_range_seen(), (0, 1));
        assert_eq!(reader.stats().query_adjusts, 1);
    }

    #[test]
    fn stats_merge_is_fieldwise_addition() {
        let mut a = Gen2Stats {
            rounds: 1,
            queries: 1,
            query_reps: 4,
            query_adjusts: 0,
            empty_slots: 2,
            single_slots: 2,
            corrupt_slots: 1,
            collision_slots: 0,
            epcs_read: 2,
        };
        let b = Gen2Stats {
            rounds: 2,
            queries: 1,
            query_reps: 9,
            query_adjusts: 1,
            empty_slots: 5,
            single_slots: 3,
            corrupt_slots: 0,
            collision_slots: 2,
            epcs_read: 3,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.slots(), 15);
        assert_eq!(a.epcs_read, 5);
    }

    #[test]
    fn air_time_scales_with_frame_length() {
        let t = Gen2Timing::dense_reader();
        assert_eq!(t.air_time(3), SimTime::from_us(300));
        assert_eq!(t.air_time(15), SimTime::from_us(1500));
    }
}
