//! An Impinj-like RFID reader: carrier control plus a periodic inventory
//! state machine.
//!
//! The paper's setup: "The WISP is intermittently powered by RF radiation
//! from an Impinj Speedway Revolution RFID reader. The reader is
//! configured to continuously inventory tags at a transmit power of up to
//! 30 dBm ... its antenna is placed at a distance of 1 m from the WISP."
//!
//! The reader keeps its carrier on (that is what powers the tag) and
//! schedules `Query` / `QueryRep` commands in rounds. Replies are counted
//! so the Figure 12 experiment can report the response rate and
//! replies-per-second that the paper reports (86 %, ~13 replies/s in
//! their lab).

use crate::message::{Command, DecodeFailure, Frame, TagReply};
use edb_energy::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Timing and protocol parameters of the reader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderConfig {
    /// Time between the `Query` commands that open inventory rounds.
    pub query_period: SimTime,
    /// Gap between successive `QueryRep`s within a round.
    pub rep_gap: SimTime,
    /// Number of `QueryRep`s after each `Query`.
    pub reps_per_round: u32,
    /// Air time per frame byte (sets command duration).
    pub byte_time: SimTime,
    /// Gen2 session number carried in commands.
    pub session: u8,
}

impl ReaderConfig {
    /// The calibrated stand-in for the paper's lab setup: one `Query`
    /// every 60 ms with three `QueryRep`s 15 ms apart — ~66 command
    /// opportunities per second, so a tag answering most of them yields
    /// the paper's "average of 13 replies per second" order of magnitude
    /// once its power duty cycle is factored in.
    pub fn paper_setup() -> Self {
        ReaderConfig {
            query_period: SimTime::from_ms(60),
            rep_gap: SimTime::from_ms(15),
            reps_per_round: 3,
            byte_time: SimTime::from_us(400),
            session: 0,
        }
    }
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig::paper_setup()
    }
}

/// A tag reply that failed to decode at the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyError {
    /// Why the frame was rejected.
    pub failure: DecodeFailure,
    /// How many bytes arrived.
    pub len: usize,
}

impl fmt::Display for ReplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reply of {} byte(s): {}", self.len, self.failure)
    }
}

impl std::error::Error for ReplyError {}

/// Something the reader put on the air.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReaderEvent {
    /// The transmitted frame (pre-channel; corruption happens in flight).
    pub frame: Frame,
    /// When modulation began.
    pub start: SimTime,
    /// When the last byte finished.
    pub end: SimTime,
    /// The decoded command (the reader knows what it sent).
    pub command: Command,
}

/// The inventory state machine.
///
/// Drive it with [`Reader::poll`] once per simulation slice; feed tag
/// replies back with [`Reader::on_reply`].
///
/// # Example
///
/// ```
/// use edb_rfid::{Reader, ReaderConfig};
/// use edb_energy::SimTime;
/// let mut reader = Reader::new(ReaderConfig::paper_setup());
/// let ev = reader.poll(SimTime::ZERO).expect("first query fires at t=0");
/// assert_eq!(ev.command.label(), "CMD_QUERY");
/// ```
#[derive(Debug, Clone)]
pub struct Reader {
    config: ReaderConfig,
    round_start: SimTime,
    reps_sent_this_round: u32,
    next_tx: SimTime,
    tx_end: SimTime,
    started: bool,
    queries_sent: u64,
    reps_sent: u64,
    replies_ok: u64,
    replies_corrupt: u64,
}

impl Reader {
    /// Creates a reader that will send its first `Query` immediately.
    pub fn new(config: ReaderConfig) -> Self {
        Reader {
            config,
            round_start: SimTime::ZERO,
            reps_sent_this_round: 0,
            next_tx: SimTime::ZERO,
            tx_end: SimTime::ZERO,
            started: false,
            queries_sent: 0,
            reps_sent: 0,
            replies_ok: 0,
            replies_corrupt: 0,
        }
    }

    /// The reader's configuration.
    pub fn config(&self) -> ReaderConfig {
        self.config
    }

    /// Whether the reader is modulating a command at `now` (the harvester
    /// derates slightly while this is true).
    pub fn modulating(&self, now: SimTime) -> bool {
        now < self.tx_end
    }

    /// Advances the schedule; returns a transmission if one starts at or
    /// before `now`. Call repeatedly until it returns `None` to drain
    /// multiple due events after a large time jump.
    pub fn poll(&mut self, now: SimTime) -> Option<ReaderEvent> {
        if now < self.next_tx {
            return None;
        }
        let start = self.next_tx;
        let command = if !self.started || self.reps_sent_this_round >= self.config.reps_per_round {
            // Open a new round.
            self.started = true;
            self.round_start = start;
            self.reps_sent_this_round = 0;
            self.queries_sent += 1;
            Command::Query {
                q: 0,
                session: self.config.session,
            }
        } else {
            self.reps_sent_this_round += 1;
            self.reps_sent += 1;
            Command::QueryRep {
                session: self.config.session,
            }
        };
        let frame = Frame::command(command);
        let duration_ns = frame.bytes.len() as u64 * self.config.byte_time.as_ns();
        let end = start.advance_ns(duration_ns);
        self.tx_end = end;
        // Schedule the next transmission.
        self.next_tx = if self.reps_sent_this_round >= self.config.reps_per_round {
            self.round_start + self.config.query_period
        } else {
            start + self.config.rep_gap
        };
        Some(ReaderEvent {
            frame,
            start,
            end,
            command,
        })
    }

    /// Records a tag reply arriving at the reader (post-channel).
    ///
    /// # Errors
    ///
    /// [`ReplyError`] describing why the frame was rejected; the reply is
    /// still counted in [`Reader::replies_corrupt`].
    pub fn try_on_reply(&mut self, bytes: &[u8]) -> Result<TagReply, ReplyError> {
        match TagReply::decode(bytes) {
            Ok(reply) => {
                self.replies_ok += 1;
                Ok(reply)
            }
            Err(failure) => {
                self.replies_corrupt += 1;
                Err(ReplyError {
                    failure,
                    len: bytes.len(),
                })
            }
        }
    }

    /// Records a tag reply, discarding the reason when it fails to decode.
    /// Prefer [`Reader::try_on_reply`] where the cause matters.
    pub fn on_reply(&mut self, bytes: &[u8]) -> Option<TagReply> {
        self.try_on_reply(bytes).ok()
    }

    /// Total `Query` commands sent.
    pub fn queries_sent(&self) -> u64 {
        self.queries_sent
    }

    /// Total `QueryRep` commands sent.
    pub fn reps_sent(&self) -> u64 {
        self.reps_sent
    }

    /// Total commands (queries + reps) sent.
    pub fn commands_sent(&self) -> u64 {
        self.queries_sent + self.reps_sent
    }

    /// Replies that decoded cleanly at the reader.
    pub fn replies_ok(&self) -> u64 {
        self.replies_ok
    }

    /// Replies that arrived corrupted.
    pub fn replies_corrupt(&self) -> u64 {
        self.replies_corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_transmission_is_a_query() {
        let mut r = Reader::new(ReaderConfig::paper_setup());
        let ev = r.poll(SimTime::ZERO).expect("due at t=0");
        assert!(matches!(ev.command, Command::Query { .. }));
        assert_eq!(r.queries_sent(), 1);
    }

    #[test]
    fn rounds_follow_query_rep_pattern() {
        let cfg = ReaderConfig::paper_setup();
        let mut r = Reader::new(cfg);
        let mut labels = Vec::new();
        let mut t = SimTime::ZERO;
        // Walk two full rounds.
        for _ in 0..200 {
            if let Some(ev) = r.poll(t) {
                labels.push(ev.command.label());
            }
            t = t.advance_ns(1_000_000); // 1 ms steps
            if labels.len() >= 8 {
                break;
            }
        }
        assert_eq!(
            labels,
            vec![
                "CMD_QUERY",
                "CMD_QUERYREP",
                "CMD_QUERYREP",
                "CMD_QUERYREP",
                "CMD_QUERY",
                "CMD_QUERYREP",
                "CMD_QUERYREP",
                "CMD_QUERYREP",
            ]
        );
    }

    #[test]
    fn query_cadence_matches_period() {
        let cfg = ReaderConfig::paper_setup();
        let mut r = Reader::new(cfg);
        let mut query_times = Vec::new();
        let mut t = SimTime::ZERO;
        while query_times.len() < 3 {
            if let Some(ev) = r.poll(t) {
                if matches!(ev.command, Command::Query { .. }) {
                    query_times.push(ev.start);
                }
            }
            t = t.advance_ns(100_000);
        }
        let gap = query_times[1].since(query_times[0]);
        assert_eq!(gap, cfg.query_period);
    }

    #[test]
    fn modulation_window_covers_frame_air_time() {
        let cfg = ReaderConfig::paper_setup();
        let mut r = Reader::new(cfg);
        let ev = r.poll(SimTime::ZERO).expect("query");
        let mid = SimTime::from_ns(ev.end.as_ns() / 2);
        assert!(r.modulating(mid));
        assert!(!r.modulating(ev.end.advance_ns(1)));
    }

    #[test]
    fn reply_accounting_separates_corruption() {
        let mut r = Reader::new(ReaderConfig::paper_setup());
        let good = TagReply::Epc { epc: [7; 12] }.encode();
        assert!(r.on_reply(&good).is_some());
        let mut bad = good.clone();
        bad[3] ^= 0xFF;
        assert!(r.on_reply(&bad).is_none());
        assert_eq!(r.replies_ok(), 1);
        assert_eq!(r.replies_corrupt(), 1);
    }

    #[test]
    fn try_on_reply_reports_the_failure() {
        let mut r = Reader::new(ReaderConfig::paper_setup());
        let mut bad = TagReply::Epc { epc: [7; 12] }.encode();
        bad[3] ^= 0xFF;
        let err = r.try_on_reply(&bad).expect_err("corrupted frame");
        assert_eq!(err.failure, DecodeFailure::BadCrc);
        assert_eq!(err.len, bad.len());
        assert_eq!(err.to_string(), "reply of 15 byte(s): crc mismatch");
        let truncated = r.try_on_reply(&bad[..2]).expect_err("short frame");
        assert_eq!(truncated.failure, DecodeFailure::BadLength);
        assert_eq!(r.replies_corrupt(), 2);
    }

    #[test]
    fn poll_before_due_time_returns_none() {
        let mut r = Reader::new(ReaderConfig::paper_setup());
        let _ = r.poll(SimTime::ZERO);
        assert!(r.poll(SimTime::from_ms(1)).is_none());
    }
}
