//! A Gen2-style RFID protocol and reader model.
//!
//! The EDB paper's target (a WISP5 tag) is powered by an Impinj RFID
//! reader that continuously inventories tags: the reader's carrier powers
//! the tag, its commands (`CMD_QUERY`, `CMD_QUERYREP`) appear on the tag's
//! demodulator line, and the tag firmware decodes them *in software* and
//! replies over the backscatter modulator (`RSP_GENERIC` in the paper's
//! Figure 12).
//!
//! This crate provides the pieces of that RF world:
//!
//! * [`crc`] — the CRC-5 and CRC-16 used to protect commands and replies
//!   (tag firmware checks them in target code; EDB's external monitor
//!   checks them independently, which is how it can decode messages "even
//!   if the target does not correctly decode them due to power failures");
//! * [`message`] — command/reply frames and their wire encoding;
//! * [`channel`] — corruption-in-flight with a distance-scaled bit-flip
//!   model;
//! * [`reader`] — an Impinj-like inventory state machine that drives the
//!   harvester's carrier and schedules commands;
//! * [`gen2`] — Q-slot collision arbitration for *fleets* of tags
//!   sharing one carrier: slotted-ALOHA rounds, the floating-point Q
//!   algorithm, and a slot-driven reader state machine.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod crc;
pub mod gen2;
pub mod message;
pub mod reader;

pub use channel::Channel;
pub use gen2::{Gen2Reader, Gen2Stats, Gen2Timing, QAlgorithm, QParams, SlotOutcome};
pub use message::{Command, DecodeFailure, Frame, TagReply};
pub use reader::{Reader, ReaderConfig, ReaderEvent, ReplyError};
