//! Command and reply frames and their wire encoding.
//!
//! The wire format is byte-granular: the device's RF front-end presents
//! demodulated bytes to the firmware, which performs CRC validation and
//! dispatch *in target code*, as the real WISP firmware does. EDB's
//! monitor decodes the same bytes independently on the host side.
//!
//! Frame layouts (all little-endian):
//!
//! | frame       | bytes                                            |
//! |-------------|--------------------------------------------------|
//! | `Query`     | `0x51, (q<<4)\|session, crc5`                    |
//! | `QueryRep`  | `0x52, session, crc5`                            |
//! | `QueryAdjust` | `0x53, (updn<<4)\|session, crc5`               |
//! | `Ack`       | `0x41, rn_lo, rn_hi, crc5`                       |
//! | `Rn16`      | `0xA1, rn_lo, rn_hi, crc16_lo, crc16_hi`         |
//! | `Epc`       | `0xA2, epc[12], crc16_lo, crc16_hi`              |

use crate::crc::{crc16, crc5};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Leading byte of a `Query` command.
pub const TYPE_QUERY: u8 = 0x51;
/// Leading byte of a `QueryRep` command.
pub const TYPE_QUERY_REP: u8 = 0x52;
/// Leading byte of a `QueryAdjust` command.
pub const TYPE_QUERY_ADJUST: u8 = 0x53;
/// Leading byte of an `Ack` command.
pub const TYPE_ACK: u8 = 0x41;
/// Leading byte of an `Rn16` reply.
pub const TYPE_RN16: u8 = 0xA1;
/// Leading byte of an `Epc` reply.
pub const TYPE_EPC: u8 = 0xA2;

/// A reader→tag command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Starts an inventory round. `q` sets the slot-count range
    /// (`2^q` slots); our tags run with `q = 0` (respond immediately).
    Query {
        /// Slot-count exponent, 0–15.
        q: u8,
        /// Session number, 0–15.
        session: u8,
    },
    /// Advances to the next slot of the round.
    QueryRep {
        /// Session number, 0–15.
        session: u8,
    },
    /// Restarts the round with the slot-count exponent nudged up or
    /// down — how the reader's Q algorithm reacts mid-round to
    /// collision storms or runs of empty slots. Tags redraw their slot
    /// counters on receipt.
    QueryAdjust {
        /// Session number, 0–15.
        session: u8,
        /// `+1` (more slots), `0`, or `−1` (fewer slots).
        updn: i8,
    },
    /// Acknowledges a tag's RN16.
    Ack {
        /// The random number being acknowledged.
        rn: u16,
    },
}

impl Command {
    /// Serializes the command, appending its CRC-5.
    pub fn encode(self) -> Vec<u8> {
        match self {
            Command::Query { q, session } => {
                let body = [TYPE_QUERY, (q << 4) | (session & 0xF)];
                let mut v = body.to_vec();
                v.push(crc5(&body));
                v
            }
            Command::QueryRep { session } => {
                let body = [TYPE_QUERY_REP, session & 0xF];
                let mut v = body.to_vec();
                v.push(crc5(&body));
                v
            }
            Command::QueryAdjust { session, updn } => {
                // Up/down field: 0 = unchanged, 1 = up, 2 = down.
                let code: u8 = match updn {
                    1.. => 1,
                    0 => 0,
                    _ => 2,
                };
                let body = [TYPE_QUERY_ADJUST, (code << 4) | (session & 0xF)];
                let mut v = body.to_vec();
                v.push(crc5(&body));
                v
            }
            Command::Ack { rn } => {
                let body = [TYPE_ACK, (rn & 0xFF) as u8, (rn >> 8) as u8];
                let mut v = body.to_vec();
                v.push(crc5(&body));
                v
            }
        }
    }

    /// Parses and CRC-checks a command frame.
    ///
    /// # Errors
    ///
    /// [`DecodeFailure::BadLength`] if the byte count does not match any
    /// command; [`DecodeFailure::UnknownType`] for an unrecognized leading
    /// byte; [`DecodeFailure::BadCrc`] when the CRC-5 check fails (a
    /// frame corrupted in flight).
    pub fn decode(bytes: &[u8]) -> Result<Command, DecodeFailure> {
        let (&last, body) = bytes.split_last().ok_or(DecodeFailure::BadLength)?;
        let check = |ok: bool, cmd: Command| {
            if ok {
                Ok(cmd)
            } else {
                Err(DecodeFailure::BadCrc)
            }
        };
        match (bytes.first(), bytes.len()) {
            (Some(&TYPE_QUERY), 3) => check(
                crc5(body) == last,
                Command::Query {
                    q: bytes[1] >> 4,
                    session: bytes[1] & 0xF,
                },
            ),
            (Some(&TYPE_QUERY_REP), 3) => check(
                crc5(body) == last,
                Command::QueryRep {
                    session: bytes[1] & 0xF,
                },
            ),
            (Some(&TYPE_QUERY_ADJUST), 3) => {
                let updn = match bytes[1] >> 4 {
                    1 => 1,
                    2 => -1,
                    _ => 0,
                };
                check(
                    crc5(body) == last,
                    Command::QueryAdjust {
                        session: bytes[1] & 0xF,
                        updn,
                    },
                )
            }
            (Some(&TYPE_ACK), 4) => check(
                crc5(body) == last,
                Command::Ack {
                    rn: bytes[1] as u16 | ((bytes[2] as u16) << 8),
                },
            ),
            (Some(&TYPE_QUERY | &TYPE_QUERY_REP | &TYPE_QUERY_ADJUST | &TYPE_ACK), _) => {
                Err(DecodeFailure::BadLength)
            }
            (Some(_), _) => Err(DecodeFailure::UnknownType),
            (None, _) => Err(DecodeFailure::BadLength),
        }
    }

    /// The label the paper's Figure 12 uses for this message.
    pub fn label(self) -> &'static str {
        match self {
            Command::Query { .. } => "CMD_QUERY",
            Command::QueryRep { .. } => "CMD_QUERYREP",
            Command::QueryAdjust { .. } => "CMD_QUERYADJ",
            Command::Ack { .. } => "CMD_ACK",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A tag→reader reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagReply {
    /// The RN16 handle sent in response to a query.
    Rn16 {
        /// Tag-chosen random number.
        rn: u16,
    },
    /// The tag's EPC identifier — the paper's `RSP_GENERIC`.
    Epc {
        /// 96-bit EPC.
        epc: [u8; 12],
    },
}

impl TagReply {
    /// Serializes the reply, appending its CRC-16.
    pub fn encode(self) -> Vec<u8> {
        match self {
            TagReply::Rn16 { rn } => {
                let body = [TYPE_RN16, (rn & 0xFF) as u8, (rn >> 8) as u8];
                let mut v = body.to_vec();
                let c = crc16(&body);
                v.extend_from_slice(&c.to_le_bytes());
                v
            }
            TagReply::Epc { epc } => {
                let mut body = Vec::with_capacity(15);
                body.push(TYPE_EPC);
                body.extend_from_slice(&epc);
                let c = crc16(&body);
                body.extend_from_slice(&c.to_le_bytes());
                body
            }
        }
    }

    /// Parses and CRC-checks a reply frame.
    ///
    /// # Errors
    ///
    /// See [`Command::decode`]; the same failure taxonomy applies with the
    /// CRC-16.
    pub fn decode(bytes: &[u8]) -> Result<TagReply, DecodeFailure> {
        if bytes.len() < 3 {
            return Err(DecodeFailure::BadLength);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 2);
        let wire_crc = u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]);
        let crc_ok = crc16(body) == wire_crc;
        match (bytes.first(), bytes.len()) {
            (Some(&TYPE_RN16), 5) => {
                if crc_ok {
                    Ok(TagReply::Rn16 {
                        rn: bytes[1] as u16 | ((bytes[2] as u16) << 8),
                    })
                } else {
                    Err(DecodeFailure::BadCrc)
                }
            }
            (Some(&TYPE_EPC), 15) => {
                if crc_ok {
                    let mut epc = [0u8; 12];
                    epc.copy_from_slice(&bytes[1..13]);
                    Ok(TagReply::Epc { epc })
                } else {
                    Err(DecodeFailure::BadCrc)
                }
            }
            (Some(&TYPE_RN16 | &TYPE_EPC), _) => Err(DecodeFailure::BadLength),
            (Some(_), _) => Err(DecodeFailure::UnknownType),
            (None, _) => Err(DecodeFailure::BadLength),
        }
    }

    /// The label the paper's Figure 12 uses for this message.
    pub fn label(self) -> &'static str {
        match self {
            TagReply::Rn16 { .. } => "RSP_RN16",
            TagReply::Epc { .. } => "RSP_GENERIC",
        }
    }
}

impl fmt::Display for TagReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeFailure {
    /// Frame length does not match the frame type.
    BadLength,
    /// CRC mismatch — the frame was corrupted in flight.
    BadCrc,
    /// Unrecognized leading byte.
    UnknownType,
}

impl fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeFailure::BadLength => write!(f, "bad frame length"),
            DecodeFailure::BadCrc => write!(f, "crc mismatch"),
            DecodeFailure::UnknownType => write!(f, "unknown frame type"),
        }
    }
}

impl std::error::Error for DecodeFailure {}

/// A frame in flight: raw bytes plus direction metadata, used by the
/// channel and by EDB's I/O monitor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The wire bytes (possibly corrupted).
    pub bytes: Vec<u8>,
    /// `true` for reader→tag, `false` for tag→reader.
    pub downlink: bool,
}

impl Frame {
    /// Wraps a command as a downlink frame.
    pub fn command(cmd: Command) -> Self {
        Frame {
            bytes: cmd.encode(),
            downlink: true,
        }
    }

    /// Wraps a reply as an uplink frame.
    pub fn reply(reply: TagReply) -> Self {
        Frame {
            bytes: reply.encode(),
            downlink: false,
        }
    }

    /// Attempts to decode according to the frame direction, returning the
    /// paper-style label (`CMD_QUERY`, `RSP_GENERIC`, ...) or the decode
    /// failure.
    pub fn describe(&self) -> Result<&'static str, DecodeFailure> {
        if self.downlink {
            Command::decode(&self.bytes).map(Command::label)
        } else {
            TagReply::decode(&self.bytes).map(TagReply::label)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips() {
        for cmd in [
            Command::Query { q: 3, session: 1 },
            Command::QueryRep { session: 2 },
            Command::QueryAdjust {
                session: 1,
                updn: 1,
            },
            Command::QueryAdjust {
                session: 3,
                updn: -1,
            },
            Command::QueryAdjust {
                session: 0,
                updn: 0,
            },
            Command::Ack { rn: 0xBEEF },
        ] {
            let bytes = cmd.encode();
            assert_eq!(Command::decode(&bytes), Ok(cmd));
        }
    }

    #[test]
    fn reply_round_trips() {
        let epc = *b"WISP5-EDB-00";
        for reply in [TagReply::Rn16 { rn: 0x1234 }, TagReply::Epc { epc }] {
            let bytes = reply.encode();
            assert_eq!(TagReply::decode(&bytes), Ok(reply));
        }
    }

    #[test]
    fn corrupted_command_fails_crc() {
        let mut bytes = Command::Query { q: 0, session: 0 }.encode();
        bytes[1] ^= 0x10;
        assert_eq!(Command::decode(&bytes), Err(DecodeFailure::BadCrc));
    }

    #[test]
    fn corrupted_reply_fails_crc() {
        let mut bytes = TagReply::Rn16 { rn: 7 }.encode();
        bytes[2] ^= 1;
        assert_eq!(TagReply::decode(&bytes), Err(DecodeFailure::BadCrc));
    }

    #[test]
    fn wrong_length_detected() {
        let mut bytes = Command::Query { q: 0, session: 0 }.encode();
        bytes.push(0);
        assert_eq!(Command::decode(&bytes), Err(DecodeFailure::BadLength));
        assert_eq!(Command::decode(&[]), Err(DecodeFailure::BadLength));
    }

    #[test]
    fn unknown_type_detected() {
        assert_eq!(
            Command::decode(&[0x99, 0, 0]),
            Err(DecodeFailure::UnknownType)
        );
        assert_eq!(
            TagReply::decode(&[0x99, 0, 0]),
            Err(DecodeFailure::UnknownType)
        );
    }

    #[test]
    fn empty_and_truncated_frames_are_bad_length() {
        // Empty payloads must fail cleanly on both decode paths, as
        // must every truncation of a valid frame down to nothing.
        assert_eq!(Command::decode(&[]), Err(DecodeFailure::BadLength));
        assert_eq!(TagReply::decode(&[]), Err(DecodeFailure::BadLength));
        let full = TagReply::Epc { epc: [7; 12] }.encode();
        for len in 0..full.len() {
            assert_ne!(
                TagReply::decode(&full[..len]),
                Ok(TagReply::Epc { epc: [7; 12] }),
                "truncated to {len} bytes must not decode"
            );
        }
        assert_eq!(
            Command::decode(&[TYPE_QUERY]),
            Err(DecodeFailure::BadLength)
        );
        assert_eq!(
            TagReply::decode(&[TYPE_EPC, 0]),
            Err(DecodeFailure::BadLength)
        );
    }

    #[test]
    fn max_length_epc_frame_round_trips_and_rejects_resizing() {
        // The Epc frame is the longest on the wire (15 bytes); an
        // all-ones payload must survive byte-exact and any padding or
        // truncation must be rejected as a length error.
        let reply = TagReply::Epc { epc: [0xFF; 12] };
        let bytes = reply.encode();
        assert_eq!(bytes.len(), 15);
        assert_eq!(TagReply::decode(&bytes), Ok(reply));
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(TagReply::decode(&extended), Err(DecodeFailure::BadLength));
        assert_eq!(
            TagReply::decode(&bytes[..14]),
            Err(DecodeFailure::BadLength)
        );
    }

    #[test]
    fn every_corrupted_byte_position_is_detected() {
        // Single-bit corruption anywhere in a frame — type byte, payload,
        // or the CRC itself — must never decode as the original message.
        let epc_frame = TagReply::Epc {
            epc: *b"WISP5-EDB-00",
        }
        .encode();
        for byte in 0..epc_frame.len() {
            for bit in 0..8 {
                let mut bad = epc_frame.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(
                    TagReply::decode(&bad),
                    Ok(TagReply::Epc {
                        epc: *b"WISP5-EDB-00"
                    }),
                    "flip {byte}/{bit} slipped through"
                );
            }
        }
        let ack_frame = Command::Ack { rn: 0xBEEF }.encode();
        for byte in 0..ack_frame.len() {
            for bit in 0..8 {
                let mut bad = ack_frame.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(
                    Command::decode(&bad),
                    Ok(Command::Ack { rn: 0xBEEF }),
                    "flip {byte}/{bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Command::Query { q: 0, session: 0 }.label(), "CMD_QUERY");
        assert_eq!(Command::QueryRep { session: 0 }.label(), "CMD_QUERYREP");
        assert_eq!(
            Command::QueryAdjust {
                session: 0,
                updn: 1
            }
            .label(),
            "CMD_QUERYADJ"
        );
        assert_eq!(TagReply::Epc { epc: [0; 12] }.label(), "RSP_GENERIC");
    }

    #[test]
    fn frame_describe_reports_direction_sensitive_labels() {
        let f = Frame::command(Command::Query { q: 0, session: 0 });
        assert_eq!(f.describe(), Ok("CMD_QUERY"));
        let mut f2 = Frame::reply(TagReply::Rn16 { rn: 1 });
        assert_eq!(f2.describe(), Ok("RSP_RN16"));
        f2.bytes[1] ^= 0xFF;
        assert_eq!(f2.describe(), Err(DecodeFailure::BadCrc));
    }
}
