//! Ambient recording must be energy-interference-free at the artifact
//! level: the same suite run with and without a recorder attached
//! produces bit-identical experiment metrics, at any thread count.
//! This is the in-tree twin of the CI golden-manifest gate's
//! attached-vs-detached step.
//!
//! This test owns the process-global ambient recorder switch, so it
//! lives in its own integration-test binary — nothing else in this
//! process builds a `System`.

use edb_bench::runner::{ExperimentSpec, Runner};
use edb_bench::Report;
use edb_core::System;
use edb_device::DeviceConfig;
use edb_energy::{SimTime, TheveninSource};

const TRIALS: usize = 4;

/// A seeded intermittent trial: boot a tiny counter app from a
/// seed-dependent capacitor voltage under harvested power and report
/// where the electrical state lands. Runs through the full `System`
/// path so an ambient recorder, when enabled, actually attaches.
fn trial_metric(seed: u64) -> f64 {
    let image = edb_mcu::asm::assemble(
        ".org 0x4400\nstart: movi sp, 0x2400\nloop: add r1, 1\n jmp loop\n.org 0xFFFE\n.word start\n",
    )
    .expect("assembles");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(TheveninSource::new(3.2, 1500.0))
        .build();
    sys.flash(&image);
    sys.device_mut()
        .set_v_cap(1.9 + (seed % 512) as f64 / 1024.0);
    while sys.now() < SimTime::from_ms(5) {
        sys.step();
    }
    sys.device().v_cap() + sys.device().total_instructions() as f64
}

fn exp_counter(runner: &Runner) -> Report {
    let vals = runner.map_trials("obs_ambient_counter", TRIALS, |ctx| trial_metric(ctx.seed));
    let mut report = Report::new("ambient determinism probe");
    for (i, v) in vals.iter().enumerate() {
        report.metric(format!("trial{i}"), *v);
    }
    report
}

const SPEC: ExperimentSpec = ExperimentSpec {
    name: "obs_ambient_counter",
    title: "ambient determinism probe",
    run: exp_counter,
};

fn run_suite(threads: usize) -> edb_bench::runner::Manifest {
    let runner = Runner::quiet(threads, 42);
    let results = runner.run_experiments(&[SPEC]);
    runner.manifest(&[SPEC], &results, 0.0)
}

#[test]
fn attached_recorder_leaves_experiment_metrics_bit_identical() {
    // Detached baseline, sequential and parallel.
    let detached_1 = run_suite(1);
    let detached_4 = run_suite(4);
    assert!(detached_1.obs.is_none(), "no recorder was enabled yet");

    // Attached runs, sequential and parallel. `enable` clears the
    // global aggregate, so each run's manifest holds only its own
    // metrics.
    edb_obs::ambient::enable(edb_obs::RecorderConfig::default());
    let attached_1 = run_suite(1);
    edb_obs::ambient::enable(edb_obs::RecorderConfig::default());
    let attached_4 = run_suite(4);
    edb_obs::ambient::disable();

    let metrics = |m: &edb_bench::runner::Manifest| m.experiments[0].metrics.clone();
    let detached = metrics(&detached_1);
    assert_eq!(detached.len(), TRIALS);
    for other in [&detached_4, &attached_1, &attached_4] {
        let m = metrics(other);
        assert_eq!(
            detached.keys().collect::<Vec<_>>(),
            m.keys().collect::<Vec<_>>()
        );
        for (k, v) in &detached {
            assert_eq!(
                v.to_bits(),
                m[k].to_bits(),
                "metric {k} drifted with a recorder attached"
            );
        }
    }

    // The attached manifests carry the aggregated obs block, and the
    // ambient merge is itself thread-count-invariant: pure u64 counts.
    for attached in [&attached_1, &attached_4] {
        let obs = attached.obs.as_ref().expect("ambient metrics flushed");
        assert!(obs.counters["instructions"] > 0);
        assert_eq!(obs.counters["power_cycles"], {
            let a1 = attached_1.obs.as_ref().unwrap();
            a1.counters["power_cycles"]
        });
    }
    let a1 = attached_1.obs.as_ref().unwrap();
    let a4 = attached_4.obs.as_ref().unwrap();
    assert_eq!(a1.counters, a4.counters, "counter aggregation commutes");
    assert_eq!(a1.histograms, a4.histograms, "histogram merge commutes");
}
