//! The Perfetto export of a short fig7 run must parse as valid JSON
//! and keep timestamps monotone non-decreasing per track — the
//! contract ui.perfetto.dev relies on to render the timeline without
//! reordering.

use edb_obs::RecorderConfig;
use std::collections::BTreeMap;

#[test]
fn fig7_perfetto_export_is_valid_and_monotone_per_track() {
    let rec = edb_bench::fig7::traced(RecorderConfig::default());
    let json = rec.perfetto_json();
    let v: serde::Value = serde_json::from_str(&json).expect("export must be valid JSON");
    let events = v
        .get_field("traceEvents")
        .and_then(|e| e.as_seq())
        .expect("traceEvents array");
    assert!(
        events.len() > 50,
        "an intermittent fig7 run produces plenty of events, got {}",
        events.len()
    );

    // Per-(pid, tid) timestamps must never go backwards. Metadata
    // events ("M") carry no timestamp and are exempt.
    let mut last: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut timestamped = 0;
    for e in events {
        let ph = e.get_field("ph").and_then(|p| p.as_str()).expect("ph");
        if ph == "M" {
            continue;
        }
        let num = |name: &str| -> f64 {
            match e.get_field(name) {
                Some(serde::Value::U64(n)) => *n as f64,
                Some(serde::Value::I64(n)) => *n as f64,
                Some(serde::Value::F64(n)) => *n,
                other => panic!("field {name} must be a number, got {other:?}"),
            }
        };
        let key = (num("pid") as i64, num("tid") as i64);
        let ts = num("ts");
        assert!(ts >= 0.0);
        if let Some(&prev) = last.get(&key) {
            assert!(
                ts >= prev,
                "track {key:?}: ts went backwards ({prev} -> {ts})"
            );
        }
        last.insert(key, ts);
        timestamped += 1;
    }
    assert!(timestamped > 0);
    // The run is intermittent under harvested power, so the energy
    // track and at least one event track must both be present.
    assert!(last.len() >= 2, "expected multiple tracks, got {last:?}");

    // The same recorder also yields a well-formed profile and VCD.
    let profile: serde::Value =
        serde_json::from_str(&rec.profile_json()).expect("profile must be valid JSON");
    let buckets = profile
        .get_field("buckets")
        .and_then(|b| b.as_seq())
        .expect("buckets array");
    assert!(!buckets.is_empty(), "PC samples accumulated");
    let vcd = rec.vcd();
    assert!(vcd.contains("$var wire 1 ! powered $end"));
}
