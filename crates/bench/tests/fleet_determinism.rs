//! The fleet experiment's determinism contract, held at test level:
//!
//! * identical metrics (bit-for-bit, `f64::to_bits`) at `--threads`
//!   1, 4 and 8 — the work-stealing pool must not leak scheduling into
//!   results;
//! * cell-grouping invariance — merging per-cell stats in cell order
//!   gives the same totals no matter how cells were batched;
//! * seed sensitivity — different root seeds give different fleets
//!   (the metrics aren't constants that would vacuously pass).

use edb_bench::fleet::{cells_for, run_fleet, CELL_SIZE};
use edb_bench::runner::Runner;
use edb_core::fleet::{FleetCellStats, FleetConfig, FleetSim};

/// Metrics that must survive thread-count changes bit-for-bit.
fn fingerprint(runner: &Runner, n: usize) -> Vec<u64> {
    let s = run_fleet(runner, n);
    vec![
        s.gen2.rounds,
        s.gen2.slots(),
        s.gen2.epcs_read,
        s.gen2.collision_slots,
        s.gen2.query_adjusts,
        s.unique_tags_read,
        s.power_cycles,
        s.tag_cycles.to_bits(),
        s.sim_seconds.to_bits(),
    ]
}

#[test]
fn metrics_are_bit_identical_across_thread_counts() {
    for n in [100usize, 1_000, 2_000] {
        let baseline = fingerprint(&Runner::new(1, 42), n);
        for threads in [4usize, 8] {
            let got = fingerprint(&Runner::new(threads, 42), n);
            assert_eq!(baseline, got, "n={n} diverged at {threads} threads");
        }
    }
}

#[test]
fn different_seeds_change_the_fleet() {
    let a = fingerprint(&Runner::new(2, 42), 1_000);
    let b = fingerprint(&Runner::new(2, 43), 1_000);
    assert_ne!(a, b, "seed must reach the simulation");
}

#[test]
fn cell_grouping_cannot_change_the_merge() {
    // Simulate the cells of a 2000-tag fleet by hand with the same
    // per-cell seeds the runner derives, then merge them serially,
    // pairwise, and in reverse-computation order: all equal the
    // runner's own result.
    let n = 2_000usize;
    let runner = Runner::new(3, 42);
    let via_runner = run_fleet(&runner, n);

    let config = FleetConfig::standard(n);
    let experiment = format!("fleet/{n}");
    let cell_stats: Vec<FleetCellStats> = (0..cells_for(n))
        .map(|cell| {
            let seed = edb_bench::runner::seed_for(42, &experiment, cell as u64);
            let base = cell * CELL_SIZE;
            let n_local = CELL_SIZE.min(n - base);
            let mut sim = FleetSim::new_cell(config, base, n_local, seed);
            sim.run();
            sim.stats()
        })
        .collect();

    // Serial merge in cell order.
    let mut serial = FleetCellStats::default();
    for s in &cell_stats {
        serial.merge(s);
    }
    assert_eq!(via_runner, serial);
    assert_eq!(via_runner.tag_cycles.to_bits(), serial.tag_cycles.to_bits());

    // Computing cells in reverse order, merging in cell order, is
    // identical: a cell's result depends only on (config, base, seed).
    let mut reversed: Vec<(usize, FleetCellStats)> = (0..cells_for(n))
        .rev()
        .map(|cell| {
            let seed = edb_bench::runner::seed_for(42, &experiment, cell as u64);
            let base = cell * CELL_SIZE;
            let n_local = CELL_SIZE.min(n - base);
            let mut sim = FleetSim::new_cell(config, base, n_local, seed);
            sim.run();
            (cell, sim.stats())
        })
        .collect();
    reversed.sort_by_key(|(cell, _)| *cell);
    let mut out_of_order = FleetCellStats::default();
    for (_, s) in &reversed {
        out_of_order.merge(s);
    }
    assert_eq!(serial, out_of_order);
}

#[test]
fn max_trials_caps_cells_as_a_prefix() {
    // A capped run must simulate exactly the first cells of the full
    // run — same seeds, same per-cell results.
    let n = 2_000usize;
    let full = Runner::new(2, 42);
    let capped = Runner::new(2, 42).with_max_trials(Some(2));
    let full_stats = run_fleet(&full, n);
    let capped_stats = run_fleet(&capped, n);
    assert_eq!(capped_stats.tags, 2 * CELL_SIZE as u64);
    assert!(capped_stats.gen2.rounds < full_stats.gen2.rounds);

    // The capped total equals a hand-merge of the first two cells.
    let config = FleetConfig::standard(n);
    let mut expect = FleetCellStats::default();
    for cell in 0..2 {
        let seed = edb_bench::runner::seed_for(42, &format!("fleet/{n}"), cell as u64);
        let mut sim = FleetSim::new_cell(config, cell * CELL_SIZE, CELL_SIZE, seed);
        sim.run();
        expect.merge(&sim.stats());
    }
    assert_eq!(capped_stats, expect);
}
