//! `--max-trials N` must be an exact *prefix* of the full suite: trial
//! `i` of a capped run keeps the seed — and therefore the result — it
//! would have had in the full run. This pins that claim at the manifest
//! level for two experiments, the same artifact the CI golden gate
//! compares.

use edb_bench::runner::{ExperimentSpec, Runner};
use edb_bench::Report;
use edb_device::{Device, DeviceConfig};
use edb_energy::{SimTime, TheveninSource};

const FULL_TRIALS: usize = 8;
const CAPPED_TRIALS: usize = 3;

/// A tiny seeded device trial: run an intermittent counter for a few
/// milliseconds and report where the capacitor lands. Sensitive to the
/// trial seed through the starting voltage.
fn trial_metric(seed: u64) -> f64 {
    let image = edb_mcu::asm::assemble(
        ".org 0x4400\nstart: movi sp, 0x2400\nloop: add r1, 1\n jmp loop\n.org 0xFFFE\n.word start\n",
    )
    .expect("assembles");
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    dev.set_v_cap(2.0 + (seed % 512) as f64 / 1024.0);
    let mut h = TheveninSource::new(3.2, 1500.0);
    while dev.now() < SimTime::from_ms(3) {
        dev.step(&mut h, 0.0);
    }
    dev.v_cap() + dev.total_instructions() as f64
}

fn exp_counter(runner: &Runner) -> Report {
    let vals = runner.map_trials("prefix_counter", FULL_TRIALS, |ctx| trial_metric(ctx.seed));
    let mut report = Report::new("intermittent counter trials");
    for (i, v) in vals.iter().enumerate() {
        report.metric(format!("trial{i}"), *v);
    }
    report
}

fn exp_seeds(runner: &Runner) -> Report {
    // Pure seed-derivation experiment: the metric *is* the trial seed,
    // so any re-derivation under a cap is visible directly.
    let vals = runner.map_trials("prefix_seeds", FULL_TRIALS, |ctx| (ctx.seed >> 16) as f64);
    let mut report = Report::new("trial seed derivation");
    for (i, v) in vals.iter().enumerate() {
        report.metric(format!("trial{i}"), *v);
    }
    report
}

fn specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            name: "prefix_counter",
            title: "intermittent counter trials",
            run: exp_counter,
        },
        ExperimentSpec {
            name: "prefix_seeds",
            title: "trial seed derivation",
            run: exp_seeds,
        },
    ]
}

#[test]
fn capped_manifest_is_an_exact_prefix_of_the_full_one() {
    let specs = specs();

    let full_runner = Runner::quiet(2, 42);
    let full_results = full_runner.run_experiments(&specs);
    let full = full_runner.manifest(&specs, &full_results, 0.0);

    let capped_runner = Runner::quiet(2, 42).with_max_trials(Some(CAPPED_TRIALS));
    let capped_results = capped_runner.run_experiments(&specs);
    let capped = capped_runner.manifest(&specs, &capped_results, 0.0);

    for (fe, ce) in full.experiments.iter().zip(&capped.experiments) {
        assert_eq!(fe.name, ce.name);
        assert_eq!(fe.trials, FULL_TRIALS as u64, "{}", fe.name);
        assert_eq!(ce.trials, CAPPED_TRIALS as u64, "{}", ce.name);
        for i in 0..CAPPED_TRIALS {
            let key = format!("trial{i}");
            assert_eq!(
                fe.metrics.get(&key),
                ce.metrics.get(&key),
                "{}: capped trial {i} must equal the full run's (bit-exact)",
                fe.name
            );
        }
        for i in CAPPED_TRIALS..FULL_TRIALS {
            let key = format!("trial{i}");
            assert!(
                fe.metrics.contains_key(&key),
                "{}: full run has {key}",
                fe.name
            );
            assert!(
                !ce.metrics.contains_key(&key),
                "{}: capped run must truncate {key}, not re-derive it",
                ce.name
            );
        }
    }
}

#[test]
fn capped_prefix_holds_at_any_thread_count() {
    let specs = specs();
    let capped_1 = Runner::quiet(1, 42).with_max_trials(Some(CAPPED_TRIALS));
    let r1 = capped_1.run_experiments(&specs);
    let m1 = capped_1.manifest(&specs, &r1, 0.0);
    let capped_4 = Runner::quiet(4, 42).with_max_trials(Some(CAPPED_TRIALS));
    let r4 = capped_4.run_experiments(&specs);
    let m4 = capped_4.manifest(&specs, &r4, 0.0);
    for (a, b) in m1.experiments.iter().zip(&m4.experiments) {
        assert_eq!(
            a.metrics, b.metrics,
            "{}: thread count must not matter",
            a.name
        );
    }
}
