//! **Figures 6 & 7** — the memory-corrupting intermittence bug, without
//! and with EDB's intermittence-aware `assert`.
//!
//! Top of Figure 7: on harvested power the linked-list app's main loop
//! runs at first, then mysteriously stops forever (the wild-pointer
//! write has bricked the reset vector). Bottom: the instrumented build's
//! assert fails at the moment of inconsistency; EDB tethers the target
//! alive ("keep-alive") and opens the interactive session of Figure 6's
//! right panel, in which the stale tail pointer is directly visible.

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::{write_artifact, Report};
use edb_apps::linked_list as ll;
use edb_core::System;
use edb_device::DeviceConfig;
use edb_energy::{SimTime, Trace};
use edb_mcu::RESET_VECTOR;

/// The suite entry for this experiment (a single scripted scenario —
/// the runner's trial pool is not used).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig7",
    title: "Figure 7: intermittence bug without / with EDB assert",
    run: run_spec,
};

fn run_spec(_runner: &Runner) -> Report {
    run()
}

/// Runs both halves of the experiment.
pub fn run() -> Report {
    let mut report = Report::new("Figure 7: intermittence bug without / with EDB assert");

    // ---- top trace: no instrumentation -----------------------------
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harness::harvested(1))
        .build();
    sys.flash(&ll::image(ll::Variant::Plain));
    let mut v_trace = Trace::new("Vcap", SimTime::from_us(500));
    let mut loop_trace = Trace::new("MainLoopPin", SimTime::from_us(500));
    let mut brick_time = None;
    let deadline = SimTime::from_secs(30);
    while sys.now() < deadline {
        sys.step();
        v_trace.record(sys.now(), sys.device().v_cap());
        let pin = sys.device().peripherals.gpio.read() & edb_device::ports::PIN_MAIN_LOOP;
        loop_trace.record(sys.now(), (pin != 0) as u8 as f64);
        if brick_time.is_none() && sys.device().mem().peek_word(RESET_VECTOR) != 0x4400 {
            brick_time = Some(sys.now());
            v_trace.mark(sys.now(), "wild write corrupts reset vector");
        }
        if let Some(t) = brick_time {
            if sys.now() > t + SimTime::from_ms(300) {
                break;
            }
        }
    }
    let brick_time = brick_time.expect("the bug must strike");
    let iters_before = sys.device().mem().peek_word(ll::ITER_COUNT);
    // Count main-loop pin activity after the next reboot: must be zero.
    let post_window_active = loop_trace
        .window(brick_time + SimTime::from_ms(100), sys.now())
        .filter(|&(_, v)| v > 0.5)
        .count();
    report.line(format!(
        "plain build: main loop ran {iters_before} iterations, then the wild pointer struck at {brick_time}"
    ));
    report.line(format!(
        "after the next reboot the main-loop pin never rises again ({post_window_active} post-corruption pulses)"
    ));
    report.line(format!(
        "reset vector now {:#06x} (was 0x4400) — only a reflash recovers, as §5.3.1",
        sys.device().mem().peek_word(RESET_VECTOR)
    ));
    let path = write_artifact(
        "fig7_top.csv",
        &edb_energy::trace::merged_csv(&[&v_trace, &loop_trace]),
    );
    report.line(format!("top trace: {path}"));
    report.metric("brick_time_s", brick_time.as_secs_f64());
    report.metric("post_corruption_pulses", post_window_active as f64);

    // ---- bottom trace: EDB assert + keep-alive + interactive session
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harness::harvested(1))
        .build();
    sys.flash(&ll::image(ll::Variant::Assert));
    let mut v_trace = Trace::new("Vcap", SimTime::from_us(500));
    let caught = sys.run_until(SimTime::from_secs(60), |s| {
        s.edb().is_some_and(|e| e.session_active())
    });
    assert!(caught, "the assert must catch the inconsistency");
    let assert_time = sys.now();
    v_trace.mark(assert_time, "assert fails; EDB tethers the target");
    // Let the tether visibly pull the supply up (Figure 7 bottom-right).
    let settle_end = sys.now() + SimTime::from_ms(30);
    while sys.now() < settle_end {
        sys.step();
        v_trace.record(sys.now(), sys.device().v_cap());
    }
    let tethered_v = sys.device().v_cap();

    // The Figure 6 interactive session: inspect the data structure live.
    let tail = sys.read_word(ll::TAILP).expect("read tail");
    let head_next = sys
        .read_word(ll::HEAD + ll::NODE_NEXT)
        .expect("read head->next");
    let tail_next = sys
        .read_word(tail.wrapping_add(ll::NODE_NEXT))
        .expect("read tail->next");
    report.line(String::new());
    report.line(format!(
        "assert build: EDB caught the violated invariant at {assert_time} and kept the target alive"
    ));
    report.line(format!(
        "tethered Vcap = {tethered_v:.2} V (above turn-on; no brown-out, reboots = {})",
        sys.device().reboots()
    ));
    report.line("interactive session (Figure 6 right panel):".to_string());
    report.line(format!(
        "  (edb) read TAILP       -> {tail:#06x}  (the sentinel!)"
    ));
    report.line(format!(
        "  (edb) read HEAD->next  -> {head_next:#06x}  (node e)"
    ));
    report.line(format!(
        "  (edb) read tail->next  -> {tail_next:#06x}  (should be NULL; the stale-tail smoking gun)"
    ));
    report.line(format!(
        "reset vector intact: {:#06x} — the root cause was caught before the wild write",
        sys.device().mem().peek_word(RESET_VECTOR)
    ));
    let path = write_artifact("fig7_bottom.csv", &v_trace.to_csv());
    report.line(format!("bottom trace: {path}"));
    report.metric("assert_time_s", assert_time.as_secs_f64());
    report.metric("tethered_v", tethered_v);
    report.metric("tail_is_sentinel", (tail == ll::HEAD) as u8 as f64);
    report.metric("tail_next_nonnull", (tail_next != 0) as u8 as f64);
    report.metric(
        "vector_intact",
        (sys.device().mem().peek_word(RESET_VECTOR) == 0x4400) as u8 as f64,
    );
    report
}

/// Runs the assert-build half of the experiment with an explicit
/// [`edb_obs::Recorder`] attached and returns it, full of events,
/// for export (`--trace-out` / `--profile-out` on the `fig7` bin).
///
/// The scenario mirrors [`run`]'s bottom trace: harvested power, the
/// intermittence-aware assert fires, EDB tethers the target, and a
/// short interactive session reads the broken data structure.
pub fn traced(config: edb_obs::RecorderConfig) -> edb_obs::Recorder {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harness::harvested(1))
        .with_recorder(config)
        .build();
    sys.flash(&ll::image(ll::Variant::Assert));
    let caught = sys.run_until(SimTime::from_secs(60), |s| {
        s.edb().is_some_and(|e| e.session_active())
    });
    assert!(caught, "the assert must catch the inconsistency");
    // Interactive reads, then let the tether visibly hold the supply.
    let _ = sys.read_word(ll::TAILP).expect("read tail");
    let _ = sys
        .read_word(ll::HEAD + ll::NODE_NEXT)
        .expect("read head->next");
    let settle_end = sys.now() + SimTime::from_ms(30);
    while sys.now() < settle_end {
        sys.step();
    }
    *sys.take_recorder().expect("recorder was attached")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_story_reproduces() {
        let r = run();
        assert_eq!(r.get("post_corruption_pulses"), 0.0, "main loop dead");
        assert!(r.get("tethered_v") > 2.6, "keep-alive tether engaged");
        assert_eq!(r.get("tail_is_sentinel"), 1.0);
        assert_eq!(r.get("tail_next_nonnull"), 1.0);
        assert_eq!(
            r.get("vector_intact"),
            1.0,
            "assert preempted the wild write"
        );
    }
}
