//! Shared experiment plumbing: standard sources, watchpoint-pair
//! iteration profiling, and energy arithmetic.

use edb_core::{DebugEvent, EventLog};
use edb_energy::{Fading, SimTime, TheveninSource};

/// The standard harvested supply used across experiments: the RF-like
/// Thévenin source of the 1 m reader setup, with slow fading.
pub fn harvested(seed: u64) -> Fading<TheveninSource> {
    Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed)
}

/// The bench power supply (continuous power, JTAG-style).
pub fn tethered() -> TheveninSource {
    TheveninSource::new(3.0, 10.0)
}

// The canonical energy arithmetic lives in `edb_energy::budget`;
// re-exported here because every experiment module reaches for it
// through the harness.
pub use edb_energy::budget::{delta_e_percent, e_max};

/// One completed main-loop iteration recovered from watchpoint events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iteration {
    /// Time of the iteration-start watchpoint.
    pub start: SimTime,
    /// Time of the completion watchpoint.
    pub end: SimTime,
    /// Capacitor reading at the start, volts.
    pub v_start: f64,
    /// Capacitor reading at completion, volts.
    pub v_end: f64,
    /// The completion watchpoint's ID.
    pub outcome: u8,
}

impl Iteration {
    /// Iteration wall time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.end.since(self.start).as_secs_f64() * 1e3
    }

    /// Iteration energy cost as % of the full store.
    pub fn energy_percent(&self) -> f64 {
        delta_e_percent(self.v_start, self.v_end)
    }
}

/// Profile of a watchpoint-instrumented loop: attempted vs completed
/// iterations, in the style of Figure 10's WP1/WP2/WP3 instrumentation.
#[derive(Debug, Clone, Default)]
pub struct LoopProfile {
    /// Iterations that began (start watchpoints seen).
    pub attempted: u64,
    /// Iterations that reached a completion watchpoint without an
    /// intervening power failure.
    pub completed: Vec<Iteration>,
}

impl LoopProfile {
    /// Success rate: completed / attempted (the Table 4 metric).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.completed.len() as f64 / self.attempted as f64
        }
    }

    /// Mean completed-iteration time, ms.
    pub fn mean_time_ms(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(Iteration::time_ms).sum::<f64>() / self.completed.len() as f64
    }

    /// Mean completed-iteration energy, % of the full store.
    pub fn mean_energy_percent(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(Iteration::energy_percent)
            .sum::<f64>()
            / self.completed.len() as f64
    }
}

/// Pairs `start_id` watchpoints with the next completion watchpoint,
/// resetting on power failures.
pub fn profile_loop(log: &EventLog, start_id: u8, completion_ids: &[u8]) -> LoopProfile {
    let mut profile = LoopProfile::default();
    let mut open: Option<(SimTime, f64)> = None;
    for ev in log.events() {
        match &ev.event {
            DebugEvent::Watchpoint { id, v_cap } if *id == start_id => {
                profile.attempted += 1;
                open = Some((ev.at, *v_cap));
            }
            DebugEvent::Watchpoint { id, v_cap } if completion_ids.contains(id) => {
                if let Some((start, v_start)) = open.take() {
                    profile.completed.push(Iteration {
                        start,
                        end: ev.at,
                        v_start,
                        v_end: *v_cap,
                        outcome: *id,
                    });
                }
            }
            DebugEvent::BrownOut => open = None,
            _ => {}
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_pairs_and_resets_on_brownout() {
        let mut log = EventLog::new();
        let wp = |log: &mut EventLog, t: u64, id: u8, v: f64| {
            log.push(SimTime::from_ms(t), DebugEvent::Watchpoint { id, v_cap: v })
        };
        wp(&mut log, 1, 1, 2.3);
        wp(&mut log, 2, 2, 2.25); // completed (stationary)
        wp(&mut log, 3, 1, 2.2);
        log.push(SimTime::from_ms(4), DebugEvent::BrownOut); // cut short
        wp(&mut log, 10, 1, 2.4);
        wp(&mut log, 12, 3, 2.35); // completed (moving)
        let p = profile_loop(&log, 1, &[2, 3]);
        assert_eq!(p.attempted, 3);
        assert_eq!(p.completed.len(), 2);
        assert!((p.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.completed[0].outcome, 2);
        assert_eq!(p.completed[1].outcome, 3);
        assert!((p.completed[0].time_ms() - 1.0).abs() < 1e-9);
        assert!(p.completed[0].energy_percent() > 0.0);
    }

    #[test]
    fn energy_percent_arithmetic() {
        // Full store: 2.4 V -> 0 V is 100 %.
        assert!((delta_e_percent(2.4, 0.0) - 100.0).abs() < 1e-9);
        assert!(delta_e_percent(2.3, 2.4) < 0.0);
    }
}
