//! Ablations of the design choices DESIGN.md calls out: what happens to
//! the debugger's guarantees when its parameters move.
//!
//! 1. **Wiring leakage budget** — scale the connection leakage up and
//!    watch energy-interference-freedom die (the reason Table 2's sub-µA
//!    budget matters).
//! 2. **Guard restore band** — the accuracy/energy-cost knob of EDB
//!    printf (Table 4's 0.11 % column depends on it).
//! 3. **Debugger tick period** — the keep-alive latency margin: how much
//!    headroom the assert tether has before the target would brown out.
//! 4. **Checkpoint interval** — the runtime substrate's re-execution /
//!    overhead trade-off.

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_core::{DebugEvent, Edb, EdbConfig, System};
use edb_device::{Device, DeviceConfig};
use edb_energy::SimTime;
use edb_mcu::asm::assemble;
use edb_runtime::runtime_asm;

/// Ablation 1: raise the idle activity fraction of the wiring by
/// simulating a cheap debugger built with leakier buffers, modeled as a
/// constant parasitic drain. Measures reboot-cadence distortion.
fn leakage_ablation() -> Report {
    let mut report = Report::new("leakage_ablation");
    let image = edb_apps::activity::image(edb_apps::activity::Variant::NoPrint);
    let run = |extra_drain: f64| {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        let mut src = harness::harvested(21);
        while dev.now() < SimTime::from_secs(4) {
            dev.step(&mut src, -extra_drain);
        }
        dev.reboots()
    };
    let baseline = run(0.0);
    report.line("wiring leakage budget vs behaviour distortion:".to_string());
    for (label, drain) in [
        ("EDB-class (0.8 µA)", 0.8e-6),
        ("careless (10 µA)", 10e-6),
        ("USB-adapter-class (100 µA)", 100e-6),
    ] {
        let reboots = run(drain);
        let delta = (reboots as f64 - baseline as f64).abs() / baseline as f64 * 100.0;
        report.line(format!(
            "  {label:<28} reboots {reboots} vs {baseline} bare = {delta:.1} % distortion"
        ));
        if drain < 1e-6 {
            report.metric("edb_class_distortion_pct", delta);
        }
        if drain > 50e-6 {
            report.metric("usb_class_distortion_pct", delta);
        }
    }
    report
}

/// Ablation 2: the guard restore band. A loose band quietly *donates*
/// energy to the target at every guard exit, corrupting the measured
/// application behaviour.
fn guard_band_ablation() -> Report {
    let mut report = Report::new("guard_band_ablation");
    report.line(String::new());
    report.line("guard restore band vs per-guard energy error:".to_string());
    let image = edb_apps::activity::image(edb_apps::activity::Variant::EdbPrintf);
    for band_mv in [2.0, 4.0, 20.0, 60.0] {
        let mut sys = System::builder(DeviceConfig::wisp5())
            .harvester(harness::harvested(22))
            .build();
        sys.attach_edb(Edb::new(EdbConfig {
            guard_band: band_mv / 1e3,
            ..EdbConfig::prototype()
        }));
        sys.flash(&image);
        sys.run_for(SimTime::from_secs(2));
        let log = sys.edb().expect("attached").log();
        let mut errs = Vec::new();
        let mut entries = Vec::new();
        for ev in log.events() {
            match ev.event {
                DebugEvent::GuardEnter { saved_v } => entries.push(saved_v),
                DebugEvent::GuardExit { restored_v } => {
                    if let Some(saved) = entries.pop() {
                        errs.push((restored_v - saved) * 1e3);
                    }
                }
                _ => {}
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        report.line(format!(
            "  band {band_mv:>5.1} mV: mean restore error {mean:+.1} mV over {} guards",
            errs.len()
        ));
        if band_mv < 3.0 {
            report.metric("tight_band_err_mv", mean);
        }
        if band_mv > 50.0 {
            report.metric("loose_band_err_mv", mean);
        }
    }
    report
}

/// Ablation 3: debugger tick period vs keep-alive margin — how far the
/// target's voltage falls between the assert signal and the tether.
fn tick_latency_ablation() -> Report {
    let mut report = Report::new("tick_latency_ablation");
    report.line(String::new());
    report.line("debugger tick period vs keep-alive margin at the assert:".to_string());
    let image = edb_apps::linked_list::image(edb_apps::linked_list::Variant::Assert);
    for tick_us in [20u64, 200, 1000, 5000] {
        let mut sys = System::builder(DeviceConfig::wisp5())
            .harvester(harness::harvested(1))
            .build();
        sys.attach_edb(Edb::new(EdbConfig {
            tick_period: SimTime::from_us(tick_us),
            ..EdbConfig::prototype()
        }));
        sys.flash(&image);
        let caught = sys.run_until(SimTime::from_secs(30), |s| {
            s.edb().is_some_and(|e| e.session_active())
        });
        let v_at_tether = sys.device().v_cap();
        let margin_mv = (v_at_tether - 1.8) * 1e3;
        report.line(format!(
            "  tick {tick_us:>5} µs: caught={caught}, Vcap at tether {v_at_tether:.3} V (margin {margin_mv:.0} mV above brown-out)"
        ));
        if tick_us == 20 {
            report.metric("fast_tick_margin_mv", margin_mv);
        }
        if tick_us == 5000 {
            report.metric("slow_tick_margin_mv", margin_mv);
        }
    }
    report.line(
        "  (a slow debugger loop erodes the margin; a real assert near brown-out would be lost)"
            .to_string(),
    );
    report
}

/// Ablation 4: checkpoint interval on the runtime substrate — overhead
/// when checkpointing every iteration vs every 16th.
fn checkpoint_interval_ablation() -> Report {
    let mut report = Report::new("checkpoint_interval_ablation");
    report.line(String::new());
    report.line("checkpoint interval vs throughput (counter app, 2 s harvested):".to_string());
    for interval in [1u16, 4, 16] {
        let src_text = format!(
            r#"
            .equ MIRROR, 0x6000
            .org 0x4400
            init:
                movi sp, 0x2400
                movi r0, 0
                movi r9, 0
            loop:
                add  r0, 1
                movi r1, MIRROR
                st   [r1], r0
                add  r9, 1
                cmpi r9, {interval}
                jl   loop
                movi r9, 0
                call __cp_checkpoint
                jmp  loop
            {runtime}
            .org 0xFFFE
            .word __cp_boot
            "#,
            runtime = runtime_asm("init")
        );
        let image = assemble(&src_text).expect("assembles");
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        let mut src = harness::harvested(23);
        while dev.now() < SimTime::from_secs(2) {
            dev.step(&mut src, 0.0);
        }
        let count = dev.mem().peek_word(0x6000);
        report.line(format!(
            "  every {interval:>2} iteration(s): counter reached {count} across {} reboots",
            dev.reboots()
        ));
        report.metric(format!("cp_interval_{interval}_count"), count as f64);
    }
    report.line(
        "  (sparser checkpoints amortize runtime cost but re-execute more on failure)".to_string(),
    );
    report
}

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "ablations",
    title: "Ablations: leakage budget, guard band, tick latency, checkpoint interval",
    run,
};

/// The ablations, in the order the report presents them.
const ABLATIONS: [fn() -> Report; 4] = [
    leakage_ablation,
    guard_band_ablation,
    tick_latency_ablation,
    checkpoint_interval_ablation,
];

/// Runs all ablations as independent fragments fanned out through the
/// runner, merged back in presentation order. Like the claims, each
/// ablation pins its own scenario seeds, so the report does not depend
/// on thread count or root seed.
pub fn run(runner: &Runner) -> Report {
    let mut report = Report::new(SPEC.title);
    for fragment in runner.map_trials("ablations", ABLATIONS.len(), |ctx| ABLATIONS[ctx.trial]()) {
        report.merge(fragment);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_confirm_the_design_choices() {
        let r = run(&Runner::quiet(2, 42));
        // Sub-µA leakage: behaviour essentially unchanged; 100 µA: badly
        // distorted.
        assert!(r.get("edb_class_distortion_pct") < 2.0);
        assert!(r.get("usb_class_distortion_pct") > 5.0);
        // Tight guard band keeps per-guard error near zero; loose band
        // donates tens of mV per guard.
        assert!(r.get("tight_band_err_mv").abs() < 10.0);
        assert!(r.get("loose_band_err_mv") > 20.0);
        // A fast debugger loop preserves keep-alive margin.
        assert!(r.get("fast_tick_margin_mv") > r.get("slow_tick_margin_mv") - 50.0);
        assert!(r.get("fast_tick_margin_mv") > 100.0);
        // Sparser checkpoints run faster.
        assert!(r.get("cp_interval_16_count") > r.get("cp_interval_1_count"));
    }
}
