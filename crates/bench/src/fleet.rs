//! **Fleet** — Gen2 inventory at population scale, 10² → 10⁴ tags.
//!
//! The paper debugs one tag; a deployment has thousands sharing one
//! carrier. This experiment sweeps fleet sizes through the reduced-order
//! [`FleetSim`] path: per-tag distance-scaled harvest, Q-slot collision
//! arbitration, struct-of-arrays span stepping — sharded over the
//! work-stealing trial pool in fixed *cells* of [`CELL_SIZE`] tags.
//!
//! Determinism contract: the cell count is a pure function of the fleet
//! size (`ceil(n / CELL_SIZE)`), each cell's seed derives from
//! `seed_for(root, "fleet/<n>", cell_index)`, and cell results merge in
//! cell order — so the manifest is bit-identical at any `--threads`
//! value and any scheduling of cells across the pool. Wall-clock
//! throughput (tag·cycles/sec) is inherently machine-dependent and is
//! therefore reported in the *lines* and the benchmark snapshot only,
//! never as a manifest metric.

use crate::runner::{ExperimentSpec, Runner};
use crate::{write_artifact, Report};
use edb_core::fleet::{FleetCellStats, FleetConfig, FleetSim};
use std::fmt::Write as _;
use std::time::Instant;

/// Tags per reader cell. Fixed: changing it changes cell boundaries and
/// therefore every per-cell seed — i.e. it is part of the experiment's
/// identity, not a tuning knob.
pub const CELL_SIZE: usize = 625;

/// Fleet sizes swept, 10² → 10⁴.
pub const SWEEP: [usize; 3] = [100, 1_000, 10_000];

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fleet",
    title: "Fleet: Gen2 inventory at 100..10k tags",
    run: run_spec,
};

/// Number of cells a fleet of `n` tags shards into.
pub fn cells_for(n: usize) -> usize {
    n.div_ceil(CELL_SIZE)
}

/// Runs every cell of an `n`-tag fleet through the runner's pool and
/// merges the results in cell order.
pub fn run_fleet(runner: &Runner, n: usize) -> FleetCellStats {
    let config = FleetConfig::standard(n);
    let experiment = format!("fleet/{n}");
    let cells = runner.map_trials(&experiment, cells_for(n), |ctx| {
        let base = ctx.trial * CELL_SIZE;
        let n_local = CELL_SIZE.min(n - base);
        let mut sim = FleetSim::new_cell(config, base, n_local, ctx.seed);
        sim.run();
        sim.stats()
    });
    let mut total = FleetCellStats::default();
    for cell in &cells {
        total.merge(cell);
    }
    total
}

fn run_spec(runner: &Runner) -> Report {
    let mut report = Report::new(SPEC.title);
    report.line(format!(
        "{} tags per cell; cells derive only from fleet size, so any",
        CELL_SIZE
    ));
    report.line("thread count or cell grouping merges to identical totals.");
    report.line(String::new());

    let mut summary = String::from("{\n  \"cell_size\": 625,\n  \"fleets\": [\n");
    for (idx, &n) in SWEEP.iter().enumerate() {
        let t0 = Instant::now();
        let stats = run_fleet(runner, n);
        let wall = t0.elapsed().as_secs_f64();

        let slots = stats.gen2.slots();
        let unique_pct = 100.0 * stats.unique_tags_read as f64 / stats.tags.max(1) as f64;
        let collision_pct = 100.0 * stats.gen2.collision_slots as f64 / slots.max(1) as f64;
        let rate = stats.tag_cycles / wall.max(1e-9);
        report.line(format!(
            "n={n:>6}: {cells} cells, {rounds} rounds, {slots} slots, \
             {epcs} EPCs ({unique_pct:.1}% unique), {collision_pct:.1}% collided, q {qlo}..{qhi}",
            cells = cells_for(n),
            rounds = stats.gen2.rounds,
            epcs = stats.gen2.epcs_read,
            qlo = stats.q_lo,
            qhi = stats.q_hi,
        ));
        report.line(format!(
            "          {:.3e} tag·cycles in {wall:.2} s wall = {rate:.3e} tag·cycles/sec",
            stats.tag_cycles
        ));

        // Deterministic metrics only — the golden manifest compares
        // these bit-exactly across machines and thread counts.
        report.metric(format!("tags_{n}"), stats.tags as f64);
        report.metric(format!("rounds_{n}"), stats.gen2.rounds as f64);
        report.metric(format!("slots_{n}"), slots as f64);
        report.metric(format!("epcs_{n}"), stats.gen2.epcs_read as f64);
        report.metric(format!("collisions_{n}"), stats.gen2.collision_slots as f64);
        report.metric(format!("unique_read_pct_{n}"), unique_pct);
        report.metric(format!("tag_cycles_{n}"), stats.tag_cycles);
        report.metric(format!("power_cycles_{n}"), stats.power_cycles as f64);

        // The JSON artifact is also deterministic (no wall time): the
        // fleet-smoke CI job byte-compares it across thread counts.
        let _ = write!(
            summary,
            "    {{\"n\": {n}, \"cells\": {}, \"rounds\": {}, \"slots\": {slots}, \
             \"epcs\": {}, \"collisions\": {}, \"corrupt\": {}, \"empty\": {}, \
             \"unique_tags_read\": {}, \"tag_cycles\": {:.6e}, \"power_cycles\": {}}}{}",
            cells_for(n),
            stats.gen2.rounds,
            stats.gen2.epcs_read,
            stats.gen2.collision_slots,
            stats.gen2.corrupt_slots,
            stats.gen2.empty_slots,
            stats.unique_tags_read,
            stats.tag_cycles,
            stats.power_cycles,
            if idx + 1 == SWEEP.len() { "\n" } else { ",\n" },
        );
    }
    summary.push_str("  ]\n}\n");
    let path = write_artifact("fleet_summary.json", &summary);
    report.line(String::new());
    report.line(format!("fleet summary -> {path}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_is_a_pure_function_of_n() {
        assert_eq!(cells_for(1), 1);
        assert_eq!(cells_for(100), 1);
        assert_eq!(cells_for(625), 1);
        assert_eq!(cells_for(626), 2);
        assert_eq!(cells_for(1_000), 2);
        assert_eq!(cells_for(10_000), 16);
    }

    #[test]
    fn sweep_covers_two_decades() {
        assert_eq!(SWEEP[0], 100);
        assert_eq!(*SWEEP.last().unwrap(), 10_000);
    }
}
