//! **Figure 12** — "Incoming and outgoing RFID messages correlated with
//! energy level recorded by EDB."
//!
//! The WISP RFID firmware runs against the reader that also powers it.
//! EDB monitors the RF RX/TX lines externally — decoding commands even
//! when the tag browns out mid-frame — and streams energy alongside, the
//! correlation no other tool could produce. The paper's lab measured an
//! 86 % response rate at ~13 replies/second.

use crate::runner::{ExperimentSpec, Runner};
use crate::{write_artifact, Report};
use edb_apps::rfid_fw;
use edb_core::{DebugEvent, System};
use edb_device::DeviceConfig;
use edb_energy::SimTime;
use edb_rfid::ReaderConfig;
use std::fmt::Write as _;

/// The suite entry for this experiment (a single scripted scenario —
/// the runner's trial pool is not used).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig12",
    title: "Figure 12: RFID messages correlated with energy",
    run: run_spec,
};

fn run_spec(_runner: &Runner) -> Report {
    run()
}

/// Runs the Figure 12 experiment.
pub fn run() -> Report {
    let mut report = Report::new("Figure 12: RFID messages correlated with energy");
    // The RFID firmware idles polling the demodulator between commands;
    // its effective current is far below a compute-bound loop's.
    let device_config = DeviceConfig {
        i_active: 0.95e-3,
        ..DeviceConfig::wisp5()
    };
    // An Impinj-like inventory cadence tuned to the paper's observed
    // ~15 commands/s at the tag.
    let reader_config = ReaderConfig {
        query_period: SimTime::from_ms(260),
        rep_gap: SimTime::from_ms(65),
        reps_per_round: 3,
        ..ReaderConfig::paper_setup()
    };
    let mut sys = System::builder(device_config)
        .rfid(1.0)
        .reader_config(reader_config)
        .seed(2024)
        .build();
    sys.flash(&rfid_fw::image());
    let duration = SimTime::from_secs(20);
    sys.run_for(duration);

    let log = sys.edb().expect("attached").log();
    let mut commands = 0u64;
    let mut corrupt_cmds = 0u64;
    let mut replies = 0u64;
    for ev in log.with_tag("rfid") {
        if let DebugEvent::Rfid {
            downlink, valid, ..
        } = &ev.event
        {
            match (downlink, valid) {
                (true, true) => commands += 1,
                (true, false) => corrupt_cmds += 1,
                (false, true) => replies += 1,
                (false, false) => {}
            }
        }
    }
    let secs = duration.as_secs_f64();
    let response_rate = replies as f64 / commands.max(1) as f64 * 100.0;
    let replies_per_sec = replies as f64 / secs;
    let fw = rfid_fw::read_stats(sys.device().mem());

    report.line(format!(
        "EDB observed {commands} valid commands ({corrupt_cmds} corrupted in flight) and {replies} tag replies in {secs:.0} s"
    ));
    report.line(format!(
        "response rate: {response_rate:.0} %   (paper: 86 %)      replies/s: {replies_per_sec:.1}   (paper: ~13)"
    ));
    report.line(format!(
        "target-side software decode: {} ok / {} crc-rejected / {} replies sent",
        fw.decoded_ok, fw.decoded_bad, fw.replies
    ));
    report.line(format!(
        "tag power duty: {} turn-ons, {} brown-outs over the run",
        sys.device().turn_ons(),
        sys.device().reboots()
    ));

    // A Figure 12-style excerpt: messages + energy in one window.
    let from = SimTime::from_secs(5);
    let to = SimTime::from_secs(6);
    let mut excerpt = String::from("time_ms,kind,detail\n");
    for ev in log.window(from, to) {
        match &ev.event {
            DebugEvent::Rfid {
                label, downlink, ..
            } => {
                let dir = if *downlink { "cmd" } else { "rsp" };
                let _ = writeln!(excerpt, "{:.3},{dir},{label}", ev.at.as_millis_f64());
            }
            DebugEvent::EnergySample { v_cap, .. } => {
                let _ = writeln!(excerpt, "{:.3},vcap,{v_cap:.3}", ev.at.as_millis_f64());
            }
            _ => {}
        }
    }
    let path = write_artifact("fig12_excerpt.csv", &excerpt);
    report.line(format!("1-second message/energy excerpt: {path}"));

    report.metric("response_rate_pct", response_rate);
    report.metric("replies_per_sec", replies_per_sec);
    report.metric("commands_seen", commands as f64);
    report.metric("fw_decoded_ok", fw.decoded_ok as f64);

    // §5.1: "The amount of harvestable energy is inversely proportional
    // to this distance" — response rate vs reader distance.
    report.line(String::new());
    report.line("reader distance sweep (8 s each):".to_string());
    for distance in [1.0f64, 1.3, 1.6] {
        let mut sys = System::builder(device_config)
            .rfid(distance)
            .reader_config(reader_config)
            .seed(2024)
            .build();
        sys.flash(&rfid_fw::image());
        sys.run_for(SimTime::from_secs(8));
        let log = sys.edb().expect("attached").log();
        let (mut cmds, mut rsps) = (0u64, 0u64);
        for ev in log.with_tag("rfid") {
            if let DebugEvent::Rfid {
                downlink,
                valid: true,
                ..
            } = ev.event
            {
                if downlink {
                    cmds += 1;
                } else {
                    rsps += 1;
                }
            }
        }
        let rate = rsps as f64 / cmds.max(1) as f64 * 100.0;
        report.line(format!(
            "  {distance:.1} m: {rate:>5.1} % response rate ({rsps}/{cmds}), {} brown-outs",
            sys.device().reboots()
        ));
        report.metric(format!("rate_at_{}cm", (distance * 100.0) as u32), rate);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfid_shape_matches_paper() {
        let r = run();
        let rate = r.get("response_rate_pct");
        assert!(
            (55.0..100.0).contains(&rate),
            "response rate {rate}% out of band (paper 86%)"
        );
        let rps = r.get("replies_per_sec");
        assert!((5.0..30.0).contains(&rps), "{rps} replies/s (paper ~13)");
        assert!(r.get("commands_seen") > 100.0);
        assert!(r.get("fw_decoded_ok") > 50.0);
        // Harvestable energy falls with distance, and the response rate
        // with it (§5.1).
        assert!(r.get("rate_at_100cm") > r.get("rate_at_130cm"));
        assert!(r.get("rate_at_130cm") > r.get("rate_at_160cm"));
    }
}
