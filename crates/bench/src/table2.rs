//! **Table 2** — "Measured worst-case current that can flow over
//! electrical connections between the target device and EDB."
//!
//! The paper characterized each header connection with a source meter at
//! 0 V and 2.4 V. We repeat the measurement against the wiring model:
//! many sampled board instances, many readings per connection and state,
//! reporting min/avg/max in nA and the worst-case total.

use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_core::Wiring;

/// Number of board instances sampled.
const BOARDS: u64 = 25;
/// Readings per connection/state per board.
const READINGS: usize = 40;

/// Paper's worst-case total, nA.
const PAPER_TOTAL_NA: f64 = 836.51;

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "table2",
    title: "Table 2: EDB<->target connection leakage (nA)",
    run,
};

/// Runs the Table 2 measurement: one trial per header connection,
/// fanned out through the runner. Board instances are seeded by board
/// index (the measurement sweeps the manufacturing tolerance space, not
/// the trial seed), so the result depends only on the model.
pub fn run(runner: &Runner) -> Report {
    let mut report = Report::new(SPEC.title);
    report.line(format!(
        "{:<34} {:>6} {:>10} {:>10} {:>10}",
        "Connection", "state", "min", "avg", "max"
    ));

    let probe = Wiring::standard(0);
    let n_connections = probe.connections().len();

    let per_connection = runner.map_trials("table2", n_connections, |ctx| {
        let idx = ctx.trial;
        let name = probe.connections()[idx].name;
        let analog = idx < 2;
        let states: &[(&str, bool)] = if analog {
            &[("2.4V", true)]
        } else {
            &[("high", true), ("low", false)]
        };
        let mut lines = Vec::new();
        let mut conn_worst: f64 = 0.0;
        for (label, high) in states {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            let mut n = 0usize;
            for board in 0..BOARDS {
                let mut w = Wiring::standard(board);
                for _ in 0..READINGS {
                    let i = w.measure_na(idx, *high);
                    min = min.min(i);
                    max = max.max(i);
                    sum += i;
                    n += 1;
                }
            }
            let avg = sum / n as f64;
            conn_worst = conn_worst.max(min.abs()).max(max.abs());
            lines.push(format!(
                "{name:<34} {label:>6} {min:>10.4} {avg:>10.4} {max:>10.4}"
            ));
        }
        (lines, conn_worst)
    });

    let mut worst_case_total: f64 = 0.0;
    for (lines, conn_worst) in per_connection {
        for l in lines {
            report.line(l);
        }
        worst_case_total += conn_worst;
    }

    report.line(String::new());
    report.line(format!(
        "Worst-case total: {worst_case_total:.2} nA   (paper: {PAPER_TOTAL_NA} nA)"
    ));
    let active_ma = 0.5; // the paper's quoted typical active current
    let pct = worst_case_total * 1e-9 / (active_ma * 1e-3) * 100.0;
    report.line(format!(
        "= {pct:.3} % of a {active_ma} mA active current (paper: 0.2 %)"
    ));
    report.metric("worst_case_total_na", worst_case_total);
    report.metric("percent_of_active", pct);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::runner::Runner;

    #[test]
    fn worst_case_total_is_sub_microamp_like_the_paper() {
        let r = run(&Runner::quiet(2, 42));
        let total = r.get("worst_case_total_na");
        assert!(
            (300.0..1200.0).contains(&total),
            "worst case {total} nA out of the paper's ballpark"
        );
        assert!(r.get("percent_of_active") < 0.5);
    }

    #[test]
    fn report_has_one_row_per_connection_state() {
        let r = run(&Runner::quiet(1, 42));
        // 2 analog rows + 10 digital connections x 2 states + header +
        // 2 summary lines + blank.
        assert!(r.lines.len() >= 24, "got {} lines", r.lines.len());
    }
}
