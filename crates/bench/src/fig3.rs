//! **Figure 3** — intermittent execution under a checkpointing runtime:
//! "reboots cause control to flow unintuitively back to a previous point
//! in the execution."
//!
//! A register-resident counter survives only through `__cp_checkpoint`
//! calls. We show (a) progress is monotone across real power failures —
//! the runtime works — and (b) iterations *re-execute* after each
//! reboot: control really does return to the checkpoint, the
//! re-execution the paper's Figure 3 illustrates (and which makes
//! non-idempotent code dangerous).

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_device::{Device, DeviceConfig};
use edb_energy::SimTime;
use edb_mcu::asm::assemble;
use edb_runtime::runtime_asm;

/// The suite entry for this experiment (a single scripted scenario —
/// the runner's trial pool is not used).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig3",
    title: "Figure 3: checkpointed intermittent execution",
    run: run_spec,
};

fn run_spec(_runner: &Runner) -> Report {
    run()
}

/// Runs the checkpointed-execution characterization.
pub fn run() -> Report {
    let mut report = Report::new("Figure 3: checkpointed intermittent execution");
    // The counter bumps a *non-volatile* executed-iterations tally too,
    // so re-execution after restore is observable: executed >= counted.
    let src_text = format!(
        r#"
        .equ MIRROR, 0x6000
        .equ EXECUTED, 0x6002
        .org 0x4400
        init:
            movi sp, 0x2400
            movi r0, 0
        loop:
            add  r0, 1
            movi r1, MIRROR
            st   [r1], r0
            movi r1, EXECUTED
            ld   r2, [r1]
            add  r2, 1
            st   [r1], r2
            call __cp_checkpoint
            jmp  loop
        {runtime}
        .org 0xFFFE
        .word __cp_boot
        "#,
        runtime = runtime_asm("init")
    );
    let image = assemble(&src_text).expect("assembles");
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut src = harness::harvested(11);

    let mut regressions = 0u32;
    let mut max_seen = 0u16;
    let end = SimTime::from_secs(2);
    while dev.now() < end {
        let step = dev.step(&mut src, 0.0);
        if step.power_edge == Some(edb_energy::PowerEdge::TurnOn) && dev.reboots() > 0 {
            let v = dev.mem().peek_word(0x6000);
            if v + 2 < max_seen {
                regressions += 1;
            }
        }
        max_seen = max_seen.max(dev.mem().peek_word(0x6000));
    }
    let counted = dev.mem().peek_word(0x6000);
    let executed = dev.mem().peek_word(0x6002);
    report.line(format!(
        "reboots: {}   checkpointed counter: {counted}   loop bodies executed: {executed}",
        dev.reboots()
    ));
    report.line(format!(
        "re-executed iterations after restores: {} (executed - counted)",
        executed.saturating_sub(counted)
    ));
    report.line(format!(
        "progress regressions beyond one iteration: {regressions}"
    ));
    report.line(
        "paper: a reboot returns control to the checkpoint; work since the checkpoint re-executes"
            .to_string(),
    );
    report.metric("reboots", dev.reboots() as f64);
    report.metric("counted", counted as f64);
    report.metric("re_executed", executed.saturating_sub(counted) as f64);
    report.metric("regressions", regressions as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointing_preserves_progress_and_reexecutes() {
        let r = run();
        assert!(r.get("reboots") >= 3.0, "needs real power failures");
        assert!(r.get("counted") > 100.0, "must make progress");
        assert_eq!(r.get("regressions"), 0.0, "never loses committed work");
        assert!(
            r.get("re_executed") >= 1.0,
            "control must return to the checkpoint at least once"
        );
    }
}
