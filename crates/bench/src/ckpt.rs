//! **Ckpt** — the checkpoint-strategy zoo under harvested power.
//!
//! Sweeps every [`StrategyKind`] across a small app suite and two
//! fading harvest traces, reporting the three numbers that rank a
//! checkpointing scheme on an intermittent target:
//!
//! * **checkpoint bytes written** — total FRAM commit traffic
//!   (`CkptStats::bytes_written`); the differential strategy's whole
//!   reason to exist;
//! * **restore latency** — mean bytes a reboot has to stream back from
//!   FRAM per restore, modeled at [`RESTORE_BYTES_PER_US`];
//! * **forward progress per joule** — app progress units per millijoule
//!   actually drawn from the storage capacitor (discharge-only
//!   integral of `½·C·V²` across the run).
//!
//! The sweep grid is deterministic: cells are a fixed function of the
//! strategy × app × trace axes, each cell simulates a fixed window
//! under a named harvest trace, and results merge in grid order — the
//! manifest is identical at any `--threads`.
//!
//! Deliberately **not** part of `all_specs()`: the golden-manifest gate
//! pins the default suite byte-for-byte, and this experiment rides the
//! separate `ckpt-smoke` CI job (which also exports `BENCH_9.json`).
//!
//! [`StrategyKind`]: edb_runtime::ckpt::StrategyKind
//! [`CkptStats::bytes_written`]: edb_runtime::ckpt::CkptStats

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_device::{Device, DeviceConfig};
use edb_energy::budget::{delta_energy, WISP5_CAPACITANCE};
use edb_energy::SimTime;
use edb_runtime::ckpt::{CkptConfig, CkptEngine, StrategyKind};

/// The suite entry for this experiment (run it via the `ckpt` bin; it
/// is intentionally absent from `all_specs()`).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "ckpt",
    title: "Ckpt: strategy zoo — bytes, restore latency, progress/J",
    run: run_spec,
};

/// SRAM word every app publishes its progress counter to.
pub const PROGRESS: u16 = 0x1C10;

/// Simulated window per sweep cell, ms. Long enough for the fading
/// harvest traces to force several natural power cycles.
pub const SIM_MS: u64 = 400;

/// Checkpoint trigger interval (instructions) used across the sweep.
pub const INTERVAL: u64 = 200;

/// Modeled FRAM restore streaming rate, bytes per microsecond (word
/// reads back-to-back on an MSP430FR-class bus). Turns the measured
/// bytes-per-restore into the latency column.
pub const RESTORE_BYTES_PER_US: f64 = 4.0;

/// Named harvest traces: seeds for [`harness::harvested`]'s slow
/// fading. Fixed — the trace axis is part of the experiment's identity.
pub const TRACES: [(&str, u64); 2] = [("fade_a", 0xA11CE), ("fade_b", 0x0B0B)];

/// One app in the sweep: restart-resilient (all progress is
/// checkpointed state), publishing a monotone counter to [`PROGRESS`].
#[derive(Debug, Clone)]
pub struct CkptApp {
    /// Short name for the report grid.
    pub name: &'static str,
    /// Assembly source.
    pub source: String,
}

/// The app suite: three working-set sizes, from the differential
/// strategy's best case (one dirty word) to its stress case (a 32-word
/// SRAM matrix rewritten every pass).
pub fn apps() -> Vec<CkptApp> {
    let mut out = Vec::new();

    // Tight counter: one dirty SRAM word per iteration.
    out.push(CkptApp {
        name: "counter",
        source: "    .org 0x4400\ninit:\n    movi sp, 0x2400\n    movi r1, 0x1C10\n    \
                 ld   r0, [r1]\nloop:\n    add  r0, 1\n    st   [r1], r0\n    jmp  loop\n    \
                 .org 0xFFFE\n    .word init\n"
            .to_string(),
    });

    // Rotate-xor filter over a 32-word FRAM table, accumulator plus
    // progress in SRAM: a couple of dirty words per pass.
    let table: String = (0..32u32)
        .map(|i| format!("    .word {:#06x}\n", (i * 0x6C07 + 0x35) & 0xFFFF))
        .collect();
    out.push(CkptApp {
        name: "filter",
        source: format!(
            "    .org 0x4400\ninit:\n    movi sp, 0x2400\n    movi r7, 0x1C10\n    \
             movi r6, 0x1C20\npass:\n    movi r1, 0x7000\n    movi r2, 0\nloop:\n    \
             ld   r3, [r1]\n    ld   r4, [r6]\n    shl  r4, 1\n    xor  r4, r3\n    \
             st   [r6], r4\n    add  r1, 2\n    add  r2, 1\n    cmpi r2, 32\n    jne  loop\n    \
             ld   r0, [r7]\n    add  r0, 1\n    st   [r7], r0\n    jmp  pass\n    \
             .org 0x7000\n{table}    .org 0xFFFE\n    .word init\n"
        ),
    });

    // LCG matrix update: rewrites 32 SRAM words every pass — the
    // dirty-word tracker's worst case.
    out.push(CkptApp {
        name: "matrix",
        source: "    .org 0x4400\ninit:\n    movi sp, 0x2400\n    movi r7, 0x1C10\npass:\n    \
                 movi r1, 0x1C40\n    movi r2, 0\nloop:\n    ld   r3, [r1]\n    mul  r3, 31\n    \
                 add  r3, 7\n    st   [r1], r3\n    add  r1, 2\n    add  r2, 1\n    \
                 cmpi r2, 32\n    jne  loop\n    ld   r0, [r7]\n    add  r0, 1\n    \
                 st   [r7], r0\n    jmp  pass\n    .org 0xFFFE\n    .word init\n"
            .to_string(),
    });

    out
}

/// One sweep cell's measurements.
#[derive(Debug, Clone, Default)]
pub struct CellOut {
    /// High-water progress counter observed while powered.
    pub progress: u64,
    /// Instructions retired across the window.
    pub instructions: u64,
    /// Joules drawn from the capacitor (discharge-only integral).
    pub joules: f64,
    /// Natural power cycles the trace forced.
    pub reboots: u64,
    /// Checkpoint commits.
    pub commits: u64,
    /// FRAM bytes written by commits.
    pub bytes_written: u64,
    /// Restores performed at turn-on.
    pub restores: u64,
    /// FRAM bytes read back across all restores.
    pub restore_bytes: u64,
}

/// Runs one (strategy, app, trace) cell for [`SIM_MS`] under harvested
/// power with the engine observing every step.
pub fn run_cell(app: &CkptApp, kind: StrategyKind, trace_seed: u64, sim_ms: u64) -> CellOut {
    let image = edb_mcu::asm::assemble(&app.source)
        .unwrap_or_else(|e| panic!("app `{}` does not assemble: {e}", app.name));
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut engine = CkptEngine::new(CkptConfig::new(kind).interval(INTERVAL));
    engine.attach(dev.mem_mut());
    let mut h = harness::harvested(trace_seed);
    dev.set_v_cap(3.0);

    let end = SimTime::from_ms(sim_ms);
    let mut out = CellOut::default();
    let mut v_prev = dev.v_cap();
    while dev.now() < end {
        let step = dev.step(&mut h, 0.0);
        engine.observe(&mut dev, step.power_edge);
        let v = dev.v_cap();
        if v < v_prev {
            out.joules += delta_energy(WISP5_CAPACITANCE, v_prev, v);
        }
        v_prev = v;
        if dev.powered() {
            out.progress = out.progress.max(u64::from(dev.mem().peek_word(PROGRESS)));
        }
    }
    let stats = engine.stats();
    out.instructions = dev.total_instructions();
    out.reboots = dev.reboots();
    out.commits = stats.commits;
    out.bytes_written = stats.bytes_written;
    out.restores = stats.restores;
    out.restore_bytes = stats.restore_bytes;
    out
}

fn run_spec(runner: &Runner) -> Report {
    run(runner)
}

/// Runs the full sweep and builds the report.
pub fn run(runner: &Runner) -> Report {
    run_with(runner, SIM_MS)
}

/// The sweep at an explicit per-cell window (tests use a short one;
/// the suite identity is [`SIM_MS`]).
pub fn run_with(runner: &Runner, sim_ms: u64) -> Report {
    let apps = apps();
    let mut grid = Vec::new();
    for kind in StrategyKind::ALL {
        for (app_idx, _) in apps.iter().enumerate() {
            for &(trace, seed) in &TRACES {
                grid.push((kind, app_idx, trace, seed));
            }
        }
    }
    let cells = runner.map_trials("ckpt", grid.len(), |ctx| {
        let (kind, app_idx, _, seed) = grid[ctx.trial];
        run_cell(&apps[app_idx], kind, seed, sim_ms)
    });

    let mut report = Report::new(SPEC.title);
    report.line(format!(
        "{} strategies x {} apps x {} traces, {sim_ms} ms harvested power each, \
         commit interval {INTERVAL} instructions",
        StrategyKind::ALL.len(),
        apps.len(),
        TRACES.len()
    ));
    report.line(String::new());
    report.line(
        "strategy      app      trace   progress  commits  restores   ckpt_bytes  reboots"
            .to_string(),
    );

    let mut instructions_total = 0u64;
    for kind in StrategyKind::ALL {
        let mut bytes = 0u64;
        let mut restores = 0u64;
        let mut restore_bytes = 0u64;
        let mut progress = 0u64;
        let mut joules = 0.0f64;
        for ((k, app_idx, trace, _), cell) in grid.iter().zip(&cells) {
            if *k != kind {
                continue;
            }
            report.line(format!(
                "{:<13} {:<8} {:<7} {:>8} {:>8} {:>9} {:>12} {:>8}",
                kind.name(),
                apps[*app_idx].name,
                trace,
                cell.progress,
                cell.commits,
                cell.restores,
                cell.bytes_written,
                cell.reboots
            ));
            bytes += cell.bytes_written;
            restores += cell.restores;
            restore_bytes += cell.restore_bytes;
            progress += cell.progress;
            joules += cell.joules;
            instructions_total += cell.instructions;
        }
        let restore_us = if restores > 0 {
            restore_bytes as f64 / restores as f64 / RESTORE_BYTES_PER_US
        } else {
            0.0
        };
        let per_mj = if joules > 0.0 {
            progress as f64 / (joules * 1e3)
        } else {
            0.0
        };
        report.metric(format!("ckpt_bytes_{}", kind.name()), bytes as f64);
        report.metric(format!("restore_us_{}", kind.name()), restore_us);
        report.metric(format!("progress_per_mj_{}", kind.name()), per_mj);
    }
    // Simulated work for the BENCH_9 throughput snapshot (the trend
    // export divides by this experiment's wall time when no fleet
    // experiment is in the manifest).
    report.metric("tag_cycles_total", instructions_total as f64);
    report.line(String::new());
    report.line(format!(
        "restore latency modeled at {RESTORE_BYTES_PER_US} FRAM bytes/us; \
         progress/mJ integrates capacitor discharge only"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    /// Debug-build smoke over a shortened window: every strategy makes
    /// progress under harvested power, and the differential strategy
    /// writes fewer commit bytes than a full dump at the same triggers.
    #[test]
    fn differential_writes_fewer_bytes_than_full_dump() {
        let app = &apps()[0];
        let full = run_cell(app, StrategyKind::FullDump, TRACES[0].1, 80);
        let diff = run_cell(app, StrategyKind::Differential, TRACES[0].1, 80);
        let spec = run_cell(app, StrategyKind::Speculative, TRACES[0].1, 80);
        for (name, cell) in [("full", &full), ("diff", &diff), ("spec", &spec)] {
            assert!(cell.progress > 0, "{name}: no forward progress");
            assert!(cell.joules > 0.0, "{name}: no energy drawn");
        }
        assert!(full.commits > 0, "full dump never committed");
        assert!(diff.commits > 0, "differential never committed");
        assert!(
            diff.bytes_written < full.bytes_written,
            "differential ({} B) must beat full dump ({} B)",
            diff.bytes_written,
            full.bytes_written
        );
    }

    /// The sweep's aggregate metrics exist for every strategy and the
    /// report is deterministic at different thread counts.
    #[test]
    fn report_carries_per_strategy_metrics() {
        let report = run_with(&Runner::new(2, 7), 60);
        for kind in StrategyKind::ALL {
            let bytes = report.get(&format!("ckpt_bytes_{}", kind.name()));
            assert!(bytes > 0.0, "{}: no checkpoint traffic", kind.name());
            assert!(report.get(&format!("progress_per_mj_{}", kind.name())) > 0.0);
        }
        assert!(report.get("tag_cycles_total") > 0.0);
    }
}
