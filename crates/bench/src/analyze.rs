//! **Analyze** — static WCEC predictions raced against simulated ground
//! truth.
//!
//! Three validations of `edb-analyze`, each against the cycle-accurate
//! simulator:
//!
//! * **predicted vs measured** — a suite of bounded kernels (counted
//!   loops, memory traffic, leaf calls, nesting) is analyzed statically
//!   and then executed to `halt` on a fully charged capacitor with a
//!   dead harvester; the static WCEC bound must cover the measured
//!   cycle count, and the predicted worst-case energy is compared
//!   against the measured capacitor discharge with the relative error
//!   published as `rel_err_*` metrics;
//! * **app-suite CFG stats** — every firmware in `edb-apps` is pushed
//!   through CFG recovery; real apps spin forever, so the honest output
//!   is block/instruction counts, unresolved-edge counts, and the
//!   unbounded verdict's reason (never a fabricated bound);
//! * **advisory validation** — the checkpoint-placement advisory's
//!   suggested interval is fed, literally, to
//!   [`CkptConfig::interval`] and the `ckpt` app suite must sustain
//!   forward progress under harvested power at that trigger rate.
//!
//! Deliberately **not** part of `all_specs()`: the golden-manifest gate
//! pins the default suite byte-for-byte, and this experiment rides the
//! separate `analyze-smoke` CI job.
//!
//! [`CkptConfig::interval`]: edb_runtime::ckpt::CkptConfig::interval

use crate::ckpt::{self, CkptApp, PROGRESS};
use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_analyze::{analyze_image, instr_cycles, AnalysisReport};
use edb_device::{Device, DeviceConfig};
use edb_energy::budget::{delta_energy, WISP5_CAPACITANCE};
use edb_energy::{ConstantCurrent, SimTime};
use edb_mcu::{CpuState, Image};
use edb_runtime::ckpt::{CkptConfig, CkptEngine, StrategyKind};

/// The suite entry for this experiment (run it via the `analyze` bin;
/// it is intentionally absent from `all_specs()`).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "analyze",
    title: "Analyze: static WCEC vs simulated ground truth",
    run: run_spec,
};

/// Capacitor voltage every kernel starts from (fully charged).
pub const V_START: f64 = 3.0;

/// Step budget per measured kernel run; far above any kernel's bound.
const MAX_STEPS: u64 = 2_000_000;

/// Harvested window for the advisory validation cells, ms.
pub const ADVISORY_SIM_MS: u64 = 400;

/// One bounded kernel: terminating by construction, in the counted-loop
/// idiom the WCEC pass verifies, so the static bound is finite and the
/// worst path *is* the actual path.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short name for the report grid and metric keys.
    pub name: &'static str,
    /// Assembly source, ending in `halt`.
    pub source: &'static str,
}

/// The bounded-kernel suite.
pub fn kernels() -> Vec<Kernel> {
    vec![
        // Pure cycle counting: 64 iterations of nops.
        Kernel {
            name: "count64",
            source: ".org 0x4400\nstart:\n    movi sp, 0x2400\n    movi r10, 0\nbody:\n    \
                     nop\n    nop\n    add  r10, 1\n    cmpi r10, 64\n    jne  body\n    halt\n\
                     .org 0xFFFE\n.word start\n",
        },
        // Memory traffic: a read-modify-write per iteration.
        Kernel {
            name: "mem32",
            source: ".org 0x4400\nstart:\n    movi sp, 0x2400\n    movi r1, 0x1C40\n    \
                     movi r10, 0\nbody:\n    ld   r3, [r1]\n    add  r3, 5\n    \
                     st   [r1], r3\n    add  r10, 1\n    cmpi r10, 32\n    jne  body\n    halt\n\
                     .org 0xFFFE\n.word start\n",
        },
        // Call costs: a leaf function invoked from a counted loop.
        Kernel {
            name: "calls16",
            source: ".org 0x4400\nstart:\n    movi sp, 0x2400\n    movi r10, 0\nbody:\n    \
                     call leaf\n    add  r10, 1\n    cmpi r10, 16\n    jne  body\n    halt\n\
                     leaf:\n    add  r7, 1\n    mul  r7, 3\n    ret\n\
                     .org 0xFFFE\n.word start\n",
        },
        // Nesting: 8 outer x 12 inner iterations.
        Kernel {
            name: "nested",
            source: ".org 0x4400\nstart:\n    movi sp, 0x2400\n    movi r10, 0\nouter:\n    \
                     nop\n    movi r11, 0\ninner:\n    add  r6, 1\n    add  r11, 1\n    \
                     cmpi r11, 12\n    jne  inner\n    add  r10, 1\n    cmpi r10, 8\n    \
                     jne  outer\n    halt\n.org 0xFFFE\n.word start\n",
        },
    ]
}

/// Ground truth for one kernel: executed to `halt` from [`V_START`] on
/// a dead harvester (the cleanest measurement — every joule drawn comes
/// out of the capacitor).
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured {
    /// Cycles retired (summed from the same per-instruction table the
    /// analyzer uses, so the comparison is apples-to-apples).
    pub cycles: u64,
    /// Joules drawn from the capacitor across the run.
    pub energy: f64,
    /// Whether the kernel reached `halt` within the step budget.
    pub halted: bool,
}

/// Runs `image` to completion and measures cycle count and capacitor
/// discharge.
pub fn measure(image: &Image) -> Measured {
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(image);
    dev.set_v_cap(V_START);
    let mut dead = ConstantCurrent::new(0.0);
    let mut out = Measured::default();
    let v0 = dev.v_cap();
    for _ in 0..MAX_STEPS {
        let step = dev.step(&mut dead, 0.0);
        if let Some(instr) = step.retired {
            out.cycles += u64::from(instr_cycles(&instr));
        }
        if matches!(dev.cpu().state(), CpuState::Halted) {
            out.halted = true;
            break;
        }
    }
    out.energy = delta_energy(WISP5_CAPACITANCE, v0, dev.v_cap());
    out
}

/// One kernel's static report next to its ground truth.
#[derive(Debug, Clone)]
pub struct KernelOut {
    /// The static analysis.
    pub report: AnalysisReport,
    /// The measured run.
    pub measured: Measured,
}

/// Analyzes and measures one kernel.
pub fn run_kernel(kernel: &Kernel) -> KernelOut {
    let image = edb_mcu::asm::assemble(kernel.source)
        .unwrap_or_else(|e| panic!("kernel `{}` does not assemble: {e}", kernel.name));
    let report = analyze_image(kernel.name, &image, &DeviceConfig::wisp5(), V_START);
    let measured = measure(&image);
    KernelOut { report, measured }
}

/// Signed relative error of a prediction against ground truth
/// (positive when the static side over-predicts, which is the only
/// sound direction).
pub fn rel_err(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        return 0.0;
    }
    (predicted - measured) / measured
}

/// One advisory-validation cell: the `ckpt` app run under harvested
/// power with the *advised* trigger interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvisoryOut {
    /// The interval the analyzer suggested, instructions.
    pub interval: u64,
    /// High-water progress counter observed while powered.
    pub progress: u64,
    /// Checkpoint commits at the advised rate.
    pub commits: u64,
    /// Natural power cycles the trace forced.
    pub reboots: u64,
}

/// Analyzes `app`, feeds the advised interval to [`CkptConfig`], and
/// runs the differential strategy under harvested power.
pub fn run_advisory(app: &CkptApp, trace_seed: u64, sim_ms: u64) -> AdvisoryOut {
    let image = edb_mcu::asm::assemble(&app.source)
        .unwrap_or_else(|e| panic!("app `{}` does not assemble: {e}", app.name));
    let report = analyze_image(app.name, &image, &DeviceConfig::wisp5(), V_START);
    let interval = report.ckpt_advice.interval_instructions;

    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut engine =
        CkptEngine::new(CkptConfig::new(StrategyKind::Differential).interval(interval));
    engine.attach(dev.mem_mut());
    let mut h = harness::harvested(trace_seed);
    dev.set_v_cap(V_START);

    let end = SimTime::from_ms(sim_ms);
    let mut out = AdvisoryOut {
        interval,
        ..AdvisoryOut::default()
    };
    while dev.now() < end {
        let step = dev.step(&mut h, 0.0);
        engine.observe(&mut dev, step.power_edge);
        if dev.powered() {
            out.progress = out.progress.max(u64::from(dev.mem().peek_word(PROGRESS)));
        }
    }
    out.commits = engine.stats().commits;
    out.reboots = dev.reboots();
    out
}

fn run_spec(runner: &Runner) -> Report {
    run(runner)
}

/// Runs the full experiment and builds the report.
pub fn run(runner: &Runner) -> Report {
    run_with(runner, ADVISORY_SIM_MS)
}

/// The experiment at an explicit advisory window (tests use a short
/// one; the suite identity is [`ADVISORY_SIM_MS`]).
pub fn run_with(runner: &Runner, advisory_sim_ms: u64) -> Report {
    let suite = kernels();
    let kernel_outs = runner.map_trials("analyze/kernels", suite.len(), |ctx| {
        run_kernel(&suite[ctx.trial])
    });

    let mut report = Report::new(SPEC.title);
    report.line(format!(
        "{} bounded kernels, static WCEC vs dead-harvester run from {V_START} V",
        suite.len()
    ));
    report.line(String::new());
    report.line("kernel     pred_cycles  meas_cycles  pred_uJ  meas_uJ  rel_err_E".to_string());

    let mut max_err_cycles = 0.0f64;
    let mut max_err_energy = 0.0f64;
    for (kernel, out) in suite.iter().zip(&kernel_outs) {
        let pred_cycles = out
            .report
            .wcec_cycles
            .unwrap_or_else(|| panic!("kernel `{}` reported unbounded", kernel.name));
        let pred_energy = out.report.wcec_energy.unwrap_or(0.0);
        let m = &out.measured;
        let err_c = rel_err(pred_cycles as f64, m.cycles as f64);
        let err_e = rel_err(pred_energy, m.energy);
        report.line(format!(
            "{:<10} {:>11} {:>12} {:>8.2} {:>8.2} {:>+9.4}",
            kernel.name,
            pred_cycles,
            m.cycles,
            pred_energy * 1e6,
            m.energy * 1e6,
            err_e
        ));
        report.metric(format!("pred_cycles_{}", kernel.name), pred_cycles as f64);
        report.metric(format!("meas_cycles_{}", kernel.name), m.cycles as f64);
        report.metric(format!("rel_err_cycles_{}", kernel.name), err_c);
        report.metric(format!("rel_err_energy_{}", kernel.name), err_e);
        max_err_cycles = max_err_cycles.max(err_c.abs());
        max_err_energy = max_err_energy.max(err_e.abs());
    }
    report.metric("rel_err_cycles_max", max_err_cycles);
    report.metric("rel_err_energy_max", max_err_energy);

    report.line(String::new());
    report.line(
        "app suite CFG recovery (apps spin forever: unbounded is the honest verdict)".to_string(),
    );
    let apps: Vec<(&str, Image)> = vec![
        ("fib", edb_apps::fib::image(edb_apps::fib::Variant::Release)),
        (
            "activity",
            edb_apps::activity::image(edb_apps::activity::Variant::NoPrint),
        ),
        (
            "linked_list",
            edb_apps::linked_list::image(edb_apps::linked_list::Variant::Plain),
        ),
        ("rfid_fw", edb_apps::rfid_fw::image()),
    ];
    let mut unresolved_total = 0usize;
    for (name, image) in &apps {
        let r = analyze_image(name, image, &DeviceConfig::wisp5(), V_START);
        report.line(format!(
            "  {:<12} {:>4} blocks, {:>4} instrs, {} unresolved, bounded: {}",
            name,
            r.blocks,
            r.instructions,
            r.unresolved.len(),
            r.wcec_cycles.is_some()
        ));
        report.metric(format!("cfg_blocks_{name}"), r.blocks as f64);
        report.metric(format!("cfg_unresolved_{name}"), r.unresolved.len() as f64);
        unresolved_total += r.unresolved.len();
    }
    report.metric("cfg_unresolved_total", unresolved_total as f64);

    report.line(String::new());
    report.line(format!(
        "advisory validation: CkptConfig::interval(advised), differential strategy, \
         {advisory_sim_ms} ms harvested"
    ));
    let apps = ckpt::apps();
    let advisory_outs = runner.map_trials("analyze/advisory", apps.len(), |ctx| {
        run_advisory(&apps[ctx.trial], ckpt::TRACES[0].1, advisory_sim_ms)
    });
    for (app, out) in apps.iter().zip(&advisory_outs) {
        report.line(format!(
            "  {:<8} interval {:>6} instrs: progress {:>6}, {:>4} commits, {:>3} reboots",
            app.name, out.interval, out.progress, out.commits, out.reboots
        ));
        report.metric(
            format!("advisory_interval_{}", app.name),
            out.interval as f64,
        );
        report.metric(
            format!("advisory_progress_{}", app.name),
            out.progress as f64,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    /// The soundness direction, on ground truth: the static bound must
    /// cover the measured run, and for these deterministic kernels
    /// (worst path == actual path) it must be tight.
    #[test]
    fn static_bound_covers_measured_ground_truth() {
        for kernel in kernels() {
            let out = run_kernel(&kernel);
            let m = &out.measured;
            assert!(m.halted, "{}: never halted", kernel.name);
            let pred = out
                .report
                .wcec_cycles
                .unwrap_or_else(|| panic!("{}: unbounded", kernel.name));
            assert!(
                pred >= m.cycles,
                "{}: bound {pred} below measured {}",
                kernel.name,
                m.cycles
            );
            assert!(
                rel_err(pred as f64, m.cycles as f64) < 0.01,
                "{}: bound {pred} not tight vs measured {}",
                kernel.name,
                m.cycles
            );
            let pred_e = out.report.wcec_energy.expect("energy prediction");
            assert!(
                rel_err(pred_e, m.energy).abs() < 0.05,
                "{}: predicted {pred_e} J vs measured {} J",
                kernel.name,
                m.energy
            );
        }
    }

    /// Feeding the advised interval to the checkpoint engine sustains
    /// forward progress under harvested power.
    #[test]
    fn advised_interval_sustains_progress() {
        let app = &ckpt::apps()[0];
        let out = run_advisory(app, ckpt::TRACES[0].1, 80);
        assert!(out.interval >= 1);
        assert!(out.progress > 0, "no forward progress at advised interval");
        assert!(out.commits > 0, "advised interval never triggered a commit");
    }

    /// The report carries the manifest metrics and is deterministic
    /// across thread counts.
    #[test]
    fn report_carries_rel_err_metrics() {
        let report = run_with(&Runner::new(2, 7), 60);
        assert!(report.get("rel_err_energy_max") < 0.05);
        assert!(report.get("rel_err_cycles_max") < 0.01);
        assert!(report.get("cfg_blocks_fib") > 0.0);
        for app in ckpt::apps() {
            assert!(report.get(&format!("advisory_interval_{}", app.name)) >= 1.0);
        }
    }
}
