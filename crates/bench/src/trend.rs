//! Performance-trend snapshots and the CI regression gate.
//!
//! Every benchmark run can be exported as a [`BenchSnapshot`]: the
//! per-experiment wall times from the run manifest, the fleet's
//! tag·cycles/sec throughput, and enough provenance (commit, date,
//! host) to make the number meaningful later. Snapshots accumulate in
//! a [`TrendFile`] (`BENCH_7.json`); the CI `bench-trend` step
//! downloads the previous run's file, appends the fresh snapshot, and
//! **fails the build** when throughput regressed more than the
//! threshold against the best recorded run.
//!
//! Wall-clock numbers only compare within one machine class, so the
//! gate matches snapshots by `host`: a laptop snapshot committed to
//! the repo (host `local-dev`) can never fail a CI runner (host
//! `github-ci`), and vice versa. A run with no same-host baseline
//! passes trivially — it *becomes* the baseline.

use crate::runner::Manifest;
use serde::{Deserialize, Serialize};

/// Current schema tag; bump on breaking layout changes.
pub const TREND_SCHEMA: &str = "edb-bench-trend/1";

/// Wall time of one experiment in one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentWall {
    /// Experiment name (`fleet`, `fig12`, ...).
    pub name: String,
    /// Wall-clock seconds the experiment took.
    pub wall_s: f64,
}

/// One benchmark run, pinned to a commit, date, and machine class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Commit hash the run was built from.
    pub commit: String,
    /// ISO-8601 date (UTC) of the run.
    pub date: String,
    /// Machine class (`github-ci`, `local-dev`, ...): the gate only
    /// compares snapshots sharing a host.
    pub host: String,
    /// End-to-end wall seconds of the whole suite run.
    pub total_wall_s: f64,
    /// Fleet throughput: simulated tag·cycles per wall second.
    pub tag_cycles_per_sec: f64,
    /// Per-experiment wall times, in manifest order.
    pub experiments: Vec<ExperimentWall>,
}

/// The accumulating trend artifact (`BENCH_7.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendFile {
    /// Schema tag — [`TREND_SCHEMA`].
    pub schema: String,
    /// Snapshots in append order (oldest first).
    pub snapshots: Vec<BenchSnapshot>,
}

impl TrendFile {
    /// An empty trend file at the current schema.
    pub fn new() -> Self {
        TrendFile {
            schema: TREND_SCHEMA.to_string(),
            snapshots: Vec::new(),
        }
    }

    /// Parses a trend file, rejecting unknown schemas.
    pub fn parse(json: &str) -> Result<Self, String> {
        let file: TrendFile =
            serde_json::from_str(json).map_err(|e| format!("malformed trend file: {e}"))?;
        if file.schema != TREND_SCHEMA {
            return Err(format!(
                "unsupported trend schema {:?} (expected {TREND_SCHEMA:?})",
                file.schema
            ));
        }
        Ok(file)
    }

    /// Serializes with stable, human-diffable formatting.
    pub fn render(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("trend file serializes");
        s.push('\n');
        s
    }
}

impl Default for TrendFile {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds a snapshot from a run [`Manifest`].
///
/// Throughput is `Σ tag_cycles_* metrics of the throughput experiment
/// ÷ that experiment's wall time` — simulated work over real time. The
/// throughput experiment is `fleet` when the manifest has one, falling
/// back to `ckpt` (the checkpoint-strategy sweep exports `BENCH_9.json`
/// from a manifest with no fleet run). Runs with neither get zero
/// throughput (and will pass the gate trivially, since zero can't be a
/// best run while any real one exists... the gate also skips
/// zero-throughput snapshots as baselines).
pub fn snapshot_from_manifest(
    manifest: &Manifest,
    commit: &str,
    date: &str,
    host: &str,
) -> BenchSnapshot {
    let experiments: Vec<ExperimentWall> = manifest
        .experiments
        .iter()
        .map(|entry| ExperimentWall {
            name: entry.name.clone(),
            wall_s: entry.wall_s,
        })
        .collect();
    let source = manifest
        .experiments
        .iter()
        .find(|e| e.name == "fleet")
        .or_else(|| manifest.experiments.iter().find(|e| e.name == "ckpt"));
    let (tag_cycles, source_wall) = source
        .map(|entry| {
            let cycles: f64 = entry
                .metrics
                .iter()
                .filter(|(k, _)| k.starts_with("tag_cycles_"))
                .map(|(_, v)| *v)
                .sum();
            (cycles, entry.wall_s)
        })
        .unwrap_or((0.0, 0.0));
    BenchSnapshot {
        commit: commit.to_string(),
        date: date.to_string(),
        host: host.to_string(),
        total_wall_s: manifest.total_wall_s,
        tag_cycles_per_sec: if source_wall > 0.0 {
            tag_cycles / source_wall
        } else {
            0.0
        },
        experiments,
    }
}

/// Outcome of the regression gate.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// No usable same-host baseline: the new snapshot seeds the trend.
    NoBaseline,
    /// Compared against the best same-host run.
    Compared {
        /// Best prior tag·cycles/sec on this host.
        best: f64,
        /// Commit of that best run.
        best_commit: String,
        /// `new / best` — above `1 − threshold` passes.
        ratio: f64,
        /// Whether the gate passes.
        pass: bool,
    },
}

impl GateOutcome {
    /// Whether the build should go green.
    pub fn pass(&self) -> bool {
        match self {
            GateOutcome::NoBaseline => true,
            GateOutcome::Compared { pass, .. } => *pass,
        }
    }
}

/// Gates `new` against the best same-host snapshot in `history`.
///
/// `threshold` is the tolerated fractional drop (0.10 = fail when more
/// than 10 % below the best recorded throughput). Zero-throughput
/// snapshots (runs without the fleet experiment) never form a
/// baseline.
pub fn gate(history: &[BenchSnapshot], new: &BenchSnapshot, threshold: f64) -> GateOutcome {
    let best = history
        .iter()
        .filter(|s| s.host == new.host && s.tag_cycles_per_sec > 0.0)
        .max_by(|a, b| {
            a.tag_cycles_per_sec
                .partial_cmp(&b.tag_cycles_per_sec)
                .expect("throughputs are finite")
        });
    match best {
        None => GateOutcome::NoBaseline,
        Some(b) => {
            let ratio = new.tag_cycles_per_sec / b.tag_cycles_per_sec;
            GateOutcome::Compared {
                best: b.tag_cycles_per_sec,
                best_commit: b.commit.clone(),
                ratio,
                pass: ratio >= 1.0 - threshold,
            }
        }
    }
}

/// Unix seconds → ISO-8601 UTC date (`YYYY-MM-DD`), no libc `gmtime`.
///
/// Uses Howard Hinnant's `civil_from_days` algorithm; exact over the
/// whole u64 range of realistic timestamps.
pub fn civil_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(host: &str, rate: f64, commit: &str) -> BenchSnapshot {
        BenchSnapshot {
            commit: commit.to_string(),
            date: "2026-08-09".to_string(),
            host: host.to_string(),
            total_wall_s: 10.0,
            tag_cycles_per_sec: rate,
            experiments: vec![ExperimentWall {
                name: "fleet".to_string(),
                wall_s: 1.0,
            }],
        }
    }

    #[test]
    fn empty_history_passes_trivially() {
        let new = snap("github-ci", 1e10, "abc");
        assert_eq!(gate(&[], &new, 0.10), GateOutcome::NoBaseline);
        assert!(gate(&[], &new, 0.10).pass());
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let history = vec![
            snap("github-ci", 1e10, "aaa"),
            snap("github-ci", 8e9, "bbb"),
        ];
        // 9.1e9 vs best 1e10: 9% drop — passes at 10%.
        assert!(gate(&history, &snap("github-ci", 9.1e9, "ccc"), 0.10).pass());
        // 8.9e9: 11% drop — fails.
        let out = gate(&history, &snap("github-ci", 8.9e9, "ddd"), 0.10);
        assert!(!out.pass());
        match out {
            GateOutcome::Compared {
                best, best_commit, ..
            } => {
                assert_eq!(best, 1e10);
                assert_eq!(best_commit, "aaa");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn other_hosts_never_form_the_baseline() {
        // A fast laptop snapshot must not gate a CI runner.
        let history = vec![snap("local-dev", 1e12, "aaa")];
        let out = gate(&history, &snap("github-ci", 1e9, "bbb"), 0.10);
        assert_eq!(out, GateOutcome::NoBaseline);
    }

    #[test]
    fn zero_throughput_runs_are_not_baselines() {
        let history = vec![snap("github-ci", 0.0, "aaa")];
        assert_eq!(
            gate(&history, &snap("github-ci", 1e9, "bbb"), 0.10),
            GateOutcome::NoBaseline
        );
    }

    #[test]
    fn ckpt_manifests_fall_back_for_throughput() {
        use crate::runner::{Manifest, ManifestEntry};
        let entry = |name: &str, wall_s: f64, cycles: f64| ManifestEntry {
            name: name.to_string(),
            title: name.to_string(),
            wall_s,
            trials: 1,
            metrics: [("tag_cycles_total".to_string(), cycles)].into(),
        };
        let manifest = |experiments: Vec<ManifestEntry>| Manifest {
            root_seed: 42,
            threads: 1,
            total_wall_s: 5.0,
            experiments,
            obs: None,
        };
        // No fleet run: the ckpt experiment's cycles form the snapshot.
        let m = manifest(vec![entry("ckpt", 2.0, 1e6)]);
        let s = snapshot_from_manifest(&m, "abc", "2026-08-09", "ci");
        assert!((s.tag_cycles_per_sec - 5e5).abs() < 1e-6);
        // Fleet present: it wins even with a ckpt entry alongside.
        let m = manifest(vec![entry("ckpt", 2.0, 1e6), entry("fleet", 1.0, 1e7)]);
        let s = snapshot_from_manifest(&m, "abc", "2026-08-09", "ci");
        assert!((s.tag_cycles_per_sec - 1e7).abs() < 1e-3);
        assert_eq!(s.experiments.len(), 2);
        // Neither: zero throughput (never a baseline).
        let m = manifest(vec![]);
        let s = snapshot_from_manifest(&m, "abc", "2026-08-09", "ci");
        assert_eq!(s.tag_cycles_per_sec, 0.0);
    }

    #[test]
    fn trend_file_round_trips() {
        let mut f = TrendFile::new();
        f.snapshots.push(snap("github-ci", 1e10, "abc"));
        let parsed = TrendFile::parse(&f.render()).expect("parses");
        assert_eq!(parsed, f);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let json = r#"{"schema": "edb-bench-trend/99", "snapshots": []}"#;
        assert!(TrendFile::parse(json).is_err());
    }

    #[test]
    fn civil_date_matches_known_values() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_399), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(civil_date(1_786_233_600), "2026-08-09");
        // Leap day 2024-02-29.
        assert_eq!(civil_date(1_709_164_800), "2024-02-29");
        // Century non-leap boundary.
        assert_eq!(civil_date(951_782_400), "2000-02-29");
    }
}
