//! **Figure 11** — "Energy profile of one loop iteration in the activity
//! recognition application when instrumented with different output
//! mechanisms": the CDF of per-iteration energy cost.

use crate::runner::{ExperimentSpec, Runner};
use crate::table4::profile_variant;
use crate::{write_artifact, Report};
use edb_apps::activity::Variant;
use edb_energy::Cdf;
use std::fmt::Write as _;

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig11",
    title: "Figure 11: per-iteration energy CDF by output mechanism",
    run,
};

/// The figure's series, in legend order.
const SERIES: [(&str, Variant); 3] = [
    ("No print", Variant::NoPrint),
    ("UART printf", Variant::UartPrintf),
    ("EDB printf", Variant::EdbPrintf),
];

/// Runs the Figure 11 experiment: the three variants profile in
/// parallel, sharing one root-derived harvested trace so the CDFs stay
/// comparable.
pub fn run(runner: &Runner) -> Report {
    let mut report = Report::new(SPEC.title);
    let mut csv = String::from("energy_pct,cdf,variant\n");
    let mut medians = Vec::new();

    let shared_seed = runner.seed_for("fig11", 0);
    let profiles = runner.map_trials("fig11", SERIES.len(), |ctx| {
        profile_variant(SERIES[ctx.trial].1, shared_seed)
    });

    for ((label, _), profile) in SERIES.iter().zip(&profiles) {
        let energies: Vec<f64> = profile
            .completed
            .iter()
            .map(|it| it.energy_percent())
            .collect();
        assert!(
            energies.len() > 50,
            "{label}: too few completed iterations ({})",
            energies.len()
        );
        let cdf = Cdf::of(energies);
        let q25 = cdf.quantile(0.25);
        let q50 = cdf.quantile(0.50);
        let q75 = cdf.quantile(0.75);
        report.line(format!(
            "{label:<12} n={:<6} energy%% quartiles: {q25:.2} / {q50:.2} / {q75:.2}",
            cdf.len()
        ));
        medians.push((label, q50));
        // Decimated CDF points for plotting.
        let n = cdf.len();
        for (i, (x, p)) in cdf.points().enumerate() {
            if i % (n / 60 + 1) == 0 || i + 1 == n {
                let _ = writeln!(csv, "{x:.4},{p:.4},{label}");
            }
        }
        let tag = label.to_lowercase().replace(' ', "_");
        report.metric(format!("{tag}_median_pct"), q50);
    }
    report.line(
        "paper: No print ≈ 3 %, EDB printf slightly right of it, UART printf far right (≈5-6 %)"
            .to_string(),
    );
    let path = write_artifact("fig11_cdf.csv", &csv);
    report.line(format!("CDF series: {path}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::runner::Runner;

    #[test]
    fn cdf_ordering_matches_figure_11() {
        let r = run(&Runner::quiet(3, 42));
        let no_print = r.get("no_print_median_pct");
        let uart = r.get("uart_printf_median_pct");
        let edb = r.get("edb_printf_median_pct");
        assert!(
            uart > no_print + 0.5,
            "UART printf ({uart}%) must sit well right of no-print ({no_print}%)"
        );
        assert!(
            edb < uart,
            "EDB printf ({edb}%) must cost less energy than UART printf ({uart}%)"
        );
        assert!(
            (edb - no_print).abs() < 1.5,
            "EDB printf ({edb}%) stays near no-print ({no_print}%)"
        );
    }
}
