//! **Figures 8 & 9** — instrumentation of arbitrary energy cost via
//! energy guards.
//!
//! The Fibonacci app's debug build runs an O(n) consistency check each
//! pass. Without guards the check eventually consumes the entire
//! charge-discharge budget and the main loop starves (Figure 9 top).
//! With the check wrapped in `__edb_guard_begin`/`__edb_guard_end` it
//! runs on tethered power and the main loop always executes (bottom).

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_apps::fib::{self, Variant};
use edb_core::System;
use edb_device::DeviceConfig;
use edb_energy::SimTime;

/// The suite entry for this experiment (a single scripted scenario —
/// the runner's trial pool is not used).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig9",
    title: "Figure 9: consistency check without / with energy guards",
    run: run_spec,
};

fn run_spec(_runner: &Runner) -> Report {
    run()
}

/// A hungrier compute current halves the per-cycle budget, pulling the
/// starvation point toward the paper's ~555 items without changing the
/// phenomenon (see DESIGN.md).
fn device_config() -> DeviceConfig {
    DeviceConfig {
        i_active: 4.4e-3,
        ..DeviceConfig::wisp5()
    }
}

fn run_variant(variant: Variant, budget: SimTime) -> (u16, u16, bool, u64, u64) {
    let mut sys = System::builder(device_config())
        .harvester(harness::harvested(9))
        .build();
    sys.flash(&fib::image(variant));
    let mut last_count = 0u16;
    let mut last_change = SimTime::ZERO;
    let mut stalled = false;
    while sys.now() < budget {
        sys.step();
        let c = sys.device().mem().peek_word(fib::COUNT);
        if c != last_count {
            last_count = c;
            last_change = sys.now();
        } else if sys.now().since(last_change) > SimTime::from_secs(2) {
            stalled = true;
            break;
        }
    }
    let count = sys.device().mem().peek_word(fib::COUNT);
    let violations = sys.device().mem().peek_word(fib::VIOLATIONS);
    let guards = sys
        .edb()
        .map(|e| e.log().with_tag("guard-enter").count() as u64)
        .unwrap_or(0);
    (count, violations, stalled, guards, sys.device().reboots())
}

/// Runs the Figure 9 experiment.
pub fn run() -> Report {
    let mut report = Report::new("Figure 9: consistency check without / with energy guards");
    let budget = SimTime::from_secs(30);

    let (count_checked, viol_checked, stalled_checked, _, reboots_checked) =
        run_variant(Variant::Checked, budget);
    report.line(format!(
        "checked (no guards): added {count_checked} items, then the check ate the whole budget \
         (stalled: {stalled_checked}; paper hung after ~555 items); reboots = {reboots_checked}"
    ));
    report.line(format!(
        "consistency violations the check caught en route: {viol_checked} \
         (paper: \"the invariant was violated in several experimental trials\")"
    ));

    let (count_guarded, viol_guarded, stalled_guarded, guards, reboots_guarded) =
        run_variant(Variant::Guarded, budget);
    report.line(format!(
        "guarded: added {count_guarded} items in the same wall time, never stalled \
         (stalled: {stalled_guarded}); {guards} guard episodes on tethered power; reboots = {reboots_guarded}"
    ));
    report.line(format!(
        "guarded-build violations: {viol_guarded} (the check still runs — it just costs nothing)"
    ));

    report.metric("checked_count", count_checked as f64);
    report.metric("checked_stalled", stalled_checked as u8 as f64);
    report.metric("guarded_count", count_guarded as f64);
    report.metric("guarded_stalled", stalled_guarded as u8 as f64);
    report.metric("guard_episodes", guards as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_prevent_starvation() {
        let r = run();
        assert_eq!(r.get("checked_stalled"), 1.0, "unguarded build must hang");
        assert_eq!(r.get("guarded_stalled"), 0.0, "guarded build must not");
        assert!(
            r.get("guarded_count") > r.get("checked_count"),
            "guards restore forward progress"
        );
        assert!(r.get("guard_episodes") > 10.0);
        let stalled_at = r.get("checked_count");
        assert!(
            (100.0..2500.0).contains(&stalled_at),
            "stall point {stalled_at} (paper: ~555)"
        );
    }
}
