//! **Table 4** — "Cost of debug output and its impact on the behavior of
//! the activity recognition application."
//!
//! The AR app runs on harvested power in three builds: no print, `printf`
//! over the target-powered UART, and EDB's energy-interference-free
//! `printf`. From the WP1/WP2/WP3 watchpoint stream EDB derives the
//! iteration success rate, per-iteration energy/time, and the marginal
//! cost of each print mechanism.

use crate::harness::{self, profile_loop, LoopProfile};
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_apps::activity::{self, Variant};
use edb_core::System;
use edb_device::DeviceConfig;
use edb_energy::SimTime;

/// Seconds of harvested execution per variant.
const RUN_SECS: u64 = 8;

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "table4",
    title: "Table 4: cost of debug output on the AR application",
    run,
};

/// The three builds Table 4 compares, in row order.
const VARIANTS: [Variant; 3] = [Variant::NoPrint, Variant::UartPrintf, Variant::EdbPrintf];

/// Profiles one variant of the AR app.
pub fn profile_variant(variant: Variant, seed: u64) -> LoopProfile {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harness::harvested(seed))
        .build();
    sys.flash(&activity::image(variant));
    sys.run_for(SimTime::from_secs(RUN_SECS));
    profile_loop(
        sys.edb().expect("attached").log(),
        activity::WP_ITER_START,
        &[activity::WP_STATIONARY, activity::WP_MOVING],
    )
}

/// Runs the Table 4 experiment: the three variants profile in parallel
/// through the runner, but all share one harvested trace (derived from
/// the root seed) so the marginal print costs stay paired comparisons.
pub fn run(runner: &Runner) -> Report {
    let mut report = Report::new(SPEC.title);
    report.line(format!(
        "{:<14} {:>9} {:>12} {:>10} {:>13} {:>11}",
        "", "success", "iter energy", "iter time", "print energy", "print time"
    ));
    report.line(format!(
        "{:<14} {:>9} {:>12} {:>10} {:>13} {:>11}",
        "", "rate (%)", "(% of cap)", "(ms)", "(% of cap)", "(ms)"
    ));
    report
        .line("paper: NoPrint    87        3.0          1.1           -            -".to_string());
    report
        .line("paper: UART       74        5.3          2.1          2.5          1.1".to_string());
    report
        .line("paper: EDB        82        3.4          4.7          0.11         3.1".to_string());

    let shared_seed = runner.seed_for("table4", 0);
    let mut profiles = runner
        .map_trials("table4", VARIANTS.len(), |ctx| {
            profile_variant(VARIANTS[ctx.trial], shared_seed)
        })
        .into_iter();
    let (base, uart, edb) = (
        profiles.next().expect("NoPrint profile"),
        profiles.next().expect("UartPrintf profile"),
        profiles.next().expect("EdbPrintf profile"),
    );

    let mut emit = |label: &str, p: &LoopProfile, base: Option<&LoopProfile>| {
        let (pe, pt) = match base {
            Some(b) => (
                p.mean_energy_percent() - b.mean_energy_percent(),
                p.mean_time_ms() - b.mean_time_ms(),
            ),
            None => (f64::NAN, f64::NAN),
        };
        let fmt_opt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.2}")
            }
        };
        report.line(format!(
            "ours:  {label:<7} {:>9.0} {:>12.2} {:>10.2} {:>13} {:>11}",
            p.success_rate() * 100.0,
            p.mean_energy_percent(),
            p.mean_time_ms(),
            fmt_opt(pe),
            fmt_opt(pt),
        ));
        let tag = label.to_lowercase();
        report.metric(format!("{tag}_success"), p.success_rate() * 100.0);
        report.metric(format!("{tag}_energy_pct"), p.mean_energy_percent());
        report.metric(format!("{tag}_time_ms"), p.mean_time_ms());
        if !pe.is_nan() {
            report.metric(format!("{tag}_print_energy_pct"), pe);
            report.metric(format!("{tag}_print_time_ms"), pt);
        }
    };
    emit("NoPrint", &base, None);
    emit("UART", &uart, Some(&base));
    emit("EDB", &edb, Some(&base));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_holds() {
        let r = run(&Runner::quiet(3, 42));
        // UART printf costs far more energy per print than EDB printf —
        // the paper's headline comparison (2.5 % vs 0.11 %).
        let uart_e = r.get("uart_print_energy_pct");
        let edb_e = r.get("edb_print_energy_pct");
        assert!(
            uart_e > 3.0 * edb_e.max(0.01),
            "UART print energy {uart_e}% must dwarf EDB's {edb_e}%"
        );
        // EDB printf is slower than UART printf (handshake + restore)...
        assert!(r.get("edb_print_time_ms") > r.get("uart_print_time_ms"));
        // ...and UART printf hurts the success rate more than EDB printf.
        assert!(r.get("uart_success") < r.get("noprint_success"));
        assert!(r.get("edb_success") >= r.get("uart_success"));
        // All variants actually ran.
        assert!(r.get("noprint_success") > 50.0);
    }
}
