//! The `replay` experiment: record the paper's flagship runs, replay
//! them with divergence assertions, and prove the recordings are
//! byte-stable.
//!
//! Two recordings anchor the time-travel layer to the paper's
//! evaluation:
//!
//! 1. **Figure 7, session-level** — the linked-list app's
//!    intermittence-aware assert on harvested power, driven through the
//!    [`edb_core::SessionSpec`] surface (wait for the assert session,
//!    read the broken data structure, advance under the keep-alive
//!    tether). Harvester worlds snapshot in full, so replay compares
//!    architectural state, memory images, and the energy trajectory
//!    bit-for-bit at every boundary.
//! 2. **A 100-tag fleet run** — the Gen2 inventory simulation, recorded
//!    digest-only into the same `EDBR` container: a state digest (Gen2
//!    counters plus every tag's capacitor-voltage bits) every
//!    `stride` slots. Replay re-runs the fleet from its embedded config
//!    and asserts every digest.
//!
//! Both recordings must verify divergence-free on any number of
//! threads, and two record passes of the same seed must serialize to
//! identical bytes — the `replay-smoke` CI job holds the tree to that.

use crate::Report;
use edb_apps::linked_list as ll;
use edb_core::fleet::{FleetConfig, FleetSim};
use edb_core::{
    replay as session_replay, DebugRequest, Firmware, HarvesterSpec, SessionSpec, WorldSpec,
};
use edb_energy::SimTime;
use edb_replay::{value_digest, Entry, Recording};
use serde::{Serialize, Value};

use crate::runner::{ExperimentSpec, Runner};

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "replay",
    title: "Record/replay: fig7 + 100-tag fleet, divergence-checked",
    run: run_spec,
};

fn run_spec(_runner: &Runner) -> Report {
    run(100, 400, 1, None)
}

/// The rebuildable spec of the session-level Figure 7 scenario: the
/// instrumented linked-list app on the standard harvested supply.
pub fn fig7_spec() -> SessionSpec {
    SessionSpec {
        world: WorldSpec::Harvester {
            spec: HarvesterSpec::harvested(1),
        },
        seed: 1,
        // The app carries its own runtime: flash the raw image.
        firmware: Some(Firmware {
            source: ll::source(ll::Variant::Assert),
            wrap: false,
        }),
        ..SessionSpec::bench("")
    }
}

/// Records the Figure 7 session: run until the assert opens a session,
/// inspect the stale tail pointer interactively, and let the keep-alive
/// tether hold the target for 30 ms.
pub fn record_fig7(stride: u64) -> Recording {
    let mut s = fig7_spec().record(stride).expect("fig7 spec builds");
    let caught = s.run_until_session(SimTime::from_secs(60));
    assert!(caught, "the assert must catch the inconsistency");
    let _ = s.perform(DebugRequest::ReadWord { addr: ll::TAILP });
    let _ = s.perform(DebugRequest::ReadWord {
        addr: ll::HEAD + ll::NODE_NEXT,
    });
    let _ = s.perform(DebugRequest::GetPc);
    s.advance(SimTime::from_ms(30));
    s.stop_recording().expect("was recording")
}

/// One fleet state digest: the merged Gen2 counters plus every tag's
/// capacitor-voltage bit pattern and powered flag — the energy
/// trajectory of the whole fleet at this instant.
fn fleet_digest(sim: &FleetSim) -> u64 {
    let stats = sim.stats();
    let mut tags = Vec::with_capacity(stats.tags as usize);
    for k in 0..stats.tags as usize {
        let t = sim.tag_status(k).expect("tag index in range");
        tags.push(Value::Seq(vec![
            Value::U64(t.v_cap.to_bits()),
            Value::Bool(t.powered),
        ]));
    }
    value_digest(&Value::Map(vec![
        (Value::Str("now_ns".into()), Value::U64(sim.now().as_ns())),
        (Value::Str("stats".into()), stats.to_value()),
        (Value::Str("tags".into()), Value::Seq(tags)),
    ]))
}

/// Records a fleet inventory run: `slots` Gen2 slots over `tags` tags,
/// with a digest boundary every `stride` slots. The config is embedded
/// so [`verify_fleet`] can re-run it from nothing but the recording.
pub fn record_fleet(tags: usize, seed: u64, slots: u64, stride: u64) -> Recording {
    let stride = stride.max(1);
    let mut sim = FleetSim::new(FleetConfig::standard(tags), seed);
    let mut entries = vec![Entry::Digest {
        now_ns: sim.now().as_ns(),
        digest: fleet_digest(&sim),
    }];
    for slot in 1..=slots {
        sim.step_slot();
        if slot % stride == 0 {
            entries.push(Entry::Digest {
                now_ns: sim.now().as_ns(),
                digest: fleet_digest(&sim),
            });
        }
    }
    let end = (sim.now().as_ns(), fleet_digest(&sim));
    Recording {
        spec: Some(Value::Map(vec![
            (Value::Str("kind".into()), Value::Str("fleet".into())),
            (Value::Str("tags".into()), Value::U64(tags as u64)),
            (Value::Str("seed".into()), Value::U64(seed)),
            (Value::Str("slots".into()), Value::U64(slots)),
        ])),
        stride,
        start_ns: 0,
        entries,
        end: Some(end),
    }
}

/// Re-runs a fleet recording from its embedded config and asserts every
/// digest boundary plus the End seal. Returns the number of digests
/// compared, or a description of the first divergence.
pub fn verify_fleet(recording: &Recording) -> Result<usize, String> {
    let spec = recording
        .spec
        .as_ref()
        .ok_or("fleet recording has no embedded config")?;
    let field = |name: &str| match spec.get_field(name) {
        Some(Value::U64(n)) => Ok(*n),
        _ => Err(format!("fleet config missing `{name}`")),
    };
    let tags = field("tags")? as usize;
    let seed = field("seed")?;
    let slots = field("slots")?;
    let stride = recording.stride.max(1);
    let mut sim = FleetSim::new(FleetConfig::standard(tags), seed);
    let mut digests = recording.entries.iter().filter_map(|e| match e {
        Entry::Digest { now_ns, digest } => Some((*now_ns, *digest)),
        _ => None,
    });
    let mut compared = 0;
    let mut check = |sim: &FleetSim, slot: u64| -> Result<(), String> {
        let Some((now_ns, digest)) = digests.next() else {
            return Err(format!("recording ran out of digests at slot {slot}"));
        };
        if sim.now().as_ns() != now_ns {
            return Err(format!(
                "slot {slot}: replay at {} ns, recording at {now_ns} ns",
                sim.now().as_ns()
            ));
        }
        let live = fleet_digest(sim);
        if live != digest {
            return Err(format!(
                "slot {slot}: fleet digest {live:#018x} != recorded {digest:#018x}"
            ));
        }
        compared += 1;
        Ok(())
    };
    check(&sim, 0)?;
    for slot in 1..=slots {
        sim.step_slot();
        if slot % stride == 0 {
            check(&sim, slot)?;
        }
    }
    let (end_ns, end_digest) = recording.end.ok_or("fleet recording has no End seal")?;
    if sim.now().as_ns() != end_ns || fleet_digest(&sim) != end_digest {
        return Err("fleet End seal diverged".to_string());
    }
    Ok(compared)
}

/// Runs the whole experiment: record both scenarios, verify each
/// divergence-free, and prove byte-stability across two record passes.
/// `threads` > 1 verifies concurrently (each thread gets its own decoded
/// copy) to show thread count cannot perturb replay. With `out` set, the
/// raw `.edbr` recordings land there so CI can attach them to a failure.
pub fn run(tags: usize, slots: u64, threads: usize, out: Option<&std::path::Path>) -> Report {
    let mut report = Report::new("Record/replay: fig7 + 100-tag fleet, divergence-checked");

    let fig7 = record_fig7(4);
    let fig7_bytes = fig7.to_bytes();
    report.line(format!(
        "fig7 session recorded: {} op(s), {} full snapshot(s), {} bytes",
        fig7.op_count(),
        fig7.snapshot_count(),
        fig7_bytes.len()
    ));
    let fig7_again = record_fig7(4).to_bytes();
    let fig7_stable = fig7_bytes == fig7_again;
    report.line(format!(
        "fig7 byte-stability across two record passes: {}",
        if fig7_stable { "identical" } else { "DIVERGED" }
    ));

    let fleet = record_fleet(tags, 42, slots, 25);
    let fleet_bytes = fleet.to_bytes();
    report.line(format!(
        "{tags}-tag fleet recorded: {slots} slots, {} digest boundaries, {} bytes",
        fleet.entries.len(),
        fleet_bytes.len()
    ));
    let fleet_again = record_fleet(tags, 42, slots, 25).to_bytes();
    let fleet_stable = fleet_bytes == fleet_again;
    report.line(format!(
        "fleet byte-stability across two record passes: {}",
        if fleet_stable {
            "identical"
        } else {
            "DIVERGED"
        }
    ));

    if let Some(dir) = out {
        if std::fs::create_dir_all(dir).is_ok() {
            for (name, rec) in [("fig7.edbr", &fig7), ("fleet.edbr", &fleet)] {
                let path = dir.join(name);
                match rec.save(&path) {
                    Ok(()) => report.line(format!("saved {}", path.display())),
                    Err(e) => report.line(format!("could not save {}: {e}", path.display())),
                }
            }
        }
    }

    // Verify on `threads` threads at once: replay state is rebuilt from
    // the recording alone, so concurrency cannot leak into the result.
    let mut divergences = 0usize;
    let mut ops = 0usize;
    let mut snapshots = 0usize;
    let mut fleet_digests = 0usize;
    let outcomes: Vec<(
        Result<session_replay::VerifyReport, String>,
        Result<usize, String>,
    )> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let fig7_bytes = &fig7_bytes;
                let fleet_bytes = &fleet_bytes;
                scope.spawn(move || {
                    let fig7 = Recording::from_bytes(fig7_bytes).expect("fig7 re-decodes");
                    let fleet = Recording::from_bytes(fleet_bytes).expect("fleet re-decodes");
                    (
                        session_replay::verify(&fig7).map_err(|e| e.to_string()),
                        verify_fleet(&fleet),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verifier thread"))
            .collect()
    });
    for (k, (fig7_result, fleet_result)) in outcomes.iter().enumerate() {
        match fig7_result {
            Ok(r) => {
                ops = r.ops;
                snapshots = r.snapshots;
            }
            Err(e) => {
                divergences += 1;
                report.line(format!("thread {k}: fig7 replay DIVERGED: {e}"));
            }
        }
        match fleet_result {
            Ok(n) => fleet_digests = *n,
            Err(e) => {
                divergences += 1;
                report.line(format!("thread {k}: fleet replay DIVERGED: {e}"));
            }
        }
    }
    if divergences == 0 {
        report.line(format!(
            "replayed divergence-free on {threads} thread(s): fig7 {ops} op(s) / {snapshots} snapshot(s), fleet {fleet_digests} digest(s)"
        ));
    }

    report.metric("divergences", divergences as f64);
    report.metric("fig7_ops", ops as f64);
    report.metric("fig7_snapshots", snapshots as f64);
    report.metric("fleet_digests", fleet_digests as f64);
    report.metric("fig7_byte_stable", fig7_stable as u8 as f64);
    report.metric("fleet_byte_stable", fleet_stable as u8 as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_recording_verifies_and_tamper_is_caught() {
        let rec = record_fleet(12, 7, 60, 10);
        let n = verify_fleet(&rec).expect("verifies");
        assert_eq!(n, 7, "initial digest + one per 10 slots");
        let mut bad = rec.clone();
        if let Some(Entry::Digest { digest, .. }) = bad.entries.last_mut() {
            *digest ^= 1;
        }
        let err = verify_fleet(&bad).expect_err("tamper caught");
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn fleet_recording_is_byte_stable() {
        let a = record_fleet(10, 3, 40, 8).to_bytes();
        let b = record_fleet(10, 3, 40, 8).to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn fig7_session_records_and_verifies() {
        let rec = record_fig7(2);
        assert!(rec.op_count() >= 4);
        let report = session_replay::verify(&rec).expect("divergence-free");
        assert_eq!(report.ops, rec.op_count());
        assert!(report.snapshots >= 2);
    }
}
