//! The paper's scattered quantitative claims (§2.2, §4.1.3, §5.2): LED
//! tracing quintuples the current draw; JTAG debugging masks every
//! intermittence bug; an oscilloscope sees energy but no program state;
//! watchpoints are practically free; and attaching EDB leaves the
//! target's intermittent behaviour statistically unchanged.

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_apps::linked_list as ll;
use edb_core::baselines::{JtagDebugger, Oscilloscope};
use edb_core::System;
use edb_device::{Device, DeviceConfig};
use edb_energy::SimTime;
use edb_mcu::asm::assemble;
use edb_mcu::RESET_VECTOR;

/// Claim 1 — "Powering an LED increases the WISP's current draw by five
/// times, from around 1 mA to over 5 mA."
fn led_claim() -> Report {
    let mut report = Report::new("led_claim");
    // The paper quotes the WISP's idle-ish 1 mA baseline; measure the
    // ratio with that baseline and with our compute-burst calibration.
    for (label, base) in [
        ("1.0 mA baseline (paper's)", 1.0e-3),
        ("2.2 mA compute burst", 2.2e-3),
    ] {
        let config = DeviceConfig {
            i_active: base,
            ..DeviceConfig::wisp5()
        };
        let measure = |led: bool| {
            let src_text = format!(
                ".org 0x4400\nmain:\n movi r0, {}\n out 0x00, r0\nloop: add r1, 1\n jmp loop\n.org 0xFFFE\n.word main\n",
                if led { 1 } else { 0 }
            );
            let image = assemble(&src_text).expect("assembles");
            let mut dev = Device::new(config);
            dev.flash(&image);
            dev.set_v_cap(2.45);
            let mut none = edb_energy::ConstantCurrent::new(0.0);
            for _ in 0..100 {
                dev.step(&mut none, 0.0);
            }
            dev.load_current()
        };
        let off = measure(false);
        let on = measure(true);
        report.line(format!(
            "LED @ {label}: {:.2} mA -> {:.2} mA = {:.1}x (paper: ~1 mA -> >5 mA, 5x)",
            off * 1e3,
            on * 1e3,
            on / off
        ));
        if base < 2e-3 {
            report.metric("led_ratio", on / off);
        }
    }
    report
}

/// Claim 2 — a JTAG debugger provides continuous power and can never
/// observe the intermittence bug; EDB-free harvested operation hits it.
fn jtag_claim() -> Report {
    let mut report = Report::new("jtag_claim");
    let image = ll::image(ll::Variant::Plain);
    let mut jtag = JtagDebugger::attach(DeviceConfig::wisp5(), &image);
    jtag.run_for(SimTime::from_secs(10));
    let jtag_ok = jtag.read_word(RESET_VECTOR) == 0x4400 && jtag.device().reboots() == 0;
    report.line(format!(
        "JTAG (continuous power): 10 s, {} iterations, reboots = 0, bug reproduced: {}",
        jtag.device().mem().peek_word(ll::ITER_COUNT),
        !jtag_ok
    ));

    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut src = harness::harvested(1);
    let mut struck = None;
    while dev.now() < SimTime::from_secs(30) {
        dev.step(&mut src, 0.0);
        if dev.mem().peek_word(RESET_VECTOR) != 0x4400 {
            struck = Some(dev.now());
            break;
        }
    }
    report.line(format!(
        "harvested power: bug struck at {:?} — visible only when nothing masks intermittence",
        struck.map(|t| format!("{t}"))
    ));
    report.metric("jtag_masked", jtag_ok as u8 as f64);
    report.metric("harvested_struck", struck.is_some() as u8 as f64);
    report
}

/// Claim 3 — the oscilloscope sees the sawtooth but not the program
/// state that explains it.
fn scope_claim() -> Report {
    let mut report = Report::new("scope_claim");
    let image = ll::image(ll::Variant::Plain);
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&image);
    let mut src = harness::harvested(1);
    let mut scope = Oscilloscope::new(SimTime::from_us(100));
    while dev.now() < SimTime::from_secs(5) {
        dev.step(&mut src, 0.0);
        scope.sample(&dev);
    }
    report.line(format!(
        "oscilloscope: {} Vcap samples, excursion {:.2}..{:.2} V — but zero visibility into the list state that is about to kill the device",
        scope.v_cap().len(),
        scope.v_cap().min().unwrap_or(0.0),
        scope.v_cap().max().unwrap_or(0.0),
    ));
    report
}

/// Claim 4 — §4.1.3: "The main energy cost is the target device holding
/// a GPIO pin high for one cycle to encode each traced code point ...
/// we measured the cost of this GPIO-based signaling to be negligible."
fn watchpoint_cost_claim() -> Report {
    let mut report = Report::new("watchpoint_cost_claim");
    let run_iters = |with_marker: bool| {
        let marker = if with_marker {
            "movi r2, 1\n out 0x02, r2"
        } else {
            "nop\n nop"
        };
        let src_text = format!(
            ".org 0x4400\nmain:\nloop:\n {marker}\n add r1, 1\n movi r3, 0x6000\n st [r3], r1\n jmp loop\n.org 0xFFFE\n.word main\n"
        );
        let image = assemble(&src_text).expect("assembles");
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image);
        let mut supply = harness::tethered();
        while dev.now() < SimTime::from_ms(100) {
            dev.step(&mut supply, 0.0);
        }
        (dev.mem().peek_word(0x6000) as f64, dev.cpu().cycles as f64)
    };
    let (with_iters, cycles) = run_iters(true);
    let (without_iters, _) = run_iters(false);
    // Per-marker cost in cycles, measured from the throughput delta.
    let cyc_with = cycles / with_iters;
    let cyc_without = cycles / without_iters;
    let marker_cycles = cyc_with - cyc_without + 2.0; // vs the 2-cycle nop pad
    let marker_us = marker_cycles / 4.0; // 4 MHz clock
    let marker_energy_pct = (2.2e-3 * 2.2 * marker_us * 1e-6) / harness::e_max() * 100.0;
    // As a fraction of a realistic instrumented iteration (the AR app's
    // ~0.76 ms loop from Table 4):
    let ar_iteration_us = 760.0;
    let relative = marker_us / ar_iteration_us * 100.0;
    report.line(format!(
        "watchpoint cost: {marker_cycles:.1} cycles = {marker_us:.2} µs = {marker_energy_pct:.4} % of the store per pulse; {relative:.2} % of an AR iteration (paper: negligible)"
    ));
    report.metric("watchpoint_cost_pct_of_store", marker_energy_pct);
    report.metric("watchpoint_pct_of_ar_iteration", relative);
    report
}

/// Claim 5 — energy-interference-freedom end to end: the same seeded
/// workload behaves statistically identically with EDB attached
/// (passively) and with it physically absent.
fn interference_claim() -> Report {
    let mut report = Report::new("interference_claim");
    let image = edb_apps::activity::image(edb_apps::activity::Variant::NoPrint);
    let run = |attached: bool| {
        let mut sys = System::builder(DeviceConfig::wisp5())
            .harvester(harness::harvested(77))
            .build();
        sys.flash(&image);
        if !attached {
            sys.detach_edb();
        }
        sys.run_for(SimTime::from_secs(5));
        (
            sys.device().reboots() as f64,
            edb_apps::activity::read_stats(sys.device().mem()).total as f64,
        )
    };
    let (reboots_on, iters_on) = run(true);
    let (reboots_off, iters_off) = run(false);
    let reboot_delta = (reboots_on - reboots_off).abs() / reboots_off.max(1.0) * 100.0;
    let iter_delta = (iters_on - iters_off).abs() / iters_off.max(1.0) * 100.0;
    report.line(format!(
        "EDB attached vs absent (5 s, same seed): reboots {reboots_on} vs {reboots_off} ({reboot_delta:.2} %), iterations {iters_on} vs {iters_off} ({iter_delta:.2} %)"
    ));
    report.metric("interference_reboot_delta_pct", reboot_delta);
    report.metric("interference_iter_delta_pct", iter_delta);
    report
}

/// The suite entry for this experiment.
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "claims",
    title: "Scattered claims: LED 5x, JTAG masking, scope, watchpoints, interference",
    run,
};

/// The claims, in the order the report presents them.
const CLAIMS: [fn() -> Report; 5] = [
    led_claim,
    jtag_claim,
    scope_claim,
    watchpoint_cost_claim,
    interference_claim,
];

/// Runs all claims: each is an independent fragment fanned out through
/// the runner and merged back in presentation order. The claims pin
/// their own scenario seeds (they are narratives about specific traces,
/// not Monte Carlo trials), so the report is identical at any thread
/// count and for any root seed.
pub fn run(runner: &Runner) -> Report {
    let mut report = Report::new(SPEC.title);
    for fragment in runner.map_trials("claims", CLAIMS.len(), |ctx| CLAIMS[ctx.trial]()) {
        report.merge(fragment);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_hold() {
        let r = run(&Runner::quiet(2, 42));
        assert!(r.get("led_ratio") > 4.0, "LED must multiply current ~5x");
        assert_eq!(r.get("jtag_masked"), 1.0, "JTAG must mask the bug");
        assert_eq!(r.get("harvested_struck"), 1.0);
        assert!(
            r.get("watchpoint_cost_pct_of_store") < 0.01,
            "a watchpoint pulse must cost well under 0.01 % of the store"
        );
        assert!(
            r.get("watchpoint_pct_of_ar_iteration") < 1.0,
            "watchpoints must be negligible against a real iteration"
        );
        assert!(
            r.get("interference_reboot_delta_pct") < 2.0,
            "EDB attachment must not change the reboot cadence"
        );
        assert!(r.get("interference_iter_delta_pct") < 2.0);
    }
}
