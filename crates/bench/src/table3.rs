//! **Table 3** — "Accuracy with which EDB saves and restores energy
//! level."
//!
//! The paper's procedure, verbatim: "we set an energy-breakpoint at
//! 2.3 V, charged the target capacitor to 2.4 V, waited for the target
//! execution to be interrupted by the breakpoint, and then resumed the
//! target", 50 trials, measuring `ΔV = V_restored − V_saved` with both
//! an oscilloscope (here: simulation ground truth) and EDB's internal
//! ADC, and reporting `ΔE` and `ΔE` as a percentage of the 47 µF store.

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::Report;
use edb_core::{libedb, DebugEvent, Edb, EdbConfig, System};
use edb_device::DeviceConfig;
use edb_energy::{SimTime, Summary};
use edb_mcu::asm::assemble;

/// The suite entry for this experiment (control-period sweep included).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "table3",
    title: "Table 3: save/restore accuracy (energy breakpoint at 2.3 V)",
    run: run_with_sweep,
};

/// The bin's default entry: the 50-trial table without the sweep.
pub const PLAIN_SPEC: ExperimentSpec = ExperimentSpec {
    name: "table3",
    title: "Table 3: save/restore accuracy (energy breakpoint at 2.3 V)",
    run: run_plain,
};

fn run_with_sweep(runner: &Runner) -> Report {
    run(runner, true)
}

fn run_plain(runner: &Runner) -> Report {
    run(runner, false)
}

/// A spin loop with interrupts enabled, so EDB's energy breakpoint can
/// pull the IRQ line and land the target in the `libEDB` service loop.
fn spin_app() -> edb_mcu::Image {
    assemble(&libedb::wrap_program(
        r#"
        .org 0x4400
        main:
            movi sp, 0x2400
            ei
        loop:
            add  r0, 1
            jmp  loop
        .org 0xFFFC
        .word __edb_isr
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("spin app assembles")
}

/// One save/restore trial's measurements.
#[derive(Debug, Clone, Copy)]
struct Trial {
    saved_truth: f64,
    restored_truth: f64,
    saved_adc: f64,
    restored_adc: f64,
}

/// One independent save/restore trial: fresh bench, fresh harvested
/// trace from the trial's derived seed.
fn one_trial(config: EdbConfig, image: &edb_mcu::Image, seed: u64) -> Trial {
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harness::harvested(seed))
        .build();
    sys.attach_edb(Edb::new(config));
    sys.flash(image);
    sys.edb_mut().arm_energy_breakpoint(2.3);

    sys.charge_to(2.4);
    let opened = sys.wait_for_session(SimTime::from_secs(2));
    assert!(opened, "energy breakpoint must fire (seed {seed})");
    let saved_truth = sys.device().v_cap();
    // Linger in the session briefly (the paper's operator latency).
    sys.run_for(SimTime::from_ms(5));
    sys.resume();
    let restored_truth = sys.device().v_cap();

    // EDB's own view from its event log.
    let log = sys.edb().expect("attached").log();
    let saved_adc = log
        .events()
        .iter()
        .rev()
        .find_map(|e| match e.event {
            DebugEvent::EnergyBreakpoint { v_cap, .. } => Some(v_cap),
            _ => None,
        })
        .expect("breakpoint event logged");
    let restored_adc = log
        .events()
        .iter()
        .rev()
        .find_map(|e| match e.event {
            DebugEvent::SessionClosed { restored_v } => Some(restored_v),
            _ => None,
        })
        .expect("session close logged");
    Trial {
        saved_truth,
        restored_truth,
        saved_adc,
        restored_adc,
    }
}

fn summarize(label: &str, saved_restored: &[(f64, f64)], report: &mut Report) -> (f64, f64) {
    let dv_mv: Vec<f64> = saved_restored.iter().map(|(s, r)| (r - s) * 1e3).collect();
    let de_uj: Vec<f64> = saved_restored
        .iter()
        .map(|(s, r)| edb_energy::budget::delta_energy(edb_energy::WISP5_CAPACITANCE, *r, *s) * 1e6)
        .collect();
    let de_pct: Vec<f64> = saved_restored
        .iter()
        .map(|(s, r)| harness::delta_e_percent(*r, *s))
        .collect();
    let sv = Summary::of(&dv_mv);
    let se = Summary::of(&de_uj);
    let sp = Summary::of(&de_pct);
    report.line(format!(
        "{label:<8} ΔV = {:6.1} ± {:4.1} mV   ΔE = {:5.2} ± {:4.2} µJ   ΔE% = {:5.2} ± {:4.2} %",
        sv.mean, sv.std_dev, se.mean, se.std_dev, sp.mean, sp.std_dev
    ));
    (sv.mean, sp.mean)
}

/// Runs the Table 3 experiment (50 independent trials through the
/// runner), plus the control-period ablation from DESIGN.md when
/// `sweep` is set.
pub fn run(runner: &Runner, sweep: bool) -> Report {
    let mut report = Report::new(SPEC.title);
    let image = spin_app();
    let trials = runner.map_trials("table3", 50, |ctx| {
        one_trial(EdbConfig::prototype(), &image, ctx.seed)
    });

    report.line(
        "paper:   ΔV =   54 ±   16 mV   ΔE =  1.25 ± 0.37 µJ   ΔE% =  4.34 ± 1.30 %  (o-scope)"
            .to_string(),
    );
    report.line(
        "paper:   ΔV =   55 ±  7.8 mV   ΔE =  1.25 ± 0.18 µJ   ΔE% =  4.34 ± 0.62 %  (ADC)"
            .to_string(),
    );

    let truth: Vec<(f64, f64)> = trials
        .iter()
        .map(|t| (t.saved_truth, t.restored_truth))
        .collect();
    let adc: Vec<(f64, f64)> = trials
        .iter()
        .map(|t| (t.saved_adc, t.restored_adc))
        .collect();
    let (dv_truth, de_truth) = summarize("o-scope", &truth, &mut report);
    let (dv_adc, de_adc) = summarize("ADC", &adc, &mut report);
    report.metric("dv_truth_mv", dv_truth);
    report.metric("dv_adc_mv", dv_adc);
    report.metric("de_truth_pct", de_truth);
    report.metric("de_adc_pct", de_adc);

    if sweep {
        report.line(String::new());
        report.line("ablation: restore accuracy vs control period".to_string());
        for period_us in [20u64, 50, 150, 400] {
            let config = EdbConfig {
                control_period: SimTime::from_us(period_us),
                ..EdbConfig::prototype()
            };
            let trials = runner.map_trials(&format!("table3/sweep-{period_us}us"), 12, |ctx| {
                one_trial(config, &image, ctx.seed)
            });
            let dv: Vec<f64> = trials
                .iter()
                .map(|t| (t.restored_truth - t.saved_truth) * 1e3)
                .collect();
            let s = Summary::of(&dv);
            report.line(format!(
                "  control period {period_us:>4} µs: ΔV = {:6.1} ± {:4.1} mV",
                s.mean, s.std_dev
            ));
            report.metric(format!("sweep_dv_{period_us}us_mv"), s.mean);
        }
        report.line(
            "  (ADC quantization floor: 12-bit / ~0.8 mV => ΔE ≈ 0.08 % lower bound, as §5.2.2)"
                .to_string(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_restore_discrepancy_matches_paper_shape() {
        let r = run(&Runner::quiet(2, 42), false);
        // Positive mean (conservative restore), tens of millivolts.
        let dv = r.get("dv_truth_mv");
        assert!((10.0..120.0).contains(&dv), "ΔV {dv} mV out of band");
        // ADC and ground truth agree on the mean to a few mV.
        assert!((r.get("dv_adc_mv") - dv).abs() < 10.0);
        // ΔE% in low single digits, like the paper's 4.34 %.
        let de = r.get("de_truth_pct");
        assert!((0.5..10.0).contains(&de), "ΔE% {de} out of band");
    }
}
