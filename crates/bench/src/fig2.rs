//! **Figure 2B** — the characteristic charge/discharge sawtooth of an
//! energy-harvesting device, with its "tens to hundreds of reboots per
//! second" cadence.

use crate::harness;
use crate::runner::{ExperimentSpec, Runner};
use crate::{write_artifact, Report};
use edb_core::System;
use edb_device::DeviceConfig;
use edb_energy::{SimTime, Trace};
use edb_mcu::asm::assemble;

/// The suite entry for this experiment (a single scripted scenario —
/// the runner's trial pool is not used).
pub const SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig2",
    title: "Figure 2B: the charge/discharge sawtooth",
    run: run_spec,
};

fn run_spec(_runner: &Runner) -> Report {
    run()
}

/// Runs the sawtooth characterization.
pub fn run() -> Report {
    let mut report = Report::new("Figure 2B: the charge/discharge sawtooth");
    let image = assemble(&edb_core::libedb::wrap_program(
        r#"
        .org 0x4400
        main:
            add r0, 1
            jmp main
        .org 0xFFFE
        .word main
        "#,
    ))
    .expect("assembles");
    let mut sys = System::builder(DeviceConfig::wisp5())
        .harvester(harness::harvested(3))
        .build();
    sys.flash(&image);

    let mut v_trace = Trace::new("Vcap", SimTime::from_us(250));
    let duration = SimTime::from_secs(2);
    let end = duration;
    while sys.now() < end {
        sys.step();
        v_trace.record(sys.now(), sys.device().v_cap());
    }

    let reboots = sys.device().reboots();
    let per_sec = reboots as f64 / sys.now().as_secs_f64();
    let v_min = v_trace.min().expect("samples");
    let v_max = v_trace.max().expect("samples");
    report.line(format!(
        "reboots: {reboots} over {} => {per_sec:.1} charge-discharge cycles/s",
        sys.now()
    ));
    report.line(format!(
        "Vcap excursion: {v_min:.2} .. {v_max:.2} V (thresholds 1.8 / 2.4 V)"
    ));
    report.line(
        "paper: \"reset and power-cycle unpredictably, tens to hundreds of times per second\""
            .to_string(),
    );
    let path = write_artifact("fig2_sawtooth.csv", &v_trace.to_csv());
    report.line(format!("trace: {path}"));
    report.metric("reboots_per_sec", per_sec);
    report.metric("v_min", v_min);
    report.metric("v_max", v_max);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_cadence_is_tens_per_second() {
        let r = run();
        let rate = r.get("reboots_per_sec");
        assert!((8.0..300.0).contains(&rate), "{rate} cycles/s");
        assert!(r.get("v_min") < 1.85);
        assert!(r.get("v_max") > 2.35);
    }
}
