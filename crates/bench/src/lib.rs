//! Experiment harness for the EDB reproduction.
//!
//! Each module regenerates one table or figure from the paper's
//! evaluation (§5), printing the same rows/series the paper reports next
//! to the paper's own numbers. Absolute values are model-calibrated —
//! the substrate is a simulator, not the authors' testbed — but the
//! *shape* (who wins, failure modes, orders of magnitude) is the claim
//! under test.
//!
//! Run any experiment with `cargo run --release -p edb-bench --bin
//! <name>`, or everything with `--bin reproduce_all`.
//!
//! | module / bin | paper artifact |
//! |---|---|
//! | [`table2`] | Table 2 — worst-case leakage per connection |
//! | [`table3`] | Table 3 — save/restore accuracy |
//! | [`table4`] | Table 4 — debug-output cost on the AR app |
//! | [`fig2`]   | Figure 2B — the charge/discharge sawtooth |
//! | [`fig3`]   | Figure 3 — checkpointed intermittent execution |
//! | [`fig7`]   | Figure 7 — the memory-corruption bug ± `assert` |
//! | [`fig9`]   | Figure 9 — consistency check ± energy guards |
//! | [`fig11`]  | Figure 11 — per-iteration energy CDF |
//! | [`fig12`]  | Figure 12 — RFID messages vs energy |
//! | [`replay`] | time travel — record fig7 + the fleet, replay divergence-free |
//! | [`claims`] | §2.2/§5.2 scattered claims (LED 5×, JTAG masking, ...) |
//! | [`ablations`] | DESIGN.md §5: parameter sensitivity of the guarantees |

#![warn(missing_docs)]

pub mod ablations;
pub mod analyze;
pub mod ckpt;
pub mod claims;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig9;
pub mod fleet;
pub mod harness;
pub mod replay;
pub mod runner;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod trend;

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of one experiment: a human-readable report plus named
/// metrics that integration tests assert against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Experiment title.
    pub title: String,
    /// Report body lines.
    pub lines: Vec<String>,
    /// Named scalar results.
    pub metrics: BTreeMap<String, f64>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Appends a body line.
    pub fn line(&mut self, text: impl Into<String>) {
        self.lines.push(text.into());
    }

    /// Records a named metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), value);
    }

    /// Fetches a metric if it was recorded.
    pub fn try_get(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Fetches a metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric was never recorded.
    pub fn get(&self, name: &str) -> f64 {
        self.try_get(name)
            .unwrap_or_else(|| panic!("metric `{name}` missing from report `{}`", self.title))
    }

    /// Appends another report fragment's lines and metrics onto this
    /// one (the title of `other` is dropped). Used by experiments that
    /// build their report from independently-computed sections.
    pub fn merge(&mut self, other: Report) {
        self.lines.extend(other.lines);
        self.metrics.extend(other.metrics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} ====", self.title)?;
        for l in &self.lines {
            writeln!(f, "{l}")?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "-- metrics --")?;
            for (k, v) in &self.metrics {
                writeln!(f, "{k} = {v:.6}")?;
            }
        }
        Ok(())
    }
}

/// Every experiment in suite order — what `reproduce_all` runs.
pub fn all_specs() -> Vec<runner::ExperimentSpec> {
    vec![
        table2::SPEC,
        table3::SPEC,
        table4::SPEC,
        fig2::SPEC,
        fig3::SPEC,
        fig7::SPEC,
        fig9::SPEC,
        fig11::SPEC,
        fig12::SPEC,
        fleet::SPEC,
        replay::SPEC,
        claims::SPEC,
        ablations::SPEC,
    ]
}

/// Writes an artifact (CSV, etc.) under `target/experiments/`, returning
/// the path it landed at. Failures to write are reported but not fatal —
/// experiments must run in read-only environments too.
pub fn write_artifact(name: &str, content: &str) -> String {
    let dir = std::path::Path::new("target").join("experiments");
    let path = dir.join(name);
    let shown = path.display().to_string();
    if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, content).is_ok() {
        shown
    } else {
        format!("(could not write {shown})")
    }
}
