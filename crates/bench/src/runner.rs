//! Deterministic parallel experiment engine.
//!
//! Every experiment in this crate is a pile of independent seeded
//! simulations — Monte Carlo trials, per-connection sweeps, per-variant
//! profiles. The [`Runner`] executes those piles on a work-stealing
//! thread pool while keeping the results **bit-identical at any thread
//! count**:
//!
//! * each trial's seed is derived from the root seed with the stable
//!   hash [`seed_for`]`(root, experiment, trial)` — never from "which
//!   worker got there first";
//! * trial outputs are collected with their trial index and re-sorted,
//!   so `map_trials` returns the same `Vec` regardless of scheduling;
//! * experiments themselves fan out through the same pool
//!   ([`Runner::run_experiments`]), sharing one thread budget with the
//!   trials inside them, so `--threads N` bounds total parallelism no
//!   matter how the work nests.
//!
//! A run also produces a machine-readable [`Manifest`]
//! (`target/experiments/manifest.json`) with per-experiment wall time,
//! trial counts, and metrics — the same data as the text reports,
//! serialized instead of re-formatted.
//!
//! The sequential path is just `--threads 1`.

use crate::{write_artifact, Report};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Derives the seed for one trial of one experiment from the run's root
/// seed.
///
/// The derivation is a pure function of `(root_seed, experiment,
/// trial)` — an FNV-1a hash of the experiment name mixed with the root
/// seed and trial index through a SplitMix64 finalizer — so a trial's
/// randomness never depends on scheduling, thread count, or the other
/// experiments in the run.
pub fn seed_for(root_seed: u64, experiment: &str, trial: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    let mut z = h
        ^ root_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ trial.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything one trial is allowed to know about the run: who it is and
/// what seed to use. Handed to the closure of [`Runner::map_trials`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialCtx<'a> {
    /// The experiment (or sub-experiment) this trial belongs to.
    pub experiment: &'a str,
    /// Trial index within the experiment, `0..n`.
    pub trial: usize,
    /// The trial's derived seed — the only sanctioned source of
    /// randomness inside a trial.
    pub seed: u64,
}

/// Non-blocking permit pool for *extra* worker threads.
///
/// The calling thread always participates in its own fan-out, so a
/// nested `map_trials` that finds the pool empty simply runs inline —
/// nesting can starve parallelism but never deadlock.
#[derive(Debug)]
struct Budget {
    permits: Mutex<usize>,
}

impl Budget {
    fn try_acquire(&self, want: usize) -> usize {
        let mut p = self.permits.lock().unwrap();
        let got = want.min(*p);
        *p -= got;
        got
    }

    fn release(&self, n: usize) {
        *self.permits.lock().unwrap() += n;
    }
}

/// One experiment the suite knows how to run, as data.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Stable machine name (`table3`, `fig11`, ...), used for seed
    /// derivation and the manifest.
    pub name: &'static str,
    /// Human-readable one-liner.
    pub title: &'static str,
    /// Entry point. Receives the runner so the experiment can fan its
    /// own trials out through the shared pool.
    pub run: fn(&Runner) -> Report,
}

/// A completed experiment: its report plus the wall time it took.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The spec's `name`.
    pub name: &'static str,
    /// The report the experiment produced.
    pub report: Report,
    /// Wall-clock seconds this experiment took (trials included).
    pub wall_s: f64,
}

/// The machine-readable record of one run, written to
/// `target/experiments/manifest.json`.
#[derive(Debug, Clone, Deserialize)]
pub struct Manifest {
    /// Root seed the run derived every trial seed from.
    pub root_seed: u64,
    /// Thread budget the run was given.
    pub threads: usize,
    /// End-to-end wall time, seconds.
    pub total_wall_s: f64,
    /// Per-experiment entries, in execution (spec) order.
    pub experiments: Vec<ManifestEntry>,
    /// Aggregated observability metrics, present only when the run had
    /// ambient recording enabled (`--obs`). Deliberately *not* part of
    /// `ManifestEntry::metrics`, which the golden-manifest gate compares
    /// bit-exactly with no extra keys allowed.
    pub obs: Option<edb_obs::MetricsSnapshot>,
}

// Serialization is hand-written (deserialization is derived: a missing
// `obs` key reads as `None`) so that a run *without* recording produces
// a manifest byte-identical to the pre-observability format — the
// derive would emit `"obs": null`. The golden-manifest CI gate depends
// on attached-vs-detached runs differing only by the presence of this
// one key.
impl Serialize for Manifest {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![
            (
                Value::Str("root_seed".to_string()),
                self.root_seed.to_value(),
            ),
            (Value::Str("threads".to_string()), self.threads.to_value()),
            (
                Value::Str("total_wall_s".to_string()),
                self.total_wall_s.to_value(),
            ),
            (
                Value::Str("experiments".to_string()),
                self.experiments.to_value(),
            ),
        ];
        if let Some(obs) = &self.obs {
            fields.push((Value::Str("obs".to_string()), obs.to_value()));
        }
        Value::Map(fields)
    }
}

/// One experiment's row in the [`Manifest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The spec's machine name.
    pub name: String,
    /// The report title.
    pub title: String,
    /// Wall-clock seconds for this experiment.
    pub wall_s: f64,
    /// Trials executed under this experiment (sub-sweeps included).
    pub trials: u64,
    /// The report's named metrics.
    pub metrics: BTreeMap<String, f64>,
}

/// The deterministic parallel trial pool.
///
/// Construct one with a thread budget and root seed, then hand it to
/// experiments ([`ExperimentSpec::run`]) or call
/// [`map_trials`](Runner::map_trials) directly.
#[derive(Debug)]
pub struct Runner {
    threads: usize,
    root_seed: u64,
    progress: bool,
    write_manifest: bool,
    max_trials: Option<usize>,
    budget: Budget,
    trials_run: Mutex<BTreeMap<String, u64>>,
}

impl Runner {
    /// A runner with progress lines on stderr and manifest writing
    /// enabled — what the bins use.
    pub fn new(threads: usize, root_seed: u64) -> Self {
        Self::build(threads, root_seed, true)
    }

    /// A silent runner that also skips the manifest — what tests use.
    pub fn quiet(threads: usize, root_seed: u64) -> Self {
        Self::build(threads, root_seed, false)
    }

    fn build(threads: usize, root_seed: u64, chatty: bool) -> Self {
        let threads = threads.max(1);
        Runner {
            threads,
            root_seed,
            progress: chatty,
            write_manifest: chatty,
            max_trials: None,
            budget: Budget {
                permits: Mutex::new(threads - 1),
            },
            trials_run: Mutex::new(BTreeMap::new()),
        }
    }

    /// Caps every [`map_trials`](Runner::map_trials) call at `n` trials.
    ///
    /// This is the CI smoke budget: the suite runs end to end with the
    /// same seed derivation (trial `i` keeps the exact seed it would
    /// have in a full run — the cap truncates, it never re-derives), so
    /// a capped run's metrics are a deterministic function of the root
    /// seed and the cap, comparable against a golden manifest produced
    /// with the same cap. `None` (the default) runs every trial.
    pub fn with_max_trials(mut self, max_trials: Option<usize>) -> Self {
        self.max_trials = max_trials;
        self
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The run's root seed.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// [`seed_for`] with this runner's root seed filled in.
    pub fn seed_for(&self, experiment: &str, trial: u64) -> u64 {
        seed_for(self.root_seed, experiment, trial)
    }

    fn say(&self, msg: std::fmt::Arguments<'_>) {
        if self.progress {
            eprintln!("[runner] {msg}");
        }
    }

    /// Work-stealing fan-out of `n` index-addressed jobs, results
    /// returned in index order. The calling thread always works;
    /// `extra` threads join if the budget allows.
    fn fan_out<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let out = f(i);
            slots.lock().unwrap().push((i, out));
        };
        let extra = self.budget.try_acquire(n - 1);
        if extra == 0 {
            work();
        } else {
            std::thread::scope(|s| {
                for _ in 0..extra {
                    s.spawn(work);
                }
                work();
            });
            self.budget.release(extra);
        }
        let mut v = slots.into_inner().unwrap();
        v.sort_unstable_by_key(|&(i, _)| i);
        v.into_iter().map(|(_, t)| t).collect()
    }

    /// Runs `n` trials of `experiment` through the pool and returns
    /// their outputs in trial order.
    ///
    /// Each trial gets a [`TrialCtx`] carrying its derived seed; as long
    /// as the closure takes its randomness from `ctx.seed`, the returned
    /// `Vec` is bit-identical at any thread count.
    pub fn map_trials<T, F>(&self, experiment: &str, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&TrialCtx) -> T + Sync,
    {
        let n = match self.max_trials {
            Some(m) => n.min(m.max(1)),
            None => n,
        };
        if n == 0 {
            return Vec::new();
        }
        *self
            .trials_run
            .lock()
            .unwrap()
            .entry(experiment.to_string())
            .or_insert(0) += n as u64;
        self.fan_out(n, |i| {
            let ctx = TrialCtx {
                experiment,
                trial: i,
                seed: seed_for(self.root_seed, experiment, i as u64),
            };
            f(&ctx)
        })
    }

    /// Trials executed so far for `experiment`, sub-experiments
    /// (`name/...`) included.
    fn trials_under(&self, name: &str) -> u64 {
        let prefix = format!("{name}/");
        self.trials_run
            .lock()
            .unwrap()
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Runs a suite of experiments through the pool — whole experiments
    /// and the trials inside them share the same thread budget — then
    /// writes the run [`Manifest`].
    ///
    /// Results come back in spec order regardless of which finished
    /// first.
    pub fn run_experiments(&self, specs: &[ExperimentSpec]) -> Vec<ExperimentResult> {
        let t0 = Instant::now();
        self.say(format_args!(
            "{} experiment(s), {} thread(s), root seed {}",
            specs.len(),
            self.threads,
            self.root_seed
        ));
        let results = self.fan_out(specs.len(), |i| {
            let spec = &specs[i];
            self.say(format_args!("{:<12} start", spec.name));
            let t = Instant::now();
            let report = (spec.run)(self);
            let wall_s = t.elapsed().as_secs_f64();
            self.say(format_args!("{:<12} done in {wall_s:.2} s", spec.name));
            ExperimentResult {
                name: spec.name,
                report,
                wall_s,
            }
        });
        let total_wall_s = t0.elapsed().as_secs_f64();
        let manifest = self.manifest(specs, &results, total_wall_s);
        if self.write_manifest {
            match serde_json::to_string_pretty(&manifest) {
                Ok(json) => {
                    let path = write_artifact("manifest.json", &json);
                    self.say(format_args!("manifest: {path}"));
                }
                Err(e) => self.say(format_args!("manifest serialization failed: {e}")),
            }
        }
        self.say(format_args!("suite wall time {total_wall_s:.2} s"));
        results
    }

    /// Builds the [`Manifest`] for a completed set of experiments.
    pub fn manifest(
        &self,
        specs: &[ExperimentSpec],
        results: &[ExperimentResult],
        total_wall_s: f64,
    ) -> Manifest {
        Manifest {
            root_seed: self.root_seed,
            threads: self.threads,
            total_wall_s,
            obs: edb_obs::ambient::snapshot(),
            experiments: results
                .iter()
                .zip(specs)
                .map(|(r, s)| ManifestEntry {
                    name: r.name.to_string(),
                    title: s.title.to_string(),
                    wall_s: r.wall_s,
                    trials: self.trials_under(r.name),
                    metrics: r.report.metrics.clone(),
                })
                .collect(),
        }
    }
}

/// Shared command-line handling for the experiment bins: `--threads N`,
/// `--seed S`, `--max-trials N`, plus the observability flags `--obs
/// CATS`, `--trace-out PATH`, and `--profile-out PATH`, with the rest
/// of the arguments left for the bin.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Thread budget (defaults to the machine's parallelism).
    pub threads: usize,
    /// Root seed (defaults to 42 — the suite's published numbers).
    pub root_seed: u64,
    /// Per-call trial cap (defaults to none — the full budget).
    pub max_trials: Option<usize>,
    /// Categories to record (`--obs all`, `--obs cpu,energy`, ...).
    /// `None` when `--obs` was not passed; recording stays off.
    pub obs: Option<edb_obs::CategoryMask>,
    /// Where to write a Perfetto trace, for bins that export one.
    pub trace_out: Option<String>,
    /// Where to write the sampling energy profile, for bins that export
    /// one.
    pub profile_out: Option<String>,
    rest: Vec<String>,
}

impl Cli {
    /// Parses the process arguments and applies `--obs` (every bench
    /// bin honors the flag; [`parse`](Cli::parse) stays side-effect
    /// free for tests).
    pub fn from_env() -> Self {
        let cli = Self::parse(std::env::args().skip(1));
        cli.enable_obs();
        cli
    }

    /// Parses an explicit argument list (testable).
    ///
    /// Exits with status 2 on a malformed `--threads` / `--seed` /
    /// `--max-trials`.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        fn number<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
            value
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(flag))
        }
        fn usage(flag: &str) -> ! {
            eprintln!(
                "error: {flag} takes a number (usage: [--threads N] [--seed S] [--max-trials N] \
                 [--obs CATS] [--trace-out PATH] [--profile-out PATH])"
            );
            std::process::exit(2);
        }
        fn mask(value: Option<String>) -> edb_obs::CategoryMask {
            let raw = value.unwrap_or_default();
            edb_obs::CategoryMask::parse(&raw).unwrap_or_else(|e| {
                eprintln!("error: --obs: {e} (try `all` or a list like `cpu,energy`)");
                std::process::exit(2);
            })
        }
        fn path(flag: &str, value: Option<String>) -> String {
            value.unwrap_or_else(|| {
                eprintln!("error: {flag} takes a path");
                std::process::exit(2);
            })
        }
        let mut threads = default_threads();
        let mut root_seed = 42;
        let mut max_trials = None;
        let mut obs = None;
        let mut trace_out = None;
        let mut profile_out = None;
        let mut rest = Vec::new();
        let mut it = args;
        while let Some(a) = it.next() {
            if let Some(v) = a.strip_prefix("--threads=") {
                threads = number("--threads", Some(v.to_string()));
            } else if a == "--threads" {
                threads = number("--threads", it.next());
            } else if let Some(v) = a.strip_prefix("--seed=") {
                root_seed = number("--seed", Some(v.to_string()));
            } else if a == "--seed" {
                root_seed = number("--seed", it.next());
            } else if let Some(v) = a.strip_prefix("--max-trials=") {
                max_trials = Some(number("--max-trials", Some(v.to_string())));
            } else if a == "--max-trials" {
                max_trials = Some(number("--max-trials", it.next()));
            } else if let Some(v) = a.strip_prefix("--obs=") {
                obs = Some(mask(Some(v.to_string())));
            } else if a == "--obs" {
                obs = Some(mask(it.next()));
            } else if let Some(v) = a.strip_prefix("--trace-out=") {
                trace_out = Some(v.to_string());
            } else if a == "--trace-out" {
                trace_out = Some(path("--trace-out", it.next()));
            } else if let Some(v) = a.strip_prefix("--profile-out=") {
                profile_out = Some(v.to_string());
            } else if a == "--profile-out" {
                profile_out = Some(path("--profile-out", it.next()));
            } else {
                rest.push(a);
            }
        }
        Cli {
            threads,
            root_seed,
            max_trials,
            obs,
            trace_out,
            profile_out,
            rest,
        }
    }

    /// Whether a leftover flag (e.g. `--sweep`) was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    /// A [`Runner`] configured from the parsed arguments.
    pub fn runner(&self) -> Runner {
        Runner::new(self.threads, self.root_seed).with_max_trials(self.max_trials)
    }

    /// Turn ambient recording on when `--obs` was passed. Every
    /// [`edb_core::SystemBuilder::build`] after this call attaches a
    /// recorder with the requested categories, and the aggregated
    /// metrics land in the manifest's `obs` block.
    pub fn enable_obs(&self) {
        if let Some(mask) = self.obs {
            edb_obs::ambient::enable(edb_obs::RecorderConfig::with_categories(mask));
        }
    }
}

/// The machine's available parallelism (1 if unknowable).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_for_is_stable_and_well_spread() {
        // Pure function: same inputs, same seed.
        assert_eq!(seed_for(42, "table3", 7), seed_for(42, "table3", 7));
        // Distinct along every axis.
        let base = seed_for(42, "table3", 0);
        assert_ne!(base, seed_for(42, "table3", 1));
        assert_ne!(base, seed_for(42, "table2", 0));
        assert_ne!(base, seed_for(43, "table3", 0));
        // Trial seeds within an experiment are all distinct.
        let seeds: std::collections::BTreeSet<u64> =
            (0..1000).map(|t| seed_for(42, "x", t)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn max_trials_truncates_without_reseeding() {
        let job = |ctx: &TrialCtx| (ctx.trial, ctx.seed);
        let full = Runner::quiet(1, 9).map_trials("exp", 64, job);
        let capped = Runner::quiet(1, 9)
            .with_max_trials(Some(5))
            .map_trials("exp", 64, job);
        // The capped run is an exact prefix of the full run: same trial
        // indices, same derived seeds.
        assert_eq!(capped, full[..5]);
        // A cap larger than the budget changes nothing.
        let roomy = Runner::quiet(1, 9)
            .with_max_trials(Some(1000))
            .map_trials("exp", 64, job);
        assert_eq!(roomy, full);
        // The cap never drops below one trial per call.
        let floor = Runner::quiet(1, 9)
            .with_max_trials(Some(0))
            .map_trials("exp", 64, job);
        assert_eq!(floor, full[..1]);
        // Cli wires the flag through in both spellings.
        let cli = Cli::parse(["--max-trials", "3"].iter().map(|s| s.to_string()));
        assert_eq!(cli.max_trials, Some(3));
        let cli = Cli::parse(["--max-trials=7"].iter().map(|s| s.to_string()));
        assert_eq!(cli.max_trials, Some(7));
        let cli = Cli::parse(std::iter::empty());
        assert_eq!(cli.max_trials, None);
    }

    #[test]
    fn map_trials_is_bit_identical_across_thread_counts() {
        let job = |ctx: &TrialCtx| (ctx.trial, ctx.seed, (ctx.seed as f64).sqrt());
        let seq = Runner::quiet(1, 9).map_trials("exp", 64, job);
        for threads in [2, 4, 8] {
            let par = Runner::quiet(threads, 9).map_trials("exp", 64, job);
            assert_eq!(seq, par, "divergence at {threads} threads");
        }
        // Results arrive in trial order.
        for (i, (trial, seed, _)) in seq.iter().enumerate() {
            assert_eq!(*trial, i);
            assert_eq!(*seed, seed_for(9, "exp", i as u64));
        }
    }

    #[test]
    fn nested_fan_out_shares_the_budget_without_deadlock() {
        let runner = Runner::quiet(3, 1);
        let out = runner.map_trials("outer", 8, |outer| {
            runner
                .map_trials("outer/inner", 8, |inner| inner.seed % 97)
                .iter()
                .sum::<u64>()
                + outer.trial as u64
        });
        assert_eq!(out.len(), 8);
        let again = {
            let r = Runner::quiet(1, 1);
            r.map_trials("outer", 8, |outer| {
                r.map_trials("outer/inner", 8, |inner| inner.seed % 97)
                    .iter()
                    .sum::<u64>()
                    + outer.trial as u64
            })
        };
        assert_eq!(out, again);
        // Sub-experiment trials count toward the parent.
        assert_eq!(runner.trials_under("outer"), 8 + 64);
    }

    #[test]
    fn run_experiments_preserves_spec_order_and_counts_trials() {
        fn fast(r: &Runner) -> Report {
            let vals = r.map_trials("fast", 4, |ctx| ctx.seed as f64);
            let mut rep = Report::new("fast");
            rep.metric("sum", vals.iter().sum());
            rep
        }
        fn slow(r: &Runner) -> Report {
            let vals = r.map_trials("slow", 2, |ctx| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ctx.seed as f64
            });
            let mut rep = Report::new("slow");
            rep.metric("sum", vals.iter().sum());
            rep
        }
        let specs = [
            ExperimentSpec {
                name: "slow",
                title: "slow one",
                run: slow,
            },
            ExperimentSpec {
                name: "fast",
                title: "fast one",
                run: fast,
            },
        ];
        let runner = Runner::quiet(4, 5);
        let results = runner.run_experiments(&specs);
        assert_eq!(results[0].name, "slow");
        assert_eq!(results[1].name, "fast");
        let manifest = runner.manifest(&specs, &results, 0.1);
        assert_eq!(manifest.experiments[0].trials, 2);
        assert_eq!(manifest.experiments[1].trials, 4);
        assert_eq!(
            manifest.experiments[1].metrics["sum"],
            results[1].report.get("sum")
        );
        // The manifest round-trips through JSON.
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.experiments.len(), 2);
        assert_eq!(back.root_seed, 5);
    }

    #[test]
    fn cli_parses_threads_seed_and_leftovers() {
        let cli = Cli::parse(
            ["--threads", "3", "--sweep", "--seed=7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cli.threads, 3);
        assert_eq!(cli.root_seed, 7);
        assert!(cli.flag("--sweep"));
        assert!(!cli.flag("--other"));
        let default = Cli::parse(std::iter::empty());
        assert_eq!(default.root_seed, 42);
        assert!(default.threads >= 1);
    }
}
