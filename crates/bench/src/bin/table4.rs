//! Regenerates the paper's table4 experiment. See `edb_bench::table4`.
fn main() {
    println!("{}", edb_bench::table4::run());
}
