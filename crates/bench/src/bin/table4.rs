//! Regenerates the paper's table4 experiment. See `edb_bench::table4`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::table4::SPEC]) {
        println!("{}", result.report);
    }
}
