//! Records the fig7 debugging session and a 100-tag fleet run, then
//! replays both with divergence assertions. See `edb_bench::replay`.
//!
//! ```text
//! replay [--threads N] [--tags T] [--slots S] [--out DIR]
//! ```
//!
//! Verification runs on `N` threads at once to show thread count cannot
//! perturb replay; the raw `.edbr` recordings land in `DIR` (default
//! `target/replay-artifacts`) so CI can attach them to a failure. Exits
//! nonzero on any divergence or byte-instability.

use std::path::PathBuf;

fn main() {
    let mut threads = 1usize;
    let mut tags = 100usize;
    let mut slots = 400u64;
    let mut out = PathBuf::from("target/replay-artifacts");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| {
            args.next()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| usage(&format!("{what} needs a number")))
        };
        match arg.as_str() {
            "--threads" => threads = num("--threads") as usize,
            "--tags" => tags = num("--tags") as usize,
            "--slots" => slots = num("--slots"),
            "--out" => {
                out = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a directory"))
            }
            "--help" | "-h" => {
                println!("usage: replay [--threads N] [--tags T] [--slots S] [--out DIR]");
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = edb_bench::replay::run(tags, slots, threads, Some(&out));
    println!("{report}");
    let clean = report.get("divergences") == 0.0
        && report.get("fig7_byte_stable") == 1.0
        && report.get("fleet_byte_stable") == 1.0;
    if !clean {
        eprintln!(
            "replay: FAILED (divergence or byte-instability; recordings in {})",
            out.display()
        );
        std::process::exit(1);
    }
}

fn usage(message: &str) -> ! {
    eprintln!("replay: {message}\nusage: replay [--threads N] [--tags T] [--slots S] [--out DIR]");
    std::process::exit(2);
}
