//! Regenerates the paper's fig2 experiment. See `edb_bench::fig2`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::fig2::SPEC]) {
        println!("{}", result.report);
    }
}
