//! Regenerates the paper's fig2 experiment. See `edb_bench::fig2`.
fn main() {
    println!("{}", edb_bench::fig2::run());
}
