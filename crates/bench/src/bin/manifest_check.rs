//! CI gate: compares a freshly produced `manifest.json` against the
//! checked-in golden manifest.
//!
//! Two families of check, matching the two things the manifest records:
//!
//! * **Metrics are exact.** Every experiment in the golden must appear
//!   in the candidate with bit-identical metric values and the same
//!   trial count — the suite is deterministic for a given root seed and
//!   trial budget, so any difference is a real behavior change (or a
//!   stale golden), never noise.
//! * **Wall time is bounded.** The candidate's `total_wall_s` may not
//!   exceed the golden's by more than the regression factor (default
//!   1.3, i.e. +30%) — wall clocks are noisy, so this is a tripwire for
//!   large regressions, not a precision gate.
//!
//! Usage: `manifest_check <golden.json> <candidate.json>
//! [--wall-factor F] [--ignore-wall]`. Exits 0 on pass, 1 on any
//! failed check, 2 on usage/parse errors.

use edb_bench::runner::Manifest;
use std::process::ExitCode;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: manifest_check <golden.json> <candidate.json> [--wall-factor F] [--ignore-wall]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Manifest {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut wall_factor = 1.3f64;
    let mut ignore_wall = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--wall-factor=") {
            wall_factor = v
                .parse()
                .unwrap_or_else(|_| die("--wall-factor takes a number"));
        } else if a == "--wall-factor" {
            wall_factor = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--wall-factor takes a number"));
        } else if a == "--ignore-wall" {
            ignore_wall = true;
        } else if a.starts_with("--") {
            die(&format!("unknown flag {a}"));
        } else {
            paths.push(a);
        }
    }
    let [golden_path, candidate_path] = paths.as_slice() else {
        die("expected exactly two manifest paths");
    };
    let golden = load(golden_path);
    let candidate = load(candidate_path);

    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures += 1;
    };

    if candidate.root_seed != golden.root_seed {
        fail(format!(
            "root seed {} != golden {}",
            candidate.root_seed, golden.root_seed
        ));
    }

    let cand_names: Vec<&str> = candidate
        .experiments
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    let gold_names: Vec<&str> = golden.experiments.iter().map(|e| e.name.as_str()).collect();
    if cand_names != gold_names {
        fail(format!(
            "experiment set {cand_names:?} != golden {gold_names:?}"
        ));
    }

    for gold in &golden.experiments {
        let Some(cand) = candidate.experiments.iter().find(|e| e.name == gold.name) else {
            continue; // already reported by the set check
        };
        if cand.trials != gold.trials {
            fail(format!(
                "{}: {} trials != golden {}",
                gold.name, cand.trials, gold.trials
            ));
        }
        for (key, &gold_val) in &gold.metrics {
            match cand.metrics.get(key) {
                // Bit comparison: exact equality including NaN and
                // signed-zero cases, which `==` would mishandle.
                Some(&cand_val) if cand_val.to_bits() == gold_val.to_bits() => {}
                Some(&cand_val) => fail(format!(
                    "{}: metric {key} = {cand_val} != golden {gold_val}",
                    gold.name
                )),
                None => fail(format!("{}: metric {key} missing", gold.name)),
            }
        }
        for key in cand.metrics.keys() {
            if !gold.metrics.contains_key(key) {
                fail(format!(
                    "{}: metric {key} not in golden (stale golden manifest?)",
                    gold.name
                ));
            }
        }
    }

    let wall_limit = golden.total_wall_s * wall_factor;
    if ignore_wall {
        println!(
            "wall: {:.2} s (golden {:.2} s, check skipped)",
            candidate.total_wall_s, golden.total_wall_s
        );
    } else if candidate.total_wall_s > wall_limit {
        fail(format!(
            "total wall {:.2} s exceeds {:.2} s ({}x golden {:.2} s)",
            candidate.total_wall_s, wall_limit, wall_factor, golden.total_wall_s
        ));
    } else {
        println!(
            "wall: {:.2} s within {:.2} s budget ({}x golden {:.2} s)",
            candidate.total_wall_s, wall_limit, wall_factor, golden.total_wall_s
        );
    }

    if failures == 0 {
        println!(
            "OK: {} experiment(s), all metrics bit-identical to golden",
            golden.experiments.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("manifest check failed: {failures} difference(s)");
        ExitCode::FAILURE
    }
}
