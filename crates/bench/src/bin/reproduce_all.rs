//! Runs every table/figure experiment and writes a combined summary to
//! `target/experiments/summary.md`.
fn main() {
    let mut all = String::new();
    let reports = vec![
        edb_bench::table2::run(),
        edb_bench::table3::run(true),
        edb_bench::table4::run(),
        edb_bench::fig2::run(),
        edb_bench::fig3::run(),
        edb_bench::fig7::run(),
        edb_bench::fig9::run(),
        edb_bench::fig11::run(),
        edb_bench::fig12::run(),
        edb_bench::claims::run(),
        edb_bench::ablations::run(),
    ];
    for r in reports {
        println!("{r}");
        all.push_str(&format!("{r}\n"));
    }
    let path = edb_bench::write_artifact("summary.md", &all);
    println!("combined summary: {path}");
}
