//! Runs every table/figure experiment through the deterministic
//! parallel runner and writes a combined summary to
//! `target/experiments/summary.md` plus the machine-readable run
//! manifest to `target/experiments/manifest.json`.
//!
//! Flags: `--threads N` (parallelism budget; `--threads 1` is the
//! sequential path), `--seed S` (root seed; defaults to 42, the
//! suite's published numbers), `--obs CATS` (attach an ambient
//! recorder to every simulated system; aggregated metrics land in the
//! manifest's `obs` block without perturbing any experiment metric).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    let runner = cli.runner();
    let results = runner.run_experiments(&edb_bench::all_specs());
    let mut all = String::new();
    for r in &results {
        println!("{}", r.report);
        all.push_str(&format!("{}\n", r.report));
    }
    let path = edb_bench::write_artifact("summary.md", &all);
    println!("combined summary: {path}");
}
