//! Runs the checkpoint-strategy sweep. See `edb_bench::ckpt`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
//! Writes `target/experiments/manifest.json` for `bench_export`
//! (`BENCH_9.json`).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::ckpt::SPEC]) {
        println!("{}", result.report);
    }
}
