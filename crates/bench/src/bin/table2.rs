//! Regenerates the paper's table2 experiment. See `edb_bench::table2`.
fn main() {
    println!("{}", edb_bench::table2::run());
}
