//! The benchmark-trend regression gate.
//!
//! Merges the history trend file(s) with a fresh snapshot and fails
//! (exit 1) when fleet throughput dropped more than the threshold
//! below the best same-host run on record:
//!
//! ```text
//! bench_trend --new PATH [--history PATH]... [--out PATH]
//!             [--threshold FRACTION]
//! ```
//!
//! Missing history files are skipped with a note (first run of a
//! repository has none); an empty usable history passes trivially and
//! seeds the trend. The merged file (history + new snapshot, oldest
//! first) is written to `--out` for upload as the next run's history.

use edb_bench::trend::{gate, GateOutcome, TrendFile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut new_path: Option<String> = None;
    let mut history_paths: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut threshold = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--new" => {
                new_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--history" => {
                history_paths.push(args[i + 1].clone());
                i += 2;
            }
            "--out" => {
                out_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--threshold" => {
                threshold = args[i + 1].parse().expect("--threshold takes a fraction");
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let new_path = new_path.expect("--new PATH is required");

    let new_file = TrendFile::parse(
        &std::fs::read_to_string(&new_path)
            .unwrap_or_else(|e| panic!("cannot read {new_path}: {e}")),
    )
    .expect("new snapshot parses");
    let new = new_file
        .snapshots
        .last()
        .expect("new snapshot file holds at least one snapshot")
        .clone();

    let mut history = Vec::new();
    for path in &history_paths {
        match std::fs::read_to_string(path) {
            Ok(json) => match TrendFile::parse(&json) {
                Ok(file) => {
                    println!(
                        "[bench_trend] history {path}: {} snapshot(s)",
                        file.snapshots.len()
                    );
                    history.extend(file.snapshots);
                }
                Err(e) => println!("[bench_trend] skipping {path}: {e}"),
            },
            Err(_) => println!("[bench_trend] no history at {path} (first run?)"),
        }
    }

    let outcome = gate(&history, &new, threshold);
    match &outcome {
        GateOutcome::NoBaseline => println!(
            "[bench_trend] no {} baseline — {:.3e} tag·cycles/sec seeds the trend",
            new.host, new.tag_cycles_per_sec
        ),
        GateOutcome::Compared {
            best,
            best_commit,
            ratio,
            pass,
        } => println!(
            "[bench_trend] {:.3e} vs best {best:.3e} (commit {best_commit}): {:.1}% of best — {}",
            new.tag_cycles_per_sec,
            ratio * 100.0,
            if *pass { "PASS" } else { "REGRESSION" }
        ),
    }

    if let Some(out) = out_path {
        let mut merged = TrendFile::new();
        merged.snapshots = history;
        merged.snapshots.push(new);
        if let Some(dir) = std::path::Path::new(&out).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&out, merged.render()).expect("write merged trend");
        println!("[bench_trend] wrote {out}");
    }

    if !outcome.pass() {
        eprintln!(
            "[bench_trend] FAIL: throughput regressed more than {:.0}% below the best recorded run",
            threshold * 100.0
        );
        std::process::exit(1);
    }
}
