//! Runs the fleet-scale Gen2 inventory sweep. See `edb_bench::fleet`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed),
//! `--max-trials M` (cap cells per fleet — smoke runs).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::fleet::SPEC]) {
        println!("{}", result.report);
    }
}
