//! Regenerates the paper's fig9 experiment. See `edb_bench::fig9`.
fn main() {
    println!("{}", edb_bench::fig9::run());
}
