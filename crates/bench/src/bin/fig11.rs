//! Regenerates the paper's fig11 experiment. See `edb_bench::fig11`.
fn main() {
    println!("{}", edb_bench::fig11::run());
}
