//! Regenerates the paper's fig3 experiment. See `edb_bench::fig3`.
fn main() {
    println!("{}", edb_bench::fig3::run());
}
