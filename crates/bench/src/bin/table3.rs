//! Regenerates the paper's Table 3. Pass `--sweep` for the
//! control-period ablation. See `edb_bench::table3`.
fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep");
    println!("{}", edb_bench::table3::run(sweep));
}
