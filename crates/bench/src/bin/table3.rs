//! Regenerates the paper's Table 3. Pass `--sweep` for the
//! control-period ablation. See `edb_bench::table3`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed),
//! `--sweep` (control-period ablation).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    let spec = if cli.flag("--sweep") {
        edb_bench::table3::SPEC
    } else {
        edb_bench::table3::PLAIN_SPEC
    };
    for result in cli.runner().run_experiments(&[spec]) {
        println!("{}", result.report);
    }
}
