//! Regenerates the paper's fig12 experiment. See `edb_bench::fig12`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::fig12::SPEC]) {
        println!("{}", result.report);
    }
}
