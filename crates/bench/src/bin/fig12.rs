//! Regenerates the paper's fig12 experiment. See `edb_bench::fig12`.
fn main() {
    println!("{}", edb_bench::fig12::run());
}
