//! Regenerates the paper's claims experiment. See `edb_bench::claims`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::claims::SPEC]) {
        println!("{}", result.report);
    }
}
