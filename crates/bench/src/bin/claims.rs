//! Regenerates the paper's claims experiment. See `edb_bench::claims`.
fn main() {
    println!("{}", edb_bench::claims::run());
}
