//! Exports a benchmark-trend snapshot from a run manifest.
//!
//! Reads `target/experiments/manifest.json` (or `--manifest PATH`) and
//! writes a single-snapshot [`TrendFile`] — the unit the `bench-trend`
//! CI step appends to the downloaded history and gates against.
//!
//! ```text
//! bench_export [--manifest PATH] [--out PATH] [--commit SHA]
//!              [--host NAME] [--date-unix SECS]
//! ```
//!
//! Defaults: manifest from the standard artifact path, output to
//! `target/experiments/BENCH_7.json`, commit from `$GITHUB_SHA` (or
//! `unknown`), host from `$EDB_BENCH_HOST` (or `local-dev`), date from
//! the system clock.

use edb_bench::runner::Manifest;
use edb_bench::trend::{civil_date, snapshot_from_manifest, TrendFile};
use std::time::{SystemTime, UNIX_EPOCH};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let manifest_path = flag_value(&args, "--manifest")
        .unwrap_or_else(|| "target/experiments/manifest.json".to_string());
    let out_path =
        flag_value(&args, "--out").unwrap_or_else(|| "target/experiments/BENCH_7.json".to_string());
    let commit = flag_value(&args, "--commit")
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let host = flag_value(&args, "--host")
        .or_else(|| std::env::var("EDB_BENCH_HOST").ok())
        .unwrap_or_else(|| "local-dev".to_string());
    let unix = flag_value(&args, "--date-unix")
        .map(|s| s.parse::<u64>().expect("--date-unix takes seconds"))
        .unwrap_or_else(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .expect("clock after 1970")
                .as_secs()
        });

    let json = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("cannot read {manifest_path}: {e}"));
    let manifest: Manifest =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("malformed manifest: {e}"));

    let snapshot = snapshot_from_manifest(&manifest, &commit, &civil_date(unix), &host);
    println!(
        "[bench_export] commit {} host {} total {:.2}s throughput {:.3e} tag·cycles/sec",
        snapshot.commit, snapshot.host, snapshot.total_wall_s, snapshot.tag_cycles_per_sec
    );

    let mut file = TrendFile::new();
    file.snapshots.push(snapshot);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, file.render()).expect("write snapshot");
    println!("[bench_export] wrote {out_path}");
}
