//! Regenerates the paper's ablations experiment. See `edb_bench::ablations`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::ablations::SPEC]) {
        println!("{}", result.report);
    }
}
