//! Runs the design-choice ablations. See `edb_bench::ablations`.
fn main() {
    println!("{}", edb_bench::ablations::run());
}
