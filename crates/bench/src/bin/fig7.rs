//! Regenerates the paper's fig7 experiment. See `edb_bench::fig7`.
fn main() {
    println!("{}", edb_bench::fig7::run());
}
