//! Regenerates the paper's fig7 experiment. See `edb_bench::fig7`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed),
//! `--obs CATS` (categories to record, default `all`), `--trace-out
//! PATH` (write a Perfetto/Chrome trace of the assert-build run —
//! open it at <https://ui.perfetto.dev>), `--profile-out PATH` (write
//! the sampling energy profile as JSON).
//!
//! With `--trace-out`/`--profile-out` the bin runs the instrumented
//! scenario once with a recorder attached and exports it; without
//! them it reproduces the full figure through the experiment runner.
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    if cli.trace_out.is_some() || cli.profile_out.is_some() {
        let mask = cli.obs.unwrap_or(edb_obs::CategoryMask::ALL);
        let rec = edb_bench::fig7::traced(edb_obs::RecorderConfig::with_categories(mask));
        if let Some(path) = &cli.trace_out {
            std::fs::write(path, rec.perfetto_json()).expect("write trace");
            println!("perfetto trace: {path}");
        }
        if let Some(path) = &cli.profile_out {
            std::fs::write(path, rec.profile_json()).expect("write profile");
            println!("energy profile: {path}");
        }
        return;
    }
    for result in cli.runner().run_experiments(&[edb_bench::fig7::SPEC]) {
        println!("{}", result.report);
    }
}
