//! Runs the static-analysis validation experiment. See
//! `edb_bench::analyze`.
//!
//! Flags: `--threads N` (parallelism budget), `--seed S` (root seed).
//! Writes `target/experiments/manifest.json` for `bench_export`.
fn main() {
    let cli = edb_bench::runner::Cli::from_env();
    for result in cli.runner().run_experiments(&[edb_bench::analyze::SPEC]) {
        println!("{}", result.report);
    }
}
