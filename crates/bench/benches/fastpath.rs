//! Criterion microbenchmarks of the PR 2 fast path: the predecoded
//! instruction cache in `Cpu::step` and the batched energy-integration
//! span in `Device::run_span` / `System::run_for`.
//!
//! These are the low-noise counterparts of the wall-clock numbers in
//! `manifest.json`: Criterion's in-process statistics are robust against
//! the scheduling jitter that plagues whole-binary timing on a loaded
//! box. The acceptance bar is decode-cache ≥2× over cold decode and a
//! visible win for the batched span over the per-step loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edb_core::System;
use edb_device::{Device, DeviceConfig};
use edb_energy::{Fading, SimTime, TheveninSource};
use edb_mcu::asm::assemble;
use edb_mcu::{Cpu, Memory, NullBus};

/// A decode-bound straight-line workload: two-word `movi`s (the widest
/// encoding — a cold fetch reads and decodes both words) interleaved
/// with one-word ALU ops, with no data-memory traffic, long enough to
/// exercise many distinct decode slots. Execution cost per instruction
/// is a register write or one ALU op, so the cached-vs-cold difference
/// isolates the decode cost — the quantity the decode-cache criterion
/// is about.
fn decode_bound_image() -> edb_mcu::Image {
    let body =
        "        add r0, 1\n        xor r2, r0\n        movi r1, 0x2222\n        and r3, 0x7F\n"
            .repeat(64);
    assemble(&format!(
        r#"
        .org 0x4400
        main:
{body}
            jmp main
        .org 0xFFFE
        .word main
        "#
    ))
    .expect("assembles")
}

/// A mixed workload with loads and stores — the shape of real target
/// firmware — used for the device/system-level numbers.
fn alu_image() -> edb_mcu::Image {
    let body =
        "        add r0, 1\n        ld r2, [r1+0]\n        st [r1+2], r2\n        cmpi r0, 0\n"
            .repeat(64);
    assemble(&format!(
        r#"
        .org 0x4400
        main:
            movi r1, 0x1C00
{body}
            jmp main
        .org 0xFFFE
        .word main
        "#
    ))
    .expect("assembles")
}

fn fresh_cpu_mem() -> (Cpu, Memory) {
    let mut mem = Memory::new();
    decode_bound_image().load_into(&mut mem);
    let mut cpu = Cpu::new();
    cpu.reset(&mem);
    (cpu, mem)
}

/// `Memory::fetch_decoded` with the cache warm vs disabled: the
/// component the decode cache replaces, measured in isolation. A hit
/// costs a masked index + tag compare; a cold fetch reads two words
/// from the memory map and decodes them. This is the ≥2× acceptance
/// number for the cache.
fn bench_fetch_decoded(c: &mut Criterion) {
    let mut group = c.benchmark_group("fetch");
    group.throughput(Throughput::Elements(10_000));

    // The addresses of every instruction in the workload, in execution
    // order, collected by decoding once.
    let pcs: Vec<u16> = {
        let mut mem = Memory::new();
        decode_bound_image().load_into(&mut mem);
        let mut pcs = Vec::new();
        let mut pc = 0x4400u16;
        loop {
            let (instr, size, _) = mem.fetch_decoded(pc).expect("decodes");
            pcs.push(pc);
            if matches!(instr, edb_mcu::Instr::J { .. }) {
                break;
            }
            pc = pc.wrapping_add(size as u16 * 2);
        }
        pcs
    };

    group.bench_function("fetch_10k_cache_hit", |b| {
        b.iter_batched(
            || {
                let mut mem = Memory::new();
                decode_bound_image().load_into(&mut mem);
                for &pc in &pcs {
                    let _ = mem.fetch_decoded(pc);
                }
                mem
            },
            |mut mem| {
                let mut acc = 0u32;
                for i in 0..10_000usize {
                    let pc = pcs[i % pcs.len()];
                    if let Ok((_, size, _)) = mem.fetch_decoded(pc) {
                        acc += size as u32;
                    }
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fetch_10k_cold_decode", |b| {
        b.iter_batched(
            || {
                let mut mem = Memory::new();
                decode_bound_image().load_into(&mut mem);
                mem.set_decode_cache_enabled(false);
                mem
            },
            |mut mem| {
                let mut acc = 0u32;
                for i in 0..10_000usize {
                    let pc = pcs[i % pcs.len()];
                    if let Ok((_, size, _)) = mem.fetch_decoded(pc) {
                        acc += size as u32;
                    }
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

/// `Cpu::step` with the decode cache warm vs disabled (every fetch
/// decodes from raw bytes) — the end-to-end effect on the interpreter,
/// execute stage included.
fn bench_decode_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("step_10k_decode_cached", |b| {
        b.iter_batched(
            || {
                let (mut cpu, mut mem) = fresh_cpu_mem();
                // Warm the cache: one full trip through the workload.
                for _ in 0..300 {
                    cpu.step(&mut mem, &mut NullBus);
                }
                (cpu, mem)
            },
            |(mut cpu, mut mem)| {
                for _ in 0..10_000 {
                    cpu.step(&mut mem, &mut NullBus);
                }
                cpu.pc
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("step_10k_decode_cold", |b| {
        b.iter_batched(
            || {
                let (cpu, mut mem) = fresh_cpu_mem();
                mem.set_decode_cache_enabled(false);
                (cpu, mem)
            },
            |(mut cpu, mut mem)| {
                for _ in 0..10_000 {
                    cpu.step(&mut mem, &mut NullBus);
                }
                cpu.pc
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn powered_device() -> Device {
    let mut dev = Device::new(DeviceConfig::wisp5());
    dev.flash(&alu_image());
    dev.set_v_cap(2.45);
    dev
}

/// The batched span vs the per-step loop over the same simulated
/// interval, on tethered power (no power edges: the span runs to its
/// deadline, which is where batching pays the most).
fn bench_batched_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    let window = SimTime::from_ms(2);
    group.throughput(Throughput::Elements(window.as_ns() / 125));

    group.bench_function("integrate_2ms_per_step", |b| {
        b.iter_batched(
            || (powered_device(), TheveninSource::new(3.0, 10.0)),
            |(mut dev, mut src)| {
                let end = dev.now() + window;
                while dev.now() < end {
                    dev.step(&mut src, 0.0);
                }
                dev.total_instructions()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("integrate_2ms_batched_span", |b| {
        b.iter_batched(
            || (powered_device(), TheveninSource::new(3.0, 10.0)),
            |(mut dev, mut src)| {
                let end = dev.now() + window;
                let mut i_ext = |_v: f64| 0.0;
                while dev.now() < end {
                    let cap = match dev.next_silent_deadline() {
                        Some(t) if t < end => t,
                        _ => end,
                    };
                    if cap <= dev.now() {
                        dev.step(&mut src, 0.0);
                    } else {
                        dev.run_span(&mut src, &mut i_ext, cap);
                    }
                }
                dev.total_instructions()
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

/// The full system loop in the harvested fig9 configuration — the
/// experiment critical path. `run_for` takes the batched span path;
/// `step` is the pre-PR shape.
fn bench_system_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    let window = SimTime::from_ms(5);
    group.throughput(Throughput::Elements(window.as_ns() / 125));

    let build = || {
        let mut sys = System::builder(DeviceConfig {
            i_active: 4.4e-3,
            ..DeviceConfig::wisp5()
        })
        .harvester(Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, 9))
        .build();
        sys.flash(&alu_image());
        sys.device_mut().set_v_cap(2.45);
        sys
    };

    group.bench_function("harvested_5ms_per_step", |b| {
        b.iter_batched(
            build,
            |mut sys| {
                let end = sys.now() + window;
                while sys.now() < end {
                    sys.step();
                }
                sys.device().total_instructions()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("harvested_5ms_run_for", |b| {
        b.iter_batched(
            build,
            |mut sys| {
                sys.run_for(window);
                sys.device().total_instructions()
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_fetch_decoded,
    bench_decode_cache,
    bench_batched_integration,
    bench_system_fastpath
);
criterion_main!(benches);
