//! Criterion microbenchmarks of the simulation substrates: how fast the
//! bench itself runs. These are throughput numbers for the *simulator*
//! (steps/second, assembly speed, protocol codec cost), not reproduction
//! results — those live in the experiment binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edb_core::System;
use edb_device::{Device, DeviceConfig};
use edb_energy::{Capacitor, TheveninSource};
use edb_mcu::asm::assemble;
use edb_rfid::crc::{crc16, crc5};
use edb_rfid::{Command, TagReply};

fn spin_image() -> edb_mcu::Image {
    assemble(
        r#"
        .org 0x4400
        main:
            add r0, 1
            jmp main
        .org 0xFFFE
        .word main
        "#,
    )
    .expect("assembles")
}

fn bench_device_stepping(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("step_10k_instructions", |b| {
        b.iter_batched(
            || {
                let mut dev = Device::new(DeviceConfig::wisp5());
                dev.flash(&spin_image());
                dev.set_v_cap(2.45);
                (dev, TheveninSource::new(3.0, 10.0))
            },
            |(mut dev, mut src)| {
                for _ in 0..10_000 {
                    dev.step(&mut src, 0.0);
                }
                dev.total_instructions()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_system_with_edb(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("step_10k_with_edb_attached", |b| {
        b.iter_batched(
            || {
                let mut sys = System::builder(DeviceConfig::wisp5())
                    .harvester(TheveninSource::new(3.2, 1500.0))
                    .build();
                sys.flash(&spin_image());
                sys.device_mut().set_v_cap(2.45);
                sys
            },
            |mut sys| {
                for _ in 0..10_000 {
                    sys.step();
                }
                sys.now()
            },
            BatchSize::SmallInput,
        )
    });
    // Same workload with a full-category recorder attached: the CI
    // bench gate holds this within 5% of the bare variant, pinning the
    // "observation is energy-interference-free *and* cheap" claim.
    group.bench_function("step_10k_with_recorder", |b| {
        b.iter_batched(
            || {
                let mut sys = System::builder(DeviceConfig::wisp5())
                    .harvester(TheveninSource::new(3.2, 1500.0))
                    .with_recorder(edb_obs::RecorderConfig::default())
                    .build();
                sys.flash(&spin_image());
                sys.device_mut().set_v_cap(2.45);
                sys
            },
            |mut sys| {
                for _ in 0..10_000 {
                    sys.step();
                }
                sys.now()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    // `source` is already a complete libEDB-wrapped program.
    let source = edb_apps::linked_list::source(edb_apps::linked_list::Variant::Assert);
    c.bench_function("assemble_linked_list_app", |b| {
        b.iter(|| assemble(std::hint::black_box(&source)).map(|i| i.size_bytes()))
    });
}

fn bench_crcs(c: &mut Criterion) {
    let data: Vec<u8> = (0..1024u32).map(|x| x as u8).collect();
    let mut group = c.benchmark_group("crc");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("crc16_1kib", |b| {
        b.iter(|| crc16(std::hint::black_box(&data)))
    });
    group.bench_function("crc5_1kib", |b| {
        b.iter(|| crc5(std::hint::black_box(&data)))
    });
    group.finish();
}

fn bench_rfid_codec(c: &mut Criterion) {
    c.bench_function("rfid_encode_decode_round", |b| {
        b.iter(|| {
            let q = Command::Query { q: 0, session: 1 }.encode();
            let r = TagReply::Epc { epc: [0xAB; 12] }.encode();
            (
                Command::decode(std::hint::black_box(&q)),
                TagReply::decode(std::hint::black_box(&r)),
            )
        })
    });
}

fn bench_capacitor_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("capacitor_100k_steps", |b| {
        b.iter(|| {
            let mut cap = Capacitor::new(47e-6);
            cap.set_voltage(2.0);
            for k in 0..100_000u32 {
                let i = if k % 2 == 0 { 1e-3 } else { -1e-3 };
                cap.apply_current(i, 250e-9);
            }
            cap.voltage()
        })
    });
    group.finish();
}

fn bench_charge_convergence(c: &mut Criterion) {
    c.bench_function("edb_charge_1v8_to_2v4", |b| {
        b.iter_batched(
            || {
                let mut sys = System::builder(DeviceConfig::wisp5())
                    .harvester(TheveninSource::new(3.2, 1500.0))
                    .build();
                sys.flash(&spin_image());
                sys.device_mut().set_v_cap(1.8);
                sys
            },
            |mut sys| sys.charge_to(2.4),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_device_stepping,
    bench_system_with_edb,
    bench_assembler,
    bench_crcs,
    bench_rfid_codec,
    bench_capacitor_integration,
    bench_charge_convergence,
);
criterion_main!(benches);
