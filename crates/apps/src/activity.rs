//! The activity-recognition application of §5.3.3 (Figure 10,
//! Table 4, Figure 11) — the machine-learning workload from the DINO
//! paper, re-expressed for the IVM-16 target.
//!
//! Each main-loop iteration samples the I²C accelerometer, computes a
//! magnitude feature (|x| + |y|), classifies the window against a
//! trained threshold held in FRAM, and updates non-volatile class
//! counters. Three watchpoints instrument the loop exactly as Figure 10
//! shows: WP1 at the iteration start, WP2 on a "stationary" outcome,
//! WP3 on a "moving" outcome — EDB derives the iteration time/energy
//! profile and an independent copy of the statistics from them.
//!
//! The three [`Variant`]s differ only in the debug-output mechanism, the
//! comparison Table 4 makes:
//!
//! * [`Variant::NoPrint`] — watchpoints only;
//! * [`Variant::UartPrintf`] — the feature value over the
//!   *target-powered* UART each iteration (the conventional approach);
//! * [`Variant::EdbPrintf`] — the same line over EDB's
//!   energy-interference-free printf.

use edb_core::libedb;
use edb_mcu::asm::assemble;
use edb_mcu::Image;

/// FRAM address of the iteration counter.
pub const TOTAL: u16 = 0x6000;
/// FRAM address of the "moving" classification counter.
pub const MOVING: u16 = 0x6002;
/// FRAM address of the "stationary" classification counter.
pub const STATIONARY: u16 = 0x6004;
/// FRAM address of the trained classifier threshold (milli-g of summed
/// |x|+|y| deviation over one window).
pub const THRESHOLD_ADDR: u16 = 0x6006;
/// FRAM address of the init-done magic.
pub const INIT_FLAG: u16 = 0x6008;
/// Accelerometer samples per classification window.
pub const WINDOW: u16 = 4;
/// The trained threshold value. The synthetic wearer's stationary σ is
/// 30 mg and moving σ is 300 mg per axis, so a 4-sample window sums to
/// E ≈ 190 mg vs ≈ 1900 mg; 800 separates the classes cleanly.
pub const THRESHOLD: u16 = 800;
/// Magic marking one-time init as done.
pub const INIT_MAGIC: u16 = 0x4AC7;

/// Watchpoint ID at the start of an iteration.
pub const WP_ITER_START: u8 = 1;
/// Watchpoint ID on a "stationary" outcome.
pub const WP_STATIONARY: u8 = 2;
/// Watchpoint ID on a "moving" outcome.
pub const WP_MOVING: u8 = 3;

/// The debug-output mechanism (Table 4's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// No print statements.
    NoPrint,
    /// `printf` over the target-powered UART.
    UartPrintf,
    /// EDB's energy-interference-free `printf`.
    EdbPrintf,
}

/// The application's assembly source.
pub fn source(variant: Variant) -> String {
    // The paper's trace line carries the intermediate classification
    // result; ours prints "feature total" as one line per iteration.
    let print_args = format!("mov  r0, r7\n    movi r1, {TOTAL:#06x}\n    ld   r1, [r1]\n    call");
    let print_block = match variant {
        Variant::NoPrint => "; (no print)".to_string(),
        Variant::UartPrintf => format!("{print_args} __uart_print2"),
        Variant::EdbPrintf => format!("{print_args} __edb_print2"),
    };
    let app = format!(
        r#"
.org 0x4400
main:
    movi sp, 0x2400
    ; one-time NV initialization
    movi r1, {INIT_FLAG:#06x}
    ld   r0, [r1]
    cmpi r0, {INIT_MAGIC:#06x}
    jz   inited
    movi r2, 0
    movi r3, {TOTAL:#06x}
    st   [r3], r2
    movi r3, {MOVING:#06x}
    st   [r3], r2
    movi r3, {STATIONARY:#06x}
    st   [r3], r2
    movi r3, {THRESHOLD_ADDR:#06x}
    movi r2, {THRESHOLD}
    st   [r3], r2
    movi r0, {INIT_MAGIC:#06x}
    st   [r1], r0
inited:

loop:
    ; WP1: iteration begins
    movi r0, {WP_ITER_START}
    out  CODE_MARKER, r0

    ; sample a window of accelerometer readings over I2C, accumulating
    ; the magnitude feature sum(|x| + |y|) (z carries gravity; ignore it)
    movi r7, 0                 ; feature accumulator
    movi r9, {WINDOW}          ; window countdown
sample_loop:
    movi r0, 1
    out  ACCEL_CTRL, r0
accel_wait:
    in   r0, ACCEL_STATUS
    and  r0, 1
    jz   accel_wait
    in   r2, ACCEL_X
    in   r3, ACCEL_Y
    ; |x|
    mov  r4, r2
    cmpi r4, 0x8000
    jlo  x_pos
    neg  r4
x_pos:
    ; |y|
    mov  r5, r3
    cmpi r5, 0x8000
    jlo  y_pos
    neg  r5
y_pos:
    add  r7, r4
    add  r7, r5
    sub  r9, 1
    jnz  sample_loop

    ; nearest-centroid classification against the trained threshold
    movi r1, {THRESHOLD_ADDR:#06x}
    ld   r6, [r1]
    cmp  r7, r6
    jc   classify_moving       ; unsigned >=

classify_stationary:
    movi r1, {STATIONARY:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0
    {print_block}
    movi r0, {WP_STATIONARY}
    out  CODE_MARKER, r0
    jmp  iter_done

classify_moving:
    movi r1, {MOVING:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0
    {print_block}
    movi r0, {WP_MOVING}
    out  CODE_MARKER, r0

iter_done:
    movi r1, {TOTAL:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0
    jmp  loop

.org 0xFFFE
.word main
"#
    );
    libedb::wrap_program(&app)
}

/// Assembles the application.
///
/// # Panics
///
/// Panics if the bundled source fails to assemble (a bug in this crate).
pub fn image(variant: Variant) -> Image {
    assemble(&source(variant)).expect("activity app must assemble")
}

/// Host-side view of the recorded statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Completed iterations.
    pub total: u16,
    /// Iterations classified "moving".
    pub moving: u16,
    /// Iterations classified "stationary".
    pub stationary: u16,
}

/// Reads the NV statistics from device memory.
pub fn read_stats(mem: &edb_mcu::Memory) -> Stats {
    Stats {
        total: mem.peek_word(TOTAL),
        moving: mem.peek_word(MOVING),
        stationary: mem.peek_word(STATIONARY),
    }
}

/// The reference classifier for one window of samples, for checking the
/// target agrees with the host on the same data.
pub fn classify_window(samples: &[(i16, i16)]) -> bool {
    // true = moving
    let feature: u32 = samples
        .iter()
        .map(|&(x, y)| x.unsigned_abs() as u32 + y.unsigned_abs() as u32)
        .sum();
    feature >= THRESHOLD as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::{Device, DeviceConfig};
    use edb_energy::{SimTime, TheveninSource};

    #[test]
    fn all_variants_assemble() {
        for v in [Variant::NoPrint, Variant::UartPrintf, Variant::EdbPrintf] {
            assert!(image(v).size_bytes() > 100);
        }
    }

    #[test]
    fn classifies_both_regimes_on_continuous_power() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::NoPrint));
        let mut supply = TheveninSource::new(3.0, 10.0);
        // The synthetic wearer holds each regime 0.5-2 s, so run until
        // both classes have accumulated (bounded: the cap only binds if
        // the classifier is broken).
        let cap = SimTime::from_secs(20);
        let mut stats = read_stats(dev.mem());
        while dev.now() < cap
            && (stats.moving <= 50 || stats.stationary <= 50 || stats.total <= 500)
        {
            let chunk = dev.now() + SimTime::from_ms(100);
            while dev.now() < chunk {
                dev.step(&mut supply, 0.0);
            }
            stats = read_stats(dev.mem());
        }
        assert!(stats.total > 500, "sampled {} windows", stats.total);
        assert!(stats.moving > 50, "saw moving windows: {}", stats.moving);
        assert!(
            stats.stationary > 50,
            "saw stationary windows: {}",
            stats.stationary
        );
        assert_eq!(
            stats.total,
            stats.moving + stats.stationary,
            "every completed iteration classified exactly once"
        );
    }

    #[test]
    fn classifier_matches_reference_on_ground_truth() {
        // Feed the reference classifier the device's own I²C samples and
        // compare class totals. The counts can differ by the iterations
        // lost to power failures, so run continuously powered.
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::NoPrint));
        let mut supply = TheveninSource::new(3.0, 10.0);
        let mut window: Vec<(i16, i16)> = Vec::new();
        let mut expected_moving = 0u32;
        let mut expected_total = 0u32;
        let end = SimTime::from_secs(2);
        while dev.now() < end {
            let step = dev.step(&mut supply, 0.0);
            for e in &step.events {
                if let edb_device::DeviceEvent::I2c(txn) = e {
                    window.push((txn.sample.x, txn.sample.y));
                    if window.len() == WINDOW as usize {
                        expected_total += 1;
                        if classify_window(&window) {
                            expected_moving += 1;
                        }
                        window.clear();
                    }
                }
            }
        }
        let stats = read_stats(dev.mem());
        assert!(expected_total > 0);
        // The last window may not be classified yet; allow ±1.
        assert!(
            (stats.moving as i64 - expected_moving as i64).abs() <= 1,
            "device moving={} vs reference {}",
            stats.moving,
            expected_moving
        );
    }

    #[test]
    fn runs_intermittently_and_keeps_stats_in_fram() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::NoPrint));
        let mut src = TheveninSource::new(3.2, 1500.0);
        let end = SimTime::from_secs(2);
        while dev.now() < end {
            dev.step(&mut src, 0.0);
        }
        assert!(dev.reboots() > 5);
        let stats = read_stats(dev.mem());
        assert!(stats.total > 100, "made progress: {}", stats.total);
    }

    #[test]
    fn uart_variant_slows_iterations() {
        let run = |variant| {
            let mut dev = Device::new(DeviceConfig::wisp5());
            dev.flash(&image(variant));
            let mut supply = TheveninSource::new(3.0, 10.0);
            let end = SimTime::from_ms(500);
            while dev.now() < end {
                dev.step(&mut supply, 0.0);
            }
            read_stats(dev.mem()).total
        };
        let plain = run(Variant::NoPrint);
        let uart = run(Variant::UartPrintf);
        assert!(
            uart * 2 < plain,
            "UART printf must slow iterations: {uart} vs {plain}"
        );
    }
}
