//! The WISP RFID firmware of §5.3.4: decode reader commands *in
//! software* and backscatter an EPC reply.
//!
//! Fidelity notes: the real WISP5 firmware decodes the Gen2 waveform in
//! software; our RF front-end does symbol recovery in "hardware" (the
//! demodulator FIFO) but everything protocol-level stays in target code —
//! byte framing with resynchronization, the CRC-5 check that separates
//! valid commands from frames corrupted in flight, command dispatch, and
//! the CRC-16 computation over the outgoing EPC reply. A power failure
//! can cut any of it short, which is why EDB's *external* RF monitoring
//! (decoding the same bytes on its own power) is the only way to see the
//! whole conversation.

use edb_core::libedb;
use edb_mcu::asm::assemble;
use edb_mcu::Image;

/// FRAM address of the valid-commands-decoded counter.
pub const DECODED_OK: u16 = 0x6000;
/// FRAM address of the CRC-failure counter.
pub const DECODED_BAD: u16 = 0x6002;
/// FRAM address of the replies-sent counter.
pub const REPLIES: u16 = 0x6004;
/// FRAM address of the init magic.
pub const INIT_FLAG: u16 = 0x6006;
/// FRAM address of the 12-byte EPC identifier.
pub const EPC_ADDR: u16 = 0x6010;
/// SRAM address of the reply assembly buffer.
pub const RBUF: u16 = 0x1D00;
/// Magic marking one-time init as done.
pub const INIT_MAGIC: u16 = 0x3C3C;

/// The tag's EPC identifier (12 bytes).
pub const EPC: [u8; 12] = *b"WISP5-EDB-01";

/// The firmware's assembly source.
pub fn source() -> String {
    let epc_bytes = EPC
        .iter()
        .map(|b| format!("{b:#04x}"))
        .collect::<Vec<_>>()
        .join(", ");
    let app = format!(
        r#"
.org 0x4400
main:
    movi sp, 0x2400
    ; one-time NV initialization
    movi r1, {INIT_FLAG:#06x}
    ld   r0, [r1]
    cmpi r0, {INIT_MAGIC:#06x}
    jz   inited
    movi r2, 0
    movi r3, {DECODED_OK:#06x}
    st   [r3], r2
    movi r3, {DECODED_BAD:#06x}
    st   [r3], r2
    movi r3, {REPLIES:#06x}
    st   [r3], r2
    movi r0, {INIT_MAGIC:#06x}
    st   [r1], r0
inited:

loop:
    or   r8, PIN_MAIN_LOOP
    out  GPIO_OUT, r8

    ; wait for a full 3-byte command frame
rx_wait:
    in   r0, RF_RX_STATUS
    shr  r0, 8
    cmpi r0, 3
    jl   rx_wait

    in   r2, RF_RX_DATA          ; type
    ; resynchronize: if the first byte is not a known command type,
    ; drop it and realign on the next byte.
    cmpi r2, 0x51
    jz   have_type
    cmpi r2, 0x52
    jz   have_type
    cmpi r2, 0x41
    jz   have_type
    jmp  rx_wait
have_type:
    cmpi r2, 0x41
    jz   rx_ack
    in   r3, RF_RX_DATA          ; payload
    in   r4, RF_RX_DATA          ; wire CRC-5

    push r4
    call crc5_2                  ; r0 = crc5(type, payload)
    pop  r4
    cmp  r0, r4
    jz   crc_ok
    jmp  crc_bad

rx_ack:
    ; Ack frames are four bytes: type, rn_lo, rn_hi, crc5.
rx_ack_wait:
    in   r0, RF_RX_STATUS
    shr  r0, 8
    cmpi r0, 3
    jl   rx_ack_wait
    in   r3, RF_RX_DATA          ; rn low
    in   r4, RF_RX_DATA          ; rn high
    in   r5, RF_RX_DATA          ; wire CRC-5
    push r5
    call crc5_3                  ; r0 = crc5(type, lo, hi)
    pop  r5
    cmp  r0, r5
    jz   crc_ok
crc_bad:
    ; corrupted in flight: count and drop
    movi r1, {DECODED_BAD:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0
    jmp  iter_done
crc_ok:
    movi r1, {DECODED_OK:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0

    ; dispatch: reply to Query and QueryRep (q = 0: always respond)
    cmpi r2, 0x51
    jz   respond
    cmpi r2, 0x52
    jz   respond
    jmp  iter_done               ; Ack etc.: nothing to send

respond:
    ; assemble [0xA2, epc x12] in SRAM, CRC-16 it, transmit
    movi r1, {RBUF:#06x}
    movi r0, 0xA2
    stb  [r1], r0
    add  r1, 1
    movi r2, {EPC_ADDR:#06x}
    movi r3, 12
copy_epc:
    ldb  r0, [r2]
    stb  [r1], r0
    add  r1, 1
    add  r2, 1
    sub  r3, 1
    jnz  copy_epc
    movi r1, {RBUF:#06x}
    movi r2, 13
    call crc16_buf               ; r0 = crc16 over the 13 bytes
    push r0
    ; transmit the frame
    movi r1, {RBUF:#06x}
    movi r3, 13
tx_body:
    ldb  r0, [r1]
    out  RF_TX_DATA, r0
    add  r1, 1
    sub  r3, 1
    jnz  tx_body
    pop  r0
    mov  r2, r0
    and  r2, 0xFF
    out  RF_TX_DATA, r2          ; crc low byte
    shr  r0, 8
    out  RF_TX_DATA, r0          ; crc high byte
    movi r0, 1
    out  RF_TX_CTRL, r0          ; flush onto the air
    movi r1, {REPLIES:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0

iter_done:
    movi r0, PIN_MAIN_LOOP
    not  r0
    and  r8, r0
    out  GPIO_OUT, r8
    jmp  loop

; ------------------------------------------------------------------
; Software CRCs, bit-by-bit, as the real firmware computes them.
; ------------------------------------------------------------------

; CRC-5 (poly x^5+x^3+1, preset 0b01001) over the two bytes in r2, r3.
; Returns r0; clobbers r1, r5, r6, r7.
crc5_2:
    movi r0, 0x09
    mov  r1, r2
    call crc5_byte
    mov  r1, r3
    call crc5_byte
    ret

; CRC-5 over the three bytes in r2, r3, r4 (Ack frames).
crc5_3:
    movi r0, 0x09
    mov  r1, r2
    call crc5_byte
    mov  r1, r3
    call crc5_byte
    mov  r1, r4
    call crc5_byte
    ret
crc5_byte:
    movi r7, 8
c5b_loop:
    mov  r5, r1
    shr  r5, 7
    and  r5, 1                   ; input bit (msb first)
    mov  r6, r0
    shr  r6, 4
    and  r6, 1                   ; crc msb
    xor  r5, r6
    shl  r0, 1
    and  r0, 0x1F
    cmpi r5, 0
    jz   c5b_nofb
    xor  r0, 0x09
c5b_nofb:
    shl  r1, 1
    sub  r7, 1
    jnz  c5b_loop
    ret

; CCITT CRC-16 (poly 0x1021, init 0xFFFF, complemented) over r2 bytes at
; [r1]. Returns r0; clobbers r1, r2, r5, r7.
crc16_buf:
    movi r0, 0xFFFF
c16_byte:
    cmpi r2, 0
    jz   c16_done
    ldb  r5, [r1]
    shl  r5, 8
    xor  r0, r5
    movi r7, 8
c16_bit:
    mov  r5, r0
    and  r5, 0x8000
    shl  r0, 1
    cmpi r5, 0
    jz   c16_nofb
    xor  r0, 0x1021
c16_nofb:
    sub  r7, 1
    jnz  c16_bit
    add  r1, 1
    sub  r2, 1
    jmp  c16_byte
c16_done:
    not  r0
    ret

.org {EPC_ADDR:#06x}
epc_data: .byte {epc_bytes}

.org 0xFFFE
.word main
"#
    );
    libedb::wrap_program(&app)
}

/// Assembles the firmware.
///
/// # Panics
///
/// Panics if the bundled source fails to assemble (a bug in this crate).
pub fn image() -> Image {
    assemble(&source()).expect("rfid firmware must assemble")
}

/// Host-side view of the firmware's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FwStats {
    /// Commands that passed the software CRC check.
    pub decoded_ok: u16,
    /// Frames rejected by the CRC check.
    pub decoded_bad: u16,
    /// EPC replies transmitted.
    pub replies: u16,
}

/// Reads the firmware counters from device memory.
pub fn read_stats(mem: &edb_mcu::Memory) -> FwStats {
    FwStats {
        decoded_ok: mem.peek_word(DECODED_OK),
        decoded_bad: mem.peek_word(DECODED_BAD),
        replies: mem.peek_word(REPLIES),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::{Device, DeviceConfig};
    use edb_energy::{SimTime, TheveninSource};
    use edb_rfid::crc::crc5;
    use edb_rfid::{Command, TagReply};

    fn deliver(dev: &mut Device, bytes: &[u8]) {
        for &b in bytes {
            dev.peripherals.rf.deliver_byte(b);
        }
    }

    fn run_ms(dev: &mut Device, supply: &mut TheveninSource, ms: u64) -> Vec<Vec<u8>> {
        let mut replies = Vec::new();
        let end = dev.now() + SimTime::from_ms(ms);
        while dev.now() < end {
            let step = dev.step(supply, 0.0);
            for e in step.events {
                if let edb_device::DeviceEvent::RfTx(frame) = e {
                    replies.push(frame.bytes);
                }
            }
        }
        replies
    }

    #[test]
    fn firmware_assembles() {
        assert!(image().size_bytes() > 300);
    }

    #[test]
    fn valid_query_gets_an_epc_reply() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image());
        let mut supply = TheveninSource::new(3.0, 10.0);
        let _ = run_ms(&mut dev, &mut supply, 5); // boot + init
        deliver(&mut dev, &Command::Query { q: 0, session: 0 }.encode());
        let replies = run_ms(&mut dev, &mut supply, 20);
        assert_eq!(replies.len(), 1, "one reply per query");
        let reply = TagReply::decode(&replies[0]).expect("valid CRC-16 from target");
        assert_eq!(reply, TagReply::Epc { epc: EPC });
        let stats = read_stats(dev.mem());
        assert_eq!(stats.decoded_ok, 1);
        assert_eq!(stats.replies, 1);
    }

    #[test]
    fn corrupted_command_is_rejected_by_software_crc() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image());
        let mut supply = TheveninSource::new(3.0, 10.0);
        let _ = run_ms(&mut dev, &mut supply, 5);
        let mut bad = Command::Query { q: 0, session: 0 }.encode();
        bad[1] ^= 0x04; // corrupt the payload, keep the type byte valid
        deliver(&mut dev, &bad);
        let replies = run_ms(&mut dev, &mut supply, 20);
        assert!(replies.is_empty(), "no reply to a corrupted frame");
        let stats = read_stats(dev.mem());
        assert_eq!(stats.decoded_bad, 1);
        assert_eq!(stats.decoded_ok, 0);
    }

    #[test]
    fn query_rep_also_answered_and_ack_is_not() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image());
        let mut supply = TheveninSource::new(3.0, 10.0);
        let _ = run_ms(&mut dev, &mut supply, 5);
        deliver(&mut dev, &Command::QueryRep { session: 0 }.encode());
        deliver(&mut dev, &Command::Ack { rn: 7 }.encode());
        let replies = run_ms(&mut dev, &mut supply, 30);
        assert_eq!(replies.len(), 1, "QueryRep answered, Ack only consumed");
        let stats = read_stats(dev.mem());
        assert_eq!(stats.decoded_ok, 2, "both commands CRC-checked fine");
    }

    #[test]
    fn target_crc5_matches_host_crc5() {
        // The firmware's bitwise CRC-5 and the host's table-free CRC-5
        // must agree: feed frames with every payload nibble combination.
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image());
        let mut supply = TheveninSource::new(3.0, 10.0);
        let _ = run_ms(&mut dev, &mut supply, 5);
        let mut replies = Vec::new();
        for q in 0..4u8 {
            for session in 0..4u8 {
                let frame = Command::Query { q, session }.encode();
                assert_eq!(frame[2], crc5(&frame[..2]), "host self-check");
                // One frame at a time: the 16-byte RX FIFO is small.
                deliver(&mut dev, &frame);
                replies.extend(run_ms(&mut dev, &mut supply, 20));
            }
        }
        assert_eq!(replies.len(), 16, "every well-formed query answered");
        assert_eq!(read_stats(dev.mem()).decoded_bad, 0);
    }

    #[test]
    fn desynchronized_bytes_resync() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image());
        let mut supply = TheveninSource::new(3.0, 10.0);
        let _ = run_ms(&mut dev, &mut supply, 5);
        // Garbage prefix (as if the tag woke mid-frame), then a frame.
        deliver(&mut dev, &[0x00, 0x13]);
        deliver(&mut dev, &Command::Query { q: 0, session: 0 }.encode());
        let replies = run_ms(&mut dev, &mut supply, 30);
        assert_eq!(replies.len(), 1, "resynchronized and replied");
    }
}
