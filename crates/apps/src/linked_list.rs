//! The linked-list application of Figures 3, 6 and 7: the paper's
//! canonical intermittence bug.
//!
//! A doubly-linked list lives in non-volatile memory. Each main-loop
//! iteration appends a node when the list is empty and removes it
//! otherwise; the node carries a pointer to a buffer in *volatile*
//! memory which is cleared on removal. `append` commits its pointer
//! updates in the order of Figure 6:
//!
//! ```text
//! e->next = NULL
//! e->prev = list->tail
//! list->tail->next = e      ; <- power failure after this line ...
//! list->tail = e            ; <- ... but before this one corrupts the list
//! ```
//!
//! A reboot in that window leaves `tail` pointing at the sentinel while
//! `sentinel->next` already points at `e` — the state in which `remove`
//! takes its else-branch, writes through the NULL-derived wild pointer,
//! reads a "buffer pointer" from address 0 (which the pulled-up bus
//! returns as `0xFFFF`), and `memset`s over the reset vector. From then
//! on the device vectors into garbage on every reboot: the main loop
//! never runs again and only a reflash recovers it — precisely the
//! symptom of §5.3.1.
//!
//! The [`Variant::Assert`] build adds EDB's intermittence-aware
//! assertion of the invariant *"the tail pointer points to the last
//! element"* at the top of `remove`, which catches the inconsistency
//! before any of the confounding consequences.

use edb_core::libedb;
use edb_mcu::asm::assemble;
use edb_mcu::Image;

/// FRAM address of the sentinel (head) node.
pub const HEAD: u16 = 0x6000;
/// FRAM address of the tail pointer variable.
pub const TAILP: u16 = 0x6010;
/// FRAM address of the single element node.
pub const NODE0: u16 = 0x6020;
/// FRAM address of the init-done magic word.
pub const INIT_FLAG: u16 = 0x6030;
/// FRAM address of the completed-iteration counter.
pub const ITER_COUNT: u16 = 0x6032;
/// SRAM address of the volatile data buffer.
pub const VBUF: u16 = 0x1D00;
/// Magic marking one-time init as done.
pub const INIT_MAGIC: u16 = 0x55AA;
/// The assertion site ID used by the instrumented build.
pub const ASSERT_ID: u8 = 3;

/// Byte offset of a node's buffer pointer.
pub const NODE_BUF: u16 = 0;
/// Byte offset of a node's `prev` pointer.
pub const NODE_PREV: u16 = 2;
/// Byte offset of a node's `next` pointer.
pub const NODE_NEXT: u16 = 4;

/// Which build of the application to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The release build: no instrumentation, fails mysteriously.
    Plain,
    /// Instrumented with EDB's keep-alive assertion on the list
    /// invariant.
    Assert,
    /// The *fix*: each iteration runs under a DINO-style task boundary
    /// that versions the list's non-volatile words, making append/remove
    /// atomic with respect to power failures (§6.2's related work,
    /// demonstrated).
    TaskAtomic,
}

/// The application's assembly source.
pub fn source(variant: Variant) -> String {
    let assert_block = match variant {
        Variant::Plain | Variant::TaskAtomic => String::new(),
        Variant::Assert => format!(
            r#"
    ; ASSERT(list->tail->next == NULL): the tail must be the last element.
    movi r5, {TAILP:#06x}
    ld   r5, [r5]
    ld   r5, [r5 + {NODE_NEXT}]
    cmpi r5, 0
    jz   assert_ok
    movi r0, {ASSERT_ID}
    call __edb_assert_fail
assert_ok:
"#
        ),
    };
    let boundary_block = match variant {
        Variant::TaskAtomic => "call __tk_boundary",
        _ => "; (no task boundary)",
    };
    let app = format!(
        r#"
.org 0x4400
main:
    movi sp, 0x2400
    ; one-time NV initialization
    movi r1, {INIT_FLAG:#06x}
    ld   r0, [r1]
    cmpi r0, {INIT_MAGIC:#06x}
    jz   inited
    movi r2, 0
    movi r3, {HEAD:#06x}
    st   [r3 + {NODE_BUF}], r2
    st   [r3 + {NODE_PREV}], r2
    st   [r3 + {NODE_NEXT}], r2
    movi r4, {TAILP:#06x}
    st   [r4], r3                  ; tail = sentinel
    movi r4, {ITER_COUNT:#06x}
    st   [r4], r2
    movi r0, {INIT_MAGIC:#06x}
    st   [r1], r0
inited:

loop:
    {boundary_block}
    ; main-loop progress pin high (the paper's scope channel)
    or   r8, PIN_MAIN_LOOP
    out  GPIO_OUT, r8

    ; empty test: sentinel->next == NULL ?
    movi r1, {HEAD:#06x}
    ld   r2, [r1 + {NODE_NEXT}]
    cmpi r2, 0
    jnz  do_remove

do_append:
    ; e = NODE0; e->buf = VBUF (a volatile buffer)
    movi r3, {NODE0:#06x}
    movi r0, {VBUF:#06x}
    st   [r3 + {NODE_BUF}], r0
    ; e->next = NULL
    movi r0, 0
    st   [r3 + {NODE_NEXT}], r0
    ; e->prev = list->tail
    movi r1, {TAILP:#06x}
    ld   r2, [r1]
    st   [r3 + {NODE_PREV}], r2
    ; list->tail->next = e
    st   [r2 + {NODE_NEXT}], r3
    ; *** a power failure here leaves tail stale: the Figure 6 bug ***
    ; list->tail = e
    st   [r1], r3
    jmp  loop_end

do_remove:
{assert_block}
    ; e = sentinel->next   (r2 from the empty test). Figure 6's order:
    ;   e->prev->next = e->next
    ;   if (e == list->tail) tail = e->prev
    ;   else                 e->next->prev = e->prev
    movi r1, {TAILP:#06x}
    ld   r3, [r1]                  ; tail
    ld   r4, [r2 + {NODE_NEXT}]    ; succ = e->next
    ld   r5, [r2 + {NODE_PREV}]    ; prev (the sentinel when consistent)
    cmp  r2, r3
    jnz  rm_else
    ; consistent case: e == tail. The tail update and the unlink cannot
    ; both be first — removal has its own reboot window, and a failure
    ; between the two stores leaves the same stale-tail state as the
    ; append race.
    st   [r1], r5                  ; tail = e->prev
    st   [r5 + {NODE_NEXT}], r4    ; e->prev->next = e->next
    ld   r5, [r2 + {NODE_BUF}]     ; write data into the volatile buffer
    call memset8
    jmp  loop_end
rm_else:
    ; corrupted-state path — reachable only after an intermittence
    ; failure. Mirrors Figure 6's else-clause:
    st   [r5 + {NODE_NEXT}], r4    ; e->prev->next = e->next
    st   [r4 + {NODE_PREV}], r5    ; e->next->prev = e->prev: WILD WRITE (succ==0)
    ; housekeeping then reads the "front node's" buffer pointer via the
    ; NULL link: address 0 -> 0xFFFF on a pulled-up bus ...
    ld   r5, [r4 + {NODE_BUF}]
    call memset8                   ; ... and memsets over the reset vector.
    jmp  loop_end

loop_end:
    ; count the completed iteration (NV)
    movi r1, {ITER_COUNT:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0
    ; progress pin low
    movi r0, PIN_MAIN_LOOP
    not  r0
    and  r8, r0
    out  GPIO_OUT, r8
    jmp  loop

; fill 8 bytes at r5 with 0xFF (the app's "memset"); clobbers r6, r7
memset8:
    movi r6, 8
    movi r7, 0xFF
ms_loop:
    stb  [r5], r7
    add  r5, 1
    sub  r6, 1
    jnz  ms_loop
    ret

"#
    );
    match variant {
        Variant::TaskAtomic => {
            // The task runtime owns the reset vector; the list's words
            // are the protected set it versions at each boundary.
            let protected = [
                TAILP,
                HEAD + NODE_NEXT,
                NODE0 + NODE_BUF,
                NODE0 + NODE_PREV,
                NODE0 + NODE_NEXT,
                ITER_COUNT,
            ];
            let runtime = edb_runtime::tasks::task_runtime_asm("main", &protected);
            libedb::wrap_program(&format!("{app}\n{runtime}\n.org 0xFFFE\n.word __tk_boot\n"))
        }
        _ => libedb::wrap_program(&format!("{app}\n.org 0xFFFE\n.word main\n")),
    }
}

/// Assembles the application.
///
/// # Panics
///
/// Panics if the bundled source fails to assemble (a bug in this crate).
pub fn image(variant: Variant) -> Image {
    assemble(&source(variant)).expect("linked-list app must assemble")
}

/// Host-side oracle: is the device's list structurally consistent?
/// (Tail reachable and its `next` NULL — the asserted invariant.)
pub fn list_consistent(mem: &edb_mcu::Memory) -> bool {
    if mem.peek_word(INIT_FLAG) != INIT_MAGIC {
        return true; // not yet initialized: vacuously fine
    }
    let tail = mem.peek_word(TAILP);
    if tail == 0 {
        return false;
    }
    mem.peek_word(tail.wrapping_add(NODE_NEXT)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::{Device, DeviceConfig};
    use edb_energy::{Fading, SimTime, TheveninSource};
    use edb_mcu::RESET_VECTOR;

    /// The realistic harvested supply: an RF-like Thévenin source with
    /// slow fading (which also decorrelates brown-out phase from the
    /// program loop, letting the narrow Figure 6 window be struck).
    fn harvested(seed: u64) -> Fading<TheveninSource> {
        Fading::new(TheveninSource::new(3.2, 1500.0), 0.05, seed)
    }

    #[test]
    fn all_variants_assemble() {
        let plain = image(Variant::Plain);
        let instrumented = image(Variant::Assert);
        let atomic = image(Variant::TaskAtomic);
        assert!(plain.size_bytes() > 100);
        assert!(instrumented.size_bytes() > plain.size_bytes());
        assert!(atomic.size_bytes() > instrumented.size_bytes());
    }

    #[test]
    fn task_atomic_variant_never_bricks() {
        // The DINO-style fix: the same workload that destroys the plain
        // build within seconds survives indefinitely when each iteration
        // is a task.
        let image = image(Variant::TaskAtomic);
        let boot = image.symbol("__tk_boot").expect("task runtime linked");
        for seed in 0..3 {
            let mut dev = Device::new(DeviceConfig::wisp5());
            dev.flash(&image);
            let mut src = harvested(seed);
            while dev.now() < SimTime::from_secs(10) {
                dev.step(&mut src, 0.0);
                assert_eq!(
                    dev.mem().peek_word(RESET_VECTOR),
                    boot,
                    "seed {seed}: vector corrupted at {}",
                    dev.now()
                );
            }
            assert!(dev.reboots() > 50, "seed {seed}: really intermittent");
            assert!(
                dev.mem().peek_word(ITER_COUNT) > 1000,
                "seed {seed}: and still making progress"
            );
        }
    }

    #[test]
    fn runs_forever_on_continuous_power() {
        // The paper: "the failure problem never occurs when the device
        // runs on continuous power."
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::Plain));
        let mut supply = TheveninSource::new(3.0, 10.0);
        let end = SimTime::from_ms(300);
        while dev.now() < end {
            dev.step(&mut supply, 0.0);
        }
        assert_eq!(dev.reboots(), 0);
        // Sample consistency at iteration boundaries (the invariant is
        // legitimately in flux for one instruction inside append).
        let mut last_iter = dev.mem().peek_word(ITER_COUNT);
        let mut samples = 0;
        while samples < 50 {
            dev.step(&mut supply, 0.0);
            let it = dev.mem().peek_word(ITER_COUNT);
            if it != last_iter {
                last_iter = it;
                samples += 1;
                assert!(list_consistent(dev.mem()), "inconsistent at iter {it}");
            }
        }
        let iters = dev.mem().peek_word(ITER_COUNT);
        assert!(iters > 1000, "main loop kept running: {iters} iterations");
        assert_eq!(dev.mem().peek_word(RESET_VECTOR), 0x4400);
    }

    #[test]
    fn intermittent_power_eventually_bricks_the_device() {
        // The §5.3.1 symptom: after some time on harvested energy the
        // main loop stops forever and the reset vector is corrupted.
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::Plain));
        let mut src = harvested(2);
        let end = SimTime::from_secs(30);
        let mut corrupted_at = None;
        while dev.now() < end {
            dev.step(&mut src, 0.0);
            if dev.mem().peek_word(RESET_VECTOR) != 0x4400 {
                corrupted_at = Some(dev.now());
                break;
            }
        }
        let at = corrupted_at.expect("the intermittence bug must strike within 30 s");
        assert!(dev.reboots() > 10, "took several charge cycles");
        // The app keeps running until the *next* power failure (the
        // corruption is to FRAM, not to the executing code) ...
        let reboots = dev.reboots();
        while dev.reboots() == reboots {
            dev.step(&mut src, 0.0);
        }
        // ... but after that reboot the device vectors into garbage and
        // the main loop never runs again.
        let iters_at_death = dev.mem().peek_word(ITER_COUNT);
        let resume = dev.now() + SimTime::from_ms(500);
        while dev.now() < resume {
            dev.step(&mut src, 0.0);
        }
        assert_eq!(
            dev.mem().peek_word(ITER_COUNT),
            iters_at_death,
            "main loop must never run again after corruption at {at}"
        );
    }

    #[test]
    fn reflash_recovers_the_bricked_device() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::Plain));
        let mut src = harvested(2);
        let end = SimTime::from_secs(30);
        while dev.now() < end && dev.mem().peek_word(RESET_VECTOR) == 0x4400 {
            dev.step(&mut src, 0.0);
        }
        assert_ne!(dev.mem().peek_word(RESET_VECTOR), 0x4400, "bricked");
        // "The only way to recover is to re-flash the device."
        dev.flash(&image(Variant::Plain));
        let before = dev.mem().peek_word(ITER_COUNT);
        let resume = dev.now() + SimTime::from_ms(300);
        while dev.now() < resume {
            dev.step(&mut src, 0.0);
        }
        assert!(
            dev.mem().peek_word(ITER_COUNT) > before,
            "main loop runs again after reflash"
        );
    }
}
