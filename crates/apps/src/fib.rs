//! The Fibonacci application of Figures 8 and 9: instrumentation whose
//! energy cost grows until it starves the main loop.
//!
//! The app generates the Fibonacci sequence and appends each number to a
//! non-volatile doubly-linked list. The *debug build* begins every
//! main-loop pass with a consistency check that traverses the whole list
//! verifying `prev`/`next` linkage and that each value is the sum of the
//! two before it. The check's energy cost is proportional to the list
//! length, so once the list is long enough the check consumes the entire
//! charge-discharge budget and the main loop never runs again — the
//! paper observed the hang "after having added approximately 555 items".
//!
//! The [`Variant::Guarded`] build wraps the check in EDB energy guards:
//! the check runs on tethered power and the main loop always gets its
//! energy (Figure 9, bottom).

use edb_core::libedb;
use edb_mcu::asm::assemble;
use edb_mcu::Image;

/// FRAM address of the list head pointer (first node or 0).
pub const HEADP: u16 = 0x6000;
/// FRAM address of the tail pointer.
pub const TAILP: u16 = 0x6002;
/// FRAM address of the node count.
pub const COUNT: u16 = 0x6004;
/// FRAM address of the init-done magic word.
pub const INIT_FLAG: u16 = 0x6006;
/// FRAM address of the bump allocator cursor.
pub const ALLOC: u16 = 0x6008;
/// FRAM address of the check-failure counter (consistency violations
/// detected by the instrumented build).
pub const VIOLATIONS: u16 = 0x600A;
/// First address of the node pool.
pub const POOL: u16 = 0x6100;
/// One past the last pool address (~5400 nodes of 6 bytes).
pub const POOL_END: u16 = 0xD000;
/// Magic marking one-time init as done.
pub const INIT_MAGIC: u16 = 0x5A5A;

/// Node byte offsets: value, prev, next.
pub const NODE_VALUE: u16 = 0;
/// See [`NODE_VALUE`].
pub const NODE_PREV: u16 = 2;
/// See [`NODE_VALUE`].
pub const NODE_NEXT: u16 = 4;

/// Which build to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Release build: no consistency check.
    Release,
    /// Debug build: O(n) consistency check at the top of every pass.
    Checked,
    /// Debug build with the check wrapped in EDB energy guards.
    Guarded,
}

/// The application's assembly source.
pub fn source(variant: Variant) -> String {
    let (check_prologue, check_epilogue) = match variant {
        Variant::Release => ("; (release build: no check)".to_string(), String::new()),
        Variant::Checked => ("call consistency_check".to_string(), String::new()),
        Variant::Guarded => (
            "call __edb_guard_begin\n    call consistency_check\n    call __edb_guard_end"
                .to_string(),
            String::new(),
        ),
    };
    let app = format!(
        r#"
.org 0x4400
main:
    movi sp, 0x2400
    ; one-time NV initialization
    movi r1, {INIT_FLAG:#06x}
    ld   r0, [r1]
    cmpi r0, {INIT_MAGIC:#06x}
    jz   inited
    movi r2, 0
    movi r3, {HEADP:#06x}
    st   [r3], r2
    movi r3, {TAILP:#06x}
    st   [r3], r2
    movi r3, {COUNT:#06x}
    st   [r3], r2
    movi r3, {VIOLATIONS:#06x}
    st   [r3], r2
    movi r3, {ALLOC:#06x}
    movi r2, {POOL:#06x}
    st   [r3], r2
    movi r0, {INIT_MAGIC:#06x}
    st   [r1], r0
inited:

loop:
    ; debug-build instrumentation (the "Check" pin brackets it)
    or   r8, PIN_CHECK
    out  GPIO_OUT, r8
    {check_prologue}
    {check_epilogue}
    movi r0, PIN_CHECK
    not  r0
    and  r8, r0
    out  GPIO_OUT, r8

    ; main-loop progress pin high
    or   r8, PIN_MAIN_LOOP
    out  GPIO_OUT, r8

    ; compute the next Fibonacci number from the last two list nodes
    movi r1, {TAILP:#06x}
    ld   r2, [r1]              ; tail node (or 0)
    cmpi r2, 0
    jnz  have_tail
    movi r4, 1                 ; first value: fib(1) = 1
    jmp  append
have_tail:
    ld   r4, [r2 + {NODE_VALUE}]
    ld   r3, [r2 + {NODE_PREV}]
    cmpi r3, 0
    jz   append                ; one node: next value equals it (1, 1, ...)
    ld   r3, [r3 + {NODE_VALUE}]
    add  r4, r3                ; value = tail + tail->prev (wraps mod 2^16)

append:
    ; allocate a node (bump; stop at pool end)
    movi r1, {ALLOC:#06x}
    ld   r5, [r1]
    cmpi r5, {POOL_END:#06x}
    jhs  pool_full             ; unsigned >= : pool exhausted
    ; fill the node before publishing it
    st   [r5 + {NODE_VALUE}], r4
    movi r6, 0
    st   [r5 + {NODE_NEXT}], r6
    movi r1, {TAILP:#06x}
    ld   r2, [r1]
    st   [r5 + {NODE_PREV}], r2
    ; publish: tail->next (or head) = node; tail = node; count++; alloc+=6
    cmpi r2, 0
    jz   first_node
    st   [r2 + {NODE_NEXT}], r5
    jmp  publish_tail
first_node:
    movi r3, {HEADP:#06x}
    st   [r3], r5
publish_tail:
    ; Bump the allocator *before* the tail update: a power failure
    ; between the two leaves an orphaned node (harmless) rather than a
    ; reusable slot that would alias into the list as a cycle.
    movi r1, {ALLOC:#06x}
    ld   r0, [r1]
    add  r0, 6
    st   [r1], r0
    movi r1, {TAILP:#06x}
    st   [r1], r5
    movi r1, {COUNT:#06x}
    ld   r0, [r1]
    add  r0, 1
    st   [r1], r0
pool_full:

    ; progress pin low
    movi r0, PIN_MAIN_LOOP
    not  r0
    and  r8, r0
    out  GPIO_OUT, r8
    jmp  loop

; Traverse the list, verifying linkage and the Fibonacci recurrence.
; Violations are *accumulated* (r9) and the traversal continues, so the
; check's cost is always proportional to the full list length — the
; property that starves the main loop in Figure 9. A visit cap bounds
; the walk defensively against pointer cycles. Clobbers r0-r7, r9.
consistency_check:
    movi r9, 0                 ; violations found this pass
    movi r1, {HEADP:#06x}
    ld   r1, [r1]              ; cur
    cmpi r1, 0
    jz   cc_commit
    movi r2, 0                 ; prev seen
    movi r3, 0                 ; value two back
    movi r4, 0                 ; value one back
    movi r7, 0                 ; nodes visited
cc_loop:
    ; linkage: cur->prev == prev
    ld   r5, [r1 + {NODE_PREV}]
    cmp  r5, r2
    jz   cc_link_ok
    add  r9, 1
cc_link_ok:
    ; recurrence (from the third node on): value == r3 + r4
    cmpi r7, 2
    jl   cc_advance
    ld   r5, [r1 + {NODE_VALUE}]
    mov  r6, r3
    add  r6, r4
    cmp  r5, r6
    jz   cc_advance
    add  r9, 1
cc_advance:
    mov  r3, r4
    ld   r4, [r1 + {NODE_VALUE}]
    mov  r2, r1
    ld   r1, [r1 + {NODE_NEXT}]
    add  r7, 1
    cmpi r7, 6000              ; defensive cycle cap
    jhs  cc_cycle
    cmpi r1, 0
    jnz  cc_loop
    ; final linkage: last visited must be the tail
    movi r5, {TAILP:#06x}
    ld   r5, [r5]
    cmp  r5, r2
    jz   cc_backward
    add  r9, 1
cc_backward:
    ; backward pass: every node's prev must point back via next
    movi r1, {TAILP:#06x}
    ld   r1, [r1]
    movi r7, 0
cc_back:
    cmpi r1, 0
    jz   cc_commit
    ld   r5, [r1 + {NODE_PREV}]
    cmpi r5, 0
    jz   cc_commit
    ld   r6, [r5 + {NODE_NEXT}]
    cmp  r6, r1
    jz   cc_back_ok
    add  r9, 1
cc_back_ok:
    mov  r1, r5
    add  r7, 1
    cmpi r7, 6000
    jhs  cc_cycle
    jmp  cc_back
cc_cycle:
    add  r9, 1
cc_commit:
    cmpi r9, 0
    jz   cc_done
    movi r5, {VIOLATIONS:#06x}
    ld   r6, [r5]
    add  r6, r9
    st   [r5], r6
cc_done:
    ret

.org 0xFFFE
.word main
"#
    );
    libedb::wrap_program(&app)
}

/// Assembles the application.
///
/// # Panics
///
/// Panics if the bundled source fails to assemble (a bug in this crate).
pub fn image(variant: Variant) -> Image {
    assemble(&source(variant)).expect("fib app must assemble")
}

/// Host-side oracle: walk the device's list and return the values, or
/// `None` if the structure is inconsistent.
pub fn read_list(mem: &edb_mcu::Memory) -> Option<Vec<u16>> {
    let mut values = Vec::new();
    let mut cur = mem.peek_word(HEADP);
    let mut prev = 0u16;
    let mut steps = 0;
    while cur != 0 {
        if mem.peek_word(cur.wrapping_add(NODE_PREV)) != prev {
            return None;
        }
        values.push(mem.peek_word(cur.wrapping_add(NODE_VALUE)));
        prev = cur;
        cur = mem.peek_word(cur.wrapping_add(NODE_NEXT));
        steps += 1;
        if steps > 20_000 {
            return None; // cycle
        }
    }
    if prev != mem.peek_word(TAILP) {
        return None;
    }
    Some(values)
}

/// Whether `values` follows the (wrapping) Fibonacci recurrence.
pub fn is_fibonacci(values: &[u16]) -> bool {
    values.windows(3).all(|w| w[2] == w[0].wrapping_add(w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edb_device::{Device, DeviceConfig};
    use edb_energy::{SimTime, TheveninSource};

    #[test]
    fn all_variants_assemble() {
        for v in [Variant::Release, Variant::Checked, Variant::Guarded] {
            assert!(image(v).size_bytes() > 100);
        }
    }

    #[test]
    fn continuous_power_builds_a_fibonacci_list() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::Release));
        let mut supply = TheveninSource::new(3.0, 10.0);
        let end = SimTime::from_ms(50);
        while dev.now() < end {
            dev.step(&mut supply, 0.0);
        }
        // Sample at an iteration boundary (append is legitimately
        // non-atomic for a few instructions).
        let count = dev.mem().peek_word(COUNT);
        while dev.mem().peek_word(COUNT) == count {
            dev.step(&mut supply, 0.0);
        }
        let values = read_list(dev.mem()).expect("list consistent");
        assert!(values.len() > 50, "built {} nodes", values.len());
        assert!(is_fibonacci(&values), "values follow the recurrence");
        assert_eq!(&values[..5], &[1, 1, 2, 3, 5]);
    }

    #[test]
    fn release_build_makes_progress_on_harvested_power() {
        let mut dev = Device::new(DeviceConfig::wisp5());
        dev.flash(&image(Variant::Release));
        let mut src = TheveninSource::new(3.2, 1500.0);
        let end = SimTime::from_ms(800);
        while dev.now() < end {
            dev.step(&mut src, 0.0);
        }
        assert!(dev.reboots() > 2);
        let count = dev.mem().peek_word(COUNT);
        assert!(count > 200, "release build added {count} nodes");
    }

    #[test]
    fn checked_build_starves_once_the_list_is_long() {
        // Figure 9 (top): the check eventually eats the whole budget. A
        // hungrier compute current halves the per-cycle budget, pulling
        // the stall point (and the test runtime) down without changing
        // the phenomenon.
        let mut dev = Device::new(DeviceConfig {
            i_active: 4.4e-3,
            ..DeviceConfig::wisp5()
        });
        dev.flash(&image(Variant::Checked));
        let mut src = TheveninSource::new(3.2, 1500.0);
        let end = SimTime::from_secs(45);
        let mut stalled_count = None;
        let mut last_count = 0u16;
        let mut last_change = SimTime::ZERO;
        while dev.now() < end {
            dev.step(&mut src, 0.0);
            let c = dev.mem().peek_word(COUNT);
            if c != last_count {
                last_count = c;
                last_change = dev.now();
            } else if dev.now().since(last_change) > SimTime::from_secs(2) {
                stalled_count = Some(c);
                break;
            }
        }
        let stalled = stalled_count.expect("the debug build must hang");
        assert!(
            (50..3000).contains(&stalled),
            "stalled after {stalled} items (paper: ~555)"
        );
    }

    #[test]
    fn fibonacci_oracle_rejects_corruption() {
        assert!(is_fibonacci(&[1, 1, 2, 3, 5, 8]));
        assert!(!is_fibonacci(&[1, 1, 2, 3, 6]));
        assert!(is_fibonacci(&[]));
        assert!(is_fibonacci(&[7]));
    }
}
