//! Exhaustive reboot-point exploration — a T-Check-style analysis over
//! the simulated target.
//!
//! §6.3 of the EDB paper: "T-Check and KleeNet use model checking and
//! symbolic execution (respectively) to expose failures in sensor node
//! programs ... they would be complementary to EDB: a developer could
//! use EDB's debugging capabilities to understand and fix failures that
//! they expose." This module is that complement for intermittence: take
//! a snapshot of a running device at a loop boundary, then for **every**
//! instruction boundary in a window, clone the snapshot, cut power
//! exactly there, let the device recover, and classify what it recovered
//! *into*.
//!
//! Against the plain linked-list app this enumerates the exact
//! vulnerable instructions (the `append` and `remove` commit races);
//! against the task-atomic build it proves — exhaustively over the
//! window — that no reboot point corrupts anything.

use crate::linked_list as ll;
use edb_device::{Device, DeviceConfig};
use edb_energy::{PowerEdge, SimTime, TheveninSource};
use edb_mcu::{Image, RESET_VECTOR};

/// What a device recovered into after a power failure at one specific
/// instruction boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Rebooted and kept making consistent progress.
    Recovered,
    /// The wild-pointer cascade fired: the reset vector was corrupted
    /// and the main loop never ran again.
    Bricked,
    /// Rebooted but stopped making progress without bricking.
    Hung,
}

/// One explored cut point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutResult {
    /// Instruction index (within the window) after which power failed.
    pub cut_after: u32,
    /// Address of the last instruction that retired before the failure —
    /// the *site* of the race when the outcome is bad.
    pub pc_at_cut: u16,
    /// What the device recovered into.
    pub outcome: Outcome,
}

/// Exhaustively explores power failures at every instruction boundary in
/// a window of `window_instructions`, starting from a steady-state loop
/// boundary of `image`. `progress_addr` is the NV counter the app bumps
/// each completed iteration (used to detect recovery/hangs), and
/// `boot_vector` is the expected reset-vector value.
///
/// Runs on continuous power between the forced failures so the cut point
/// is the *only* intermittence — one failure mode at a time.
pub fn explore_reboots(
    image: &Image,
    window_instructions: u32,
    progress_addr: u16,
) -> Vec<CutResult> {
    let boot_vector = {
        let mut probe = Device::new(DeviceConfig::wisp5());
        probe.flash(image);
        probe.mem().peek_word(RESET_VECTOR)
    };
    let mut supply = TheveninSource::new(3.0, 10.0);

    // Reach a steady state: powered, init done, several iterations in,
    // and stopped exactly at an iteration boundary.
    let mut base = Device::new(DeviceConfig::wisp5());
    base.flash(image);
    base.set_v_cap(2.45);
    let warmup_deadline = SimTime::from_ms(200);
    while base.mem().peek_word(progress_addr) < 10 {
        base.step(&mut supply, 0.0);
        assert!(base.now() < warmup_deadline, "warm-up did not progress");
    }
    let snap_count = base.mem().peek_word(progress_addr);
    while base.mem().peek_word(progress_addr) == snap_count {
        base.step(&mut supply, 0.0);
    }

    let mut results = Vec::with_capacity(window_instructions as usize);
    for cut_after in 0..window_instructions {
        let mut dev = base.clone();
        // Execute exactly `cut_after` further instructions.
        let mut executed = 0;
        let mut pc_at_cut = dev.cpu().pc;
        while executed < cut_after {
            let pc = dev.cpu().pc;
            let step = dev.step(&mut supply, 0.0);
            if step.retired.is_some() {
                executed += 1;
                pc_at_cut = pc;
            }
        }
        // Cut power exactly here. The brown-out lands after the next
        // instruction boundary, so keep tracking the retired PC: the
        // last instruction to retire before the edge is the cut site.
        dev.set_v_cap(0.0);
        let mut zero = edb_energy::ConstantCurrent::new(0.0);
        loop {
            let pc = dev.cpu().pc;
            let step = dev.step(&mut zero, 0.0);
            if step.retired.is_some() {
                pc_at_cut = pc;
            }
            if step.power_edge == Some(PowerEdge::BrownOut) {
                break;
            }
        }
        // Recover on continuous power and classify.
        dev.set_v_cap(2.45);
        let before = dev.mem().peek_word(progress_addr);
        let deadline = dev.now() + SimTime::from_ms(20);
        let mut outcome = Outcome::Hung;
        while dev.now() < deadline {
            dev.step(&mut supply, 0.0);
            if dev.mem().peek_word(RESET_VECTOR) != boot_vector {
                outcome = Outcome::Bricked;
                break;
            }
            if dev.mem().peek_word(progress_addr).wrapping_sub(before) >= 3 {
                outcome = Outcome::Recovered;
                break;
            }
        }
        results.push(CutResult {
            cut_after,
            pc_at_cut,
            outcome,
        });
    }
    results
}

/// The distinct instruction addresses whose cut produced `outcome`.
pub fn sites_with(results: &[CutResult], outcome: Outcome) -> Vec<u16> {
    let mut sites: Vec<u16> = results
        .iter()
        .filter(|r| r.outcome == outcome)
        .map(|r| r.pc_at_cut)
        .collect();
    sites.sort_unstable();
    sites.dedup();
    sites
}

/// Convenience: explore the linked-list app variants over one
/// append/remove iteration pair (~130 instructions).
pub fn explore_linked_list(variant: ll::Variant) -> Vec<CutResult> {
    explore_reboots(&ll::image(variant), 130, ll::ITER_COUNT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_build_has_exactly_the_two_commit_races() {
        let results = explore_linked_list(ll::Variant::Plain);
        let race_sites = sites_with(&results, Outcome::Bricked);
        let hung = results
            .iter()
            .filter(|r| r.outcome == Outcome::Hung)
            .count();
        // One commit race in append and one in remove: cutting after
        // exactly two distinct instructions bricks the device.
        assert_eq!(
            race_sites.len(),
            2,
            "expected exactly the two Figure 6 race sites, found {race_sites:?}"
        );
        assert_eq!(hung, 0, "every other cut recovers cleanly");
        // The sites sit in the application, not the runtime or library.
        for site in &race_sites {
            assert!((0x4400..0x5000).contains(site), "site {site:#06x}");
        }
    }

    #[test]
    fn task_atomic_build_survives_every_cut_point() {
        let results = explore_linked_list(ll::Variant::TaskAtomic);
        for r in &results {
            assert_eq!(
                r.outcome,
                Outcome::Recovered,
                "task-atomic build must survive a cut after instruction {}",
                r.cut_after
            );
        }
        assert!(results.len() >= 130);
    }

    #[test]
    fn assert_build_windows_match_the_plain_build() {
        // The assert variant has the same two races (the assert detects
        // the damage on the *next* pass — under exploration without EDB
        // attached, the service-loop spin shows up as a hang, which is
        // itself the correct observable: the target stopped at the
        // assert, waiting for a debugger).
        let results = explore_linked_list(ll::Variant::Assert);
        let bad_sites: Vec<u16> = {
            let mut v = sites_with(&results, Outcome::Bricked);
            v.extend(sites_with(&results, Outcome::Hung));
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(
            bad_sites.len(),
            2,
            "the two race sites must surface (as hangs at the assert or bricks): {bad_sites:?}"
        );
    }
}
