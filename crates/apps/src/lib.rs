//! The EDB paper's target applications, written in IVM-16 assembly.
//!
//! These are the programs §5 of the paper debugs:
//!
//! * [`linked_list`] — the memory-corrupting intermittence bug of
//!   Figures 6/7 (and the keep-alive assert that catches it);
//! * [`fib`] — the Fibonacci list whose consistency check starves the
//!   main loop without energy guards (Figures 8/9);
//! * [`activity`] — the machine-learning activity-recognition app with
//!   three debug-output variants (Figure 10, Table 4, Figure 11);
//! * [`rfid_fw`] — the WISP RFID firmware that decodes reader commands
//!   in software and backscatters EPC replies (Figure 12).
//!
//! Each module exposes `source(...)` (the assembly text), `image(...)`
//! (assembled), the NV memory map as constants, and host-side oracles
//! for checking target state from tests and experiment harnesses.
//! [`oracle`] adds a T-Check-style exhaustive reboot-point explorer that
//! enumerates exactly which instruction boundaries are vulnerable.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod fib;
pub mod linked_list;
pub mod oracle;
pub mod rfid_fw;
