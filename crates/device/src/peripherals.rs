//! On-board peripherals other than the accelerometer and RF front-end:
//! GPIO (with LED load), the target-powered user UART, the debug link to
//! EDB, the self-measurement ADC, and the cycle timer.

use edb_energy::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The GPIO output latch and its electrical loads.
///
/// Pin 0 drives an LED: the paper measures that lighting it takes the
/// WISP "from around 1 mA to over 5 mA", so the LED load defaults to
/// 4.5 mA. The other pins are high-impedance signal pins (progress
/// markers) with negligible load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gpio {
    latch: u16,
    /// Extra supply current while the LED pin is high, amps.
    pub led_current: f64,
}

impl Gpio {
    /// Creates the port with all pins low.
    pub fn new() -> Self {
        Gpio {
            latch: 0,
            led_current: 4.5e-3,
        }
    }

    /// Writes the output latch, returning `(old, new)` when it changed.
    pub fn write(&mut self, value: u16) -> Option<(u16, u16)> {
        let old = self.latch;
        self.latch = value;
        (old != value).then_some((old, value))
    }

    /// The present latch value.
    pub fn read(&self) -> u16 {
        self.latch
    }

    /// Supply current drawn by pin loads right now, amps.
    pub fn current(&self) -> f64 {
        if self.latch & crate::ports::PIN_LED != 0 {
            self.led_current
        } else {
            0.0
        }
    }

    /// Power-loss reset: latch drops to zero.
    pub fn reset(&mut self) {
        self.latch = 0;
    }
}

impl Default for Gpio {
    fn default() -> Self {
        Gpio::new()
    }
}

/// A transmit-only UART with byte timing and a transmit-busy flag.
///
/// Models the *target-powered* console UART of §5.3.3: every byte costs
/// `byte_time` of air time and `tx_current` of supply current — the cost
/// that makes `printf` over UART perturb an intermittent execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Uart {
    busy_until: Option<SimTime>,
    /// Seconds per byte expressed as simulation time (default: 86.8 µs,
    /// i.e. 115200 baud, 8N1).
    pub byte_time: SimTime,
    /// Extra supply current while shifting a byte out, amps.
    pub tx_current: f64,
    sent: Vec<(SimTime, u8)>,
}

impl Uart {
    /// Creates an idle UART at 115200 baud.
    pub fn new() -> Self {
        Uart {
            busy_until: None,
            byte_time: SimTime::from_ns(86_800),
            tx_current: 0.8e-3,
            sent: Vec::new(),
        }
    }

    /// Firmware wrote a byte. Returns `true` if accepted (transmitter
    /// idle); a byte written while busy is lost, as on real hardware
    /// without a FIFO.
    pub fn write(&mut self, now: SimTime, byte: u8) -> bool {
        if self.busy(now) {
            return false;
        }
        self.busy_until = Some(now + self.byte_time);
        self.sent.push((now, byte));
        true
    }

    /// Whether the transmitter is shifting a byte out at `now`.
    pub fn busy(&self, now: SimTime) -> bool {
        self.busy_until.is_some_and(|t| now < t)
    }

    /// When the in-flight byte (if any) finishes shifting out — the
    /// moment [`Uart::current`] and [`Uart::busy`] silently change
    /// without any port access. Span batching must not integrate past
    /// this instant with a stale load model.
    pub fn busy_deadline(&self) -> Option<SimTime> {
        self.busy_until
    }

    /// `UART_STATUS` port value: bit 1 = TX busy.
    pub fn status(&self, now: SimTime) -> u16 {
        (self.busy(now) as u16) << 1
    }

    /// Supply current drawn right now, amps.
    pub fn current(&self, now: SimTime) -> f64 {
        if self.busy(now) {
            self.tx_current
        } else {
            0.0
        }
    }

    /// All bytes transmitted so far, with their start timestamps.
    pub fn sent(&self) -> &[(SimTime, u8)] {
        &self.sent
    }

    /// Power-loss reset: the in-flight byte is truncated. The `sent` log
    /// is bench instrumentation and survives (the bytes *did* go out).
    pub fn reset(&mut self) {
        self.busy_until = None;
    }
}

impl Default for Uart {
    fn default() -> Self {
        Uart::new()
    }
}

/// The target half of the debug wiring to EDB: signal port, status port,
/// and a bidirectional byte link.
///
/// EDB holds the other end: it drains `tx_to_debugger`, fills
/// `rx_from_debugger`, and sets the acknowledge/session bits the firmware
/// polls. The byte link carries the read/write-memory protocol of the
/// interactive console; the signal port carries assert/breakpoint/guard
/// requests.
///
/// TX toward the debugger is paced at `byte_time` (the level-shifted link
/// runs at a conservative baud), but — unlike the target-powered user
/// UART — driving it costs the target essentially nothing: the buffers
/// are on EDB's power. That asymmetry is the entire point of EDB printf.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugLink {
    /// Bytes the target wrote for EDB (drained by the debugger).
    pub tx_to_debugger: VecDeque<u8>,
    /// Bytes EDB wrote for the target (drained by `in DBG_UART_RX`).
    pub rx_from_debugger: VecDeque<u8>,
    ack: bool,
    session_active: bool,
    /// The most recent `DEBUG_SIGNAL` writes this slice (drained by EDB).
    pub signals: VecDeque<u16>,
    tx_busy_until: Option<SimTime>,
    /// Seconds per byte on the link (default 173.6 µs ≈ 57600 baud).
    pub byte_time: SimTime,
}

impl Default for DebugLink {
    fn default() -> Self {
        DebugLink {
            tx_to_debugger: VecDeque::new(),
            rx_from_debugger: VecDeque::new(),
            ack: false,
            session_active: false,
            signals: VecDeque::new(),
            tx_busy_until: None,
            byte_time: SimTime::from_ns(173_600),
        }
    }
}

impl DebugLink {
    /// Creates an idle link.
    pub fn new() -> Self {
        DebugLink::default()
    }

    /// Firmware wrote a byte toward the debugger. Accepted only when the
    /// transmitter is idle; returns whether it was accepted.
    pub fn write_tx(&mut self, now: SimTime, byte: u8) -> bool {
        if self.tx_busy(now) {
            return false;
        }
        self.tx_busy_until = Some(now + self.byte_time);
        self.tx_to_debugger.push_back(byte);
        true
    }

    /// Whether the link transmitter is shifting a byte at `now`.
    pub fn tx_busy(&self, now: SimTime) -> bool {
        self.tx_busy_until.is_some_and(|t| now < t)
    }

    /// Firmware wrote the `DEBUG_SIGNAL` port.
    pub fn raise_signal(&mut self, value: u16) {
        self.signals.push_back(value);
    }

    /// `DEBUG_STATUS` port value: bit 0 = ack, bit 1 = session active.
    pub fn status(&self) -> u16 {
        (self.ack as u16) | ((self.session_active as u16) << 1)
    }

    /// EDB side: set or clear the acknowledge bit.
    pub fn set_ack(&mut self, ack: bool) {
        self.ack = ack;
    }

    /// EDB side: mark an active debug session.
    pub fn set_session_active(&mut self, active: bool) {
        self.session_active = active;
    }

    /// Whether an active session is marked.
    pub fn session_active(&self) -> bool {
        self.session_active
    }

    /// `DBG_UART_STATUS` port value: bit 0 = RX available, bit 1 = TX
    /// busy.
    pub fn uart_status(&self, now: SimTime) -> u16 {
        (!self.rx_from_debugger.is_empty()) as u16 | ((self.tx_busy(now) as u16) << 1)
    }

    /// Power-loss reset: the target side forgets everything; EDB's side
    /// of the wires (ack/session flags) is owned by EDB and survives.
    pub fn reset(&mut self) {
        self.tx_to_debugger.clear();
        self.rx_from_debugger.clear();
        self.signals.clear();
        self.tx_busy_until = None;
    }
}

/// The target's own 12-bit ADC channel wired to its storage capacitor.
///
/// §4.1: "While it is possible for energy harvesting devices to measure
/// their stored energy levels, doing so uses energy, perturbing the
/// energy state being measured." Reading `ADC_SELF` therefore draws
/// `conversion_current` for `conversion_time`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfAdc {
    busy_until: Option<SimTime>,
    /// Conversion time (default 50 µs).
    pub conversion_time: SimTime,
    /// Extra supply current during conversion, amps.
    pub conversion_current: f64,
    /// Full-scale reference voltage.
    pub v_ref: f64,
}

impl SelfAdc {
    /// Creates the converter.
    pub fn new() -> Self {
        SelfAdc {
            busy_until: None,
            conversion_time: SimTime::from_us(50),
            conversion_current: 0.3e-3,
            v_ref: 3.3,
        }
    }

    /// Samples `v_cap` at `now`: returns the 12-bit code and starts the
    /// energy-burning conversion window.
    pub fn sample(&mut self, now: SimTime, v_cap: f64) -> u16 {
        self.busy_until = Some(now + self.conversion_time);
        ((v_cap / self.v_ref) * 4095.0).round().clamp(0.0, 4095.0) as u16
    }

    /// Supply current drawn right now, amps.
    pub fn current(&self, now: SimTime) -> f64 {
        if self.busy_until.is_some_and(|t| now < t) {
            self.conversion_current
        } else {
            0.0
        }
    }

    /// When the running conversion (if any) stops burning energy — a
    /// silent load-model change span batching must stop at.
    pub fn busy_deadline(&self) -> Option<SimTime> {
        self.busy_until
    }

    /// Power-loss reset.
    pub fn reset(&mut self) {
        self.busy_until = None;
    }
}

impl Default for SelfAdc {
    fn default() -> Self {
        SelfAdc::new()
    }
}

/// The free-running cycle counter with a latched high word, so firmware
/// can read a consistent 32-bit value with two port reads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timer {
    latched_hi: u16,
}

impl Timer {
    /// Creates the timer.
    pub fn new() -> Self {
        Timer::default()
    }

    /// Reads the low word of `cycles`, latching the high word.
    pub fn read_lo(&mut self, cycles: u64) -> u16 {
        self.latched_hi = ((cycles >> 16) & 0xFFFF) as u16;
        (cycles & 0xFFFF) as u16
    }

    /// Reads the latched high word.
    pub fn read_hi(&self) -> u16 {
        self.latched_hi
    }

    /// Power-loss reset.
    pub fn reset(&mut self) {
        self.latched_hi = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpio_led_load() {
        let mut g = Gpio::new();
        assert_eq!(g.current(), 0.0);
        assert_eq!(g.write(crate::ports::PIN_LED), Some((0, 1)));
        assert!(g.current() > 4e-3);
        assert_eq!(g.write(crate::ports::PIN_LED), None, "no change, no event");
        g.reset();
        assert_eq!(g.read(), 0);
    }

    #[test]
    fn uart_byte_timing_and_busy() {
        let mut u = Uart::new();
        let t0 = SimTime::ZERO;
        assert!(u.write(t0, b'A'));
        assert!(u.busy(SimTime::from_us(50)));
        assert!(!u.write(SimTime::from_us(50), b'B'), "byte lost while busy");
        assert!(!u.busy(SimTime::from_us(90)));
        assert!(u.write(SimTime::from_us(90), b'C'));
        let bytes: Vec<u8> = u.sent().iter().map(|&(_, b)| b).collect();
        assert_eq!(bytes, vec![b'A', b'C']);
    }

    #[test]
    fn uart_current_only_while_transmitting() {
        let mut u = Uart::new();
        u.write(SimTime::ZERO, 0x55);
        assert!(u.current(SimTime::from_us(10)) > 0.0);
        assert_eq!(u.current(SimTime::from_us(100)), 0.0);
    }

    #[test]
    fn debug_link_round_trip() {
        let mut l = DebugLink::new();
        l.raise_signal(0x31);
        assert_eq!(l.signals.pop_front(), Some(0x31));
        l.rx_from_debugger.push_back(0x01);
        assert_eq!(l.uart_status(SimTime::ZERO), 1);
        l.set_ack(true);
        l.set_session_active(true);
        assert_eq!(l.status(), 3);
        l.reset();
        assert_eq!(l.uart_status(SimTime::ZERO), 0);
        assert!(l.session_active(), "EDB-owned bits survive target reset");
    }

    #[test]
    fn debug_link_tx_pacing() {
        let mut l = DebugLink::new();
        assert!(l.write_tx(SimTime::ZERO, 1));
        assert!(!l.write_tx(SimTime::from_us(10), 2), "busy: byte dropped");
        assert_eq!(l.uart_status(SimTime::from_us(10)) & 2, 2);
        assert!(l.write_tx(SimTime::from_us(200), 3));
        assert_eq!(l.tx_to_debugger.len(), 2);
    }

    #[test]
    fn self_adc_quantizes_and_burns() {
        let mut adc = SelfAdc::new();
        let code = adc.sample(SimTime::ZERO, 2.4);
        assert_eq!(code, ((2.4f64 / 3.3) * 4095.0).round() as u16);
        assert!(adc.current(SimTime::from_us(10)) > 0.0);
        assert_eq!(adc.current(SimTime::from_us(100)), 0.0);
    }

    #[test]
    fn timer_latching() {
        let mut t = Timer::new();
        let cycles = 0x0001_0005u64;
        assert_eq!(t.read_lo(cycles), 0x0005);
        assert_eq!(t.read_hi(), 0x0001);
    }
}
