//! The intermittent target device of the EDB reproduction.
//!
//! This crate assembles the substrates — the [`edb_mcu`] processor, the
//! [`edb_energy`] electrical model — into a WISP5-like energy-harvesting
//! tag: a CPU fed from a 47 µF storage capacitor through a hysteretic
//! supervisor (turn-on 2.4 V, brown-out 1.8 V), with GPIO/LED, a
//! target-powered UART, a self-measurement ADC, an I²C accelerometer, an
//! RFID front-end, and the debug wiring that EDB attaches to.
//!
//! The core loop is [`Device::step`]: execute one instruction, integrate
//! its energy, let the supervisor decide whether power failed. Everything
//! the paper calls "intermittence" — reboots tens of times per second,
//! volatile state loss, FRAM persistence, bugs that vanish on continuous
//! power — emerges from that loop.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accel;
pub mod device;
pub mod fleet;
pub mod peripherals;
pub mod ports;
pub mod rf_frontend;

pub use accel::{AccelSample, Accelerometer, Regime, SyntheticMotion};
pub use device::{Device, DeviceConfig, DeviceEvent, DeviceStep, Peripherals};
pub use fleet::{splitmix64, Fleet, TagMode, TagParams};
pub use peripherals::{DebugLink, Gpio, SelfAdc, Timer, Uart};
pub use rf_frontend::{Backscatter, RfFrontend};
